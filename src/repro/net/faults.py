"""Fault injection for the network fabric.

Faults are expressed declaratively and attached to a
:class:`FaultPlan` consulted by the fabric on every send:

- :class:`DropRule` — drop messages matching a predicate, optionally
  only the first N matches or only within a time window.
- :class:`Partition` — block all traffic between two address groups
  for a time window (or until healed).
- :class:`PrefixPartition` — the same, matching by address prefix.
- :class:`OneWayPartition` — an *asymmetric* partition: traffic from
  one prefix group to the other is lost while the reverse direction
  still flows (the classic gray failure: requests arrive, replies
  vanish, or vice versa).
- :class:`LinkFlap` — a bidirectional prefix partition that cycles
  down/up on a fixed period, modelling a flapping switch port.
- :class:`SlowLink` — latency inflation (plus seeded jitter) on
  traffic crossing two prefix groups; messages still arrive, late.
- :class:`DuplicateRule` — probabilistically deliver an extra copy of
  matching messages after a seeded delay (a retransmitting middlebox).
- :class:`ReorderRule` — probabilistically delay matching messages by
  a bounded seeded skew, so later sends can overtake them.

The layers above (transport retries, binding caches) are the code under
test when faults fire; the fabric itself stays silent, exactly like a
real switch dropping a frame.

Every gray rule draws from its own ``random.Random(seed)``, so a given
seed plus a given message sequence yields an identical fault trace —
the property the chaos harness's determinism tests assert.
"""

import random


class _Disposition:
    """Sentinel singleton namespace for :meth:`FaultPlan.route`."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"<disposition {self.name}>"


#: :meth:`FaultPlan.route` verdict: destroy the message.
DROP = _Disposition("drop")


class DropRule:
    """Drop messages that match a predicate.

    Parameters
    ----------
    predicate:
        ``predicate(message) -> bool``; ``None`` matches everything.
    count:
        Drop at most this many matching messages (``None`` = no limit).
    start, end:
        Simulated-time window in which the rule is active.
    """

    kind = "drop"

    def __init__(self, predicate=None, count=None, start=0.0, end=None, label=None):
        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1 or None, got {count}")
        self._predicate = predicate
        self._remaining = count
        self._start = start
        self._end = end
        self.label = label or "drop"
        self.dropped = 0

    def should_drop(self, message, now):
        """True if this rule drops ``message`` at time ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        if self._remaining is not None and self._remaining <= 0:
            return False
        if self._predicate is not None and not self._predicate(message):
            return False
        if self._remaining is not None:
            self._remaining -= 1
        self.dropped += 1
        return True

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "dropped": self.dropped}


class Partition:
    """A bidirectional partition between two sets of addresses."""

    kind = "partition"

    def __init__(self, group_a, group_b, start=0.0, end=None, label=None):
        self._group_a = frozenset(group_a)
        self._group_b = frozenset(group_b)
        if self._group_a & self._group_b:
            raise ValueError("partition groups must be disjoint")
        self._start = start
        self._end = end
        self.label = label or "partition"
        self.blocked = 0

    def heal(self, now):
        """End the partition at time ``now``."""
        self._end = now

    def blocks(self, message, now):
        """True if the partition severs this message's path at ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        crosses = (
            message.source in self._group_a and message.destination in self._group_b
        ) or (message.source in self._group_b and message.destination in self._group_a)
        if crosses:
            self.blocked += 1
        return crosses

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "blocked": self.blocked}


class _PrefixSides:
    """Shared prefix-group matching for prefix-based rules."""

    def __init__(self, prefixes_a, prefixes_b):
        self._prefixes_a = tuple(prefixes_a)
        self._prefixes_b = tuple(prefixes_b)
        if not self._prefixes_a or not self._prefixes_b:
            raise ValueError("both prefix groups must be non-empty")
        for a in self._prefixes_a:
            for b in self._prefixes_b:
                if a.startswith(b) or b.startswith(a):
                    raise ValueError(f"prefix groups overlap: {a!r} vs {b!r}")

    def _side(self, address):
        if any(address.startswith(p) for p in self._prefixes_a):
            return "a"
        if any(address.startswith(p) for p in self._prefixes_b):
            return "b"
        return None

    def _crosses(self, message):
        source = self._side(message.source)
        destination = self._side(message.destination)
        return source is not None and destination is not None and source != destination


class PrefixPartition(_PrefixSides):
    """A bidirectional partition between two address-*prefix* groups.

    Where :class:`Partition` enumerates exact addresses, this matches
    by prefix — the natural unit when isolating whole hosts, whose
    endpoints mint fresh ``host/loid@counter`` addresses on every
    restart and so cannot be enumerated up front.
    """

    kind = "prefix-partition"

    def __init__(self, prefixes_a, prefixes_b, start=0.0, end=None, label=None):
        super().__init__(prefixes_a, prefixes_b)
        self._start = start
        self._end = end
        self.label = label or "prefix-partition"
        self.blocked = 0

    def heal(self, now):
        """End the partition at time ``now``."""
        self._end = now

    def blocks(self, message, now):
        """True if the partition severs this message's path at ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        crosses = self._crosses(message)
        if crosses:
            self.blocked += 1
        return crosses

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "blocked": self.blocked}


class OneWayPartition(_PrefixSides):
    """An asymmetric partition: ``from`` -> ``to`` traffic is lost.

    Messages whose source matches ``from_prefixes`` and whose
    destination matches ``to_prefixes`` are destroyed; the reverse
    direction is untouched.  This is the gray failure a bidirectional
    partition cannot model — a host that can hear the fleet but whose
    replies never land (or one that talks but has gone deaf).
    """

    kind = "one-way-partition"

    def __init__(self, from_prefixes, to_prefixes, start=0.0, end=None, label=None):
        super().__init__(from_prefixes, to_prefixes)
        self._start = start
        self._end = end
        self.label = label or "one-way"
        self.blocked = 0

    def heal(self, now):
        """End the partition at time ``now``."""
        self._end = now

    def blocks(self, message, now):
        """True if this message travels the severed direction at ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        crosses = (
            self._side(message.source) == "a"
            and self._side(message.destination) == "b"
        )
        if crosses:
            self.blocked += 1
        return crosses

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "blocked": self.blocked}


class LinkFlap(_PrefixSides):
    """A prefix partition that cycles down/up on a fixed period.

    From ``start`` to ``end`` the link between the two prefix groups
    repeats a ``period_s`` cycle: *down* for the first ``down_s``
    seconds of each period, up for the rest.  Phase is anchored at
    ``start``, so the flap schedule is fully determined by its
    parameters — no RNG involved.
    """

    kind = "link-flap"

    def __init__(
        self,
        prefixes_a,
        prefixes_b,
        period_s,
        down_s,
        start=0.0,
        end=None,
        label=None,
    ):
        super().__init__(prefixes_a, prefixes_b)
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        if not 0 < down_s <= period_s:
            raise ValueError(
                f"down_s must be in (0, period_s], got {down_s} vs {period_s}"
            )
        self.period_s = period_s
        self.down_s = down_s
        self._start = start
        self._end = end
        self.label = label or "flap"
        self.blocked = 0

    def heal(self, now):
        """End the flap schedule at time ``now``."""
        self._end = now

    def is_down(self, now):
        """True while the link is in the down phase of its cycle."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        return (now - self._start) % self.period_s < self.down_s

    def blocks(self, message, now):
        """True if the link is down and this message crosses it."""
        if not self.is_down(now):
            return False
        crosses = self._crosses(message)
        if crosses:
            self.blocked += 1
        return crosses

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "blocked": self.blocked}


class SlowLink(_PrefixSides):
    """Latency inflation on traffic crossing two prefix groups.

    Matching messages are delivered ``extra_s`` late, plus a uniform
    seeded jitter in ``[0, jitter_s]`` drawn per message — so two
    copies of the same logical payload (a retry, a hedge) take
    independent samples of the bad link, which is exactly what makes
    hedged requests effective against it.
    """

    kind = "slow-link"

    def __init__(
        self,
        prefixes_a,
        prefixes_b,
        extra_s,
        jitter_s=0.0,
        seed=0,
        start=0.0,
        end=None,
        label=None,
    ):
        super().__init__(prefixes_a, prefixes_b)
        if extra_s < 0:
            raise ValueError(f"extra_s must be >= 0, got {extra_s}")
        if jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {jitter_s}")
        self.extra_s = extra_s
        self.jitter_s = jitter_s
        self._rng = random.Random(seed)
        self._start = start
        self._end = end
        self.label = label or "slow-link"
        self.delayed = 0
        self.delay_total_s = 0.0

    def heal(self, now):
        """End the degradation at time ``now``."""
        self._end = now

    def delay_for(self, message, now):
        """Extra delivery delay for ``message`` (0.0 when unaffected)."""
        if now < self._start:
            return 0.0
        if self._end is not None and now >= self._end:
            return 0.0
        if not self._crosses(message):
            return 0.0
        delay = self.extra_s
        if self.jitter_s:
            delay += self._rng.uniform(0.0, self.jitter_s)
        self.delayed += 1
        self.delay_total_s += delay
        return delay

    def stats(self):
        """Per-rule counter snapshot."""
        return {
            "kind": self.kind,
            "label": self.label,
            "delayed": self.delayed,
            "delay_total_s": self.delay_total_s,
        }


class ReorderRule:
    """Bounded reordering: delay matching messages by a seeded skew.

    With probability ``probability`` a matching message is held back by
    a uniform draw in ``(0, max_skew_s]``, letting messages sent after
    it arrive first.  The skew bound keeps the reordering *bounded* —
    protocols may see old traffic late, but never unboundedly late.
    """

    kind = "reorder"

    def __init__(
        self,
        probability,
        max_skew_s,
        predicate=None,
        seed=0,
        start=0.0,
        end=None,
        label=None,
    ):
        if not 0 < probability <= 1:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if max_skew_s <= 0:
            raise ValueError(f"max_skew_s must be > 0, got {max_skew_s}")
        self.probability = probability
        self.max_skew_s = max_skew_s
        self._predicate = predicate
        self._rng = random.Random(seed)
        self._start = start
        self._end = end
        self.label = label or "reorder"
        self.reordered = 0

    def delay_for(self, message, now):
        """Extra delivery delay for ``message`` (0.0 when unaffected)."""
        if now < self._start:
            return 0.0
        if self._end is not None and now >= self._end:
            return 0.0
        if self._predicate is not None and not self._predicate(message):
            return 0.0
        if self._rng.random() >= self.probability:
            return 0.0
        self.reordered += 1
        return self._rng.uniform(1e-9, self.max_skew_s)

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "reordered": self.reordered}


class DuplicateRule:
    """Probabilistic message duplication with a seeded copy delay.

    With probability ``probability`` a matching message is delivered
    *twice*: once normally, once after a uniform draw in
    ``(0, spread_s]``.  ``count`` bounds the total duplications.  The
    duplicate is the same wire message (same id), so the layer under
    test is the transport's at-most-once dedupe — not the retry path
    that used to be its only exerciser.
    """

    kind = "duplicate"

    def __init__(
        self,
        probability,
        spread_s=0.01,
        predicate=None,
        count=None,
        seed=0,
        start=0.0,
        end=None,
        label=None,
    ):
        if not 0 < probability <= 1:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if spread_s <= 0:
            raise ValueError(f"spread_s must be > 0, got {spread_s}")
        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1 or None, got {count}")
        self.probability = probability
        self.spread_s = spread_s
        self._predicate = predicate
        self._remaining = count
        self._rng = random.Random(seed)
        self._start = start
        self._end = end
        self.label = label or "duplicate"
        self.duplicated = 0

    def copy_delays(self, message, now):
        """Delays (relative to arrival) of extra copies; ``()`` if none."""
        if now < self._start:
            return ()
        if self._end is not None and now >= self._end:
            return ()
        if self._remaining is not None and self._remaining <= 0:
            return ()
        if self._predicate is not None and not self._predicate(message):
            return ()
        if self._rng.random() >= self.probability:
            return ()
        if self._remaining is not None:
            self._remaining -= 1
        self.duplicated += 1
        return (self._rng.uniform(1e-9, self.spread_s),)

    def stats(self):
        """Per-rule counter snapshot."""
        return {"kind": self.kind, "label": self.label, "duplicated": self.duplicated}


#: Aggregate counter keys a :class:`FaultPlan` accumulates across rules.
_TOTAL_KEYS = ("dropped", "blocked", "delayed", "reordered", "duplicated")


class FaultPlan:
    """The set of active faults consulted by the fabric."""

    def __init__(self):
        self._drop_rules = []
        self._partitions = []
        self._delay_rules = []
        self._duplicate_rules = []
        # Counter totals folded in from rules removed by clear(), so
        # post-run assertions stay readable after a heal.
        self._cleared_totals = dict.fromkeys(_TOTAL_KEYS, 0)

    @property
    def is_active(self):
        """True when any fault is registered (fast-path check)."""
        return bool(
            self._drop_rules
            or self._partitions
            or self._delay_rules
            or self._duplicate_rules
        )

    @property
    def drop_rules(self):
        """The registered drop rules (read-only view by convention)."""
        return list(self._drop_rules)

    @property
    def partitions(self):
        """The registered partitions (read-only view by convention)."""
        return list(self._partitions)

    @property
    def delay_rules(self):
        """The registered delay rules — slow links and reorderers."""
        return list(self._delay_rules)

    @property
    def duplicate_rules(self):
        """The registered duplication rules."""
        return list(self._duplicate_rules)

    def add_drop_rule(self, rule):
        """Register a :class:`DropRule` and return it."""
        self._drop_rules.append(rule)
        return rule

    def add_partition(self, partition):
        """Register a partition-like rule (anything with ``blocks``).

        :class:`Partition`, :class:`PrefixPartition`,
        :class:`OneWayPartition`, and :class:`LinkFlap` all qualify.
        """
        self._partitions.append(partition)
        return partition

    def add_delay_rule(self, rule):
        """Register a delay rule (:class:`SlowLink` / :class:`ReorderRule`)."""
        self._delay_rules.append(rule)
        return rule

    def add_duplicate_rule(self, rule):
        """Register a :class:`DuplicateRule` and return it."""
        self._duplicate_rules.append(rule)
        return rule

    def clear(self):
        """Remove all faults, folding their counters into the totals.

        :meth:`stats` keeps reporting everything the cleared rules did,
        so a test can heal the network and still assert on how much
        damage the plan inflicted.
        """
        totals = self._cleared_totals
        for rule in (
            self._drop_rules
            + self._partitions
            + self._delay_rules
            + self._duplicate_rules
        ):
            for key, value in rule.stats().items():
                if key in totals:
                    totals[key] += value
        self._drop_rules.clear()
        self._partitions.clear()
        self._delay_rules.clear()
        self._duplicate_rules.clear()

    def swallows(self, message, now):
        """True if any active fault destroys ``message`` at ``now``."""
        for partition in self._partitions:
            if partition.blocks(message, now):
                return True
        for rule in self._drop_rules:
            if rule.should_drop(message, now):
                return True
        return False

    def route(self, message, now):
        """Full routing verdict for ``message`` at ``now``.

        Returns ``None`` for a normal immediate delivery, :data:`DROP`
        when the message is destroyed, or a tuple of extra delays — one
        per copy to deliver, the first being the primary copy (0.0
        means "now").  Destruction wins over degradation: a partitioned
        message is gone even if a slow link also matched it.
        """
        if self.swallows(message, now):
            return DROP
        if not self._delay_rules and not self._duplicate_rules:
            return None
        delay = 0.0
        for rule in self._delay_rules:
            delay += rule.delay_for(message, now)
        copies = None
        for rule in self._duplicate_rules:
            extra = rule.copy_delays(message, now)
            if extra:
                copies = extra if copies is None else copies + tuple(extra)
        if delay <= 0.0 and copies is None:
            return None
        if copies is None:
            return (delay,)
        return (delay, *(delay + offset for offset in copies))

    def stats(self):
        """Aggregate + per-rule counter snapshot.

        ``{"dropped", "blocked", "delayed", "reordered", "duplicated"}``
        totals (including rules removed by :meth:`clear`), plus a
        ``"rules"`` list with one entry per currently-registered rule.
        """
        totals = dict(self._cleared_totals)
        rules = []
        for rule in (
            self._drop_rules
            + self._partitions
            + self._delay_rules
            + self._duplicate_rules
        ):
            entry = rule.stats()
            rules.append(entry)
            for key, value in entry.items():
                if key in totals:
                    totals[key] += value
        totals["rules"] = rules
        return totals
