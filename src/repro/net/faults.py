"""Fault injection for the network fabric.

Faults are expressed declaratively and attached to a
:class:`FaultPlan` consulted by the fabric on every send:

- :class:`DropRule` — drop messages matching a predicate, optionally
  only the first N matches or only within a time window.
- :class:`Partition` — block all traffic between two address groups
  for a time window (or until healed).

The layers above (transport retries, binding caches) are the code under
test when faults fire; the fabric itself stays silent, exactly like a
real switch dropping a frame.
"""


class DropRule:
    """Drop messages that match a predicate.

    Parameters
    ----------
    predicate:
        ``predicate(message) -> bool``; ``None`` matches everything.
    count:
        Drop at most this many matching messages (``None`` = no limit).
    start, end:
        Simulated-time window in which the rule is active.
    """

    def __init__(self, predicate=None, count=None, start=0.0, end=None):
        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1 or None, got {count}")
        self._predicate = predicate
        self._remaining = count
        self._start = start
        self._end = end
        self.dropped = 0

    def should_drop(self, message, now):
        """True if this rule drops ``message`` at time ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        if self._remaining is not None and self._remaining <= 0:
            return False
        if self._predicate is not None and not self._predicate(message):
            return False
        if self._remaining is not None:
            self._remaining -= 1
        self.dropped += 1
        return True


class Partition:
    """A bidirectional partition between two sets of addresses."""

    def __init__(self, group_a, group_b, start=0.0, end=None):
        self._group_a = frozenset(group_a)
        self._group_b = frozenset(group_b)
        if self._group_a & self._group_b:
            raise ValueError("partition groups must be disjoint")
        self._start = start
        self._end = end
        self.blocked = 0

    def heal(self, now):
        """End the partition at time ``now``."""
        self._end = now

    def blocks(self, message, now):
        """True if the partition severs this message's path at ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        crosses = (
            message.source in self._group_a and message.destination in self._group_b
        ) or (message.source in self._group_b and message.destination in self._group_a)
        if crosses:
            self.blocked += 1
        return crosses


class PrefixPartition:
    """A bidirectional partition between two address-*prefix* groups.

    Where :class:`Partition` enumerates exact addresses, this matches
    by prefix — the natural unit when isolating whole hosts, whose
    endpoints mint fresh ``host/loid@counter`` addresses on every
    restart and so cannot be enumerated up front.
    """

    def __init__(self, prefixes_a, prefixes_b, start=0.0, end=None):
        self._prefixes_a = tuple(prefixes_a)
        self._prefixes_b = tuple(prefixes_b)
        if not self._prefixes_a or not self._prefixes_b:
            raise ValueError("both prefix groups must be non-empty")
        for a in self._prefixes_a:
            for b in self._prefixes_b:
                if a.startswith(b) or b.startswith(a):
                    raise ValueError(
                        f"prefix groups overlap: {a!r} vs {b!r}"
                    )
        self._start = start
        self._end = end
        self.blocked = 0

    def heal(self, now):
        """End the partition at time ``now``."""
        self._end = now

    def _side(self, address):
        if any(address.startswith(p) for p in self._prefixes_a):
            return "a"
        if any(address.startswith(p) for p in self._prefixes_b):
            return "b"
        return None

    def blocks(self, message, now):
        """True if the partition severs this message's path at ``now``."""
        if now < self._start:
            return False
        if self._end is not None and now >= self._end:
            return False
        source = self._side(message.source)
        destination = self._side(message.destination)
        crosses = (
            source is not None and destination is not None and source != destination
        )
        if crosses:
            self.blocked += 1
        return crosses


class FaultPlan:
    """The set of active faults consulted by the fabric."""

    def __init__(self):
        self._drop_rules = []
        self._partitions = []

    @property
    def is_active(self):
        """True when any fault is registered (fast-path check)."""
        return bool(self._drop_rules or self._partitions)

    @property
    def drop_rules(self):
        """The registered drop rules (read-only view by convention)."""
        return list(self._drop_rules)

    @property
    def partitions(self):
        """The registered partitions (read-only view by convention)."""
        return list(self._partitions)

    def add_drop_rule(self, rule):
        """Register a :class:`DropRule` and return it."""
        self._drop_rules.append(rule)
        return rule

    def add_partition(self, partition):
        """Register a :class:`Partition` and return it."""
        self._partitions.append(partition)
        return partition

    def clear(self):
        """Remove all faults."""
        self._drop_rules.clear()
        self._partitions.clear()

    def swallows(self, message, now):
        """True if any active fault destroys ``message`` at ``now``."""
        for partition in self._partitions:
            if partition.blocks(message, now):
                return True
        for rule in self._drop_rules:
            if rule.should_drop(message, now):
                return True
        return False
