"""The network fabric: a switched LAN connecting endpoint ports.

The fabric owns the address → :class:`Port` mapping, applies the fault
plan, and charges each message its egress transmission time plus a
propagation latency.  Defaults match the paper's testbed: 100 Mbps
switched Ethernet with sub-millisecond LAN latency.
"""

from dataclasses import dataclass, field

from repro.net.faults import DROP, FaultPlan
from repro.net.link import Port
from repro.obs.metrics import MetricsRegistry

# 100 Mbps expressed in bytes per second.
DEFAULT_BANDWIDTH_BPS = 100e6 / 8
# One-way propagation + switch latency on the LAN.
DEFAULT_LATENCY_S = 100e-6


class _DeliveryEnvelope:
    """One scheduled arrival instant, shared by all messages landing then.

    Envelopes are pooled by the :class:`Network` and recycled after
    each batch fires, so the per-message delivery path allocates no
    process, no generator, and (at steady state) no envelope either.
    """

    __slots__ = ("network", "time", "messages")

    def __init__(self, network):
        self.network = network
        self.time = 0.0
        self.messages = []

    def fire(self):
        self.network._arrive(self)


@dataclass
class NetworkStats:
    """Aggregate counters for a fabric, used by tests and reports."""

    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_delivered: int = 0
    deliveries_by_kind: dict = field(default_factory=dict)

    def record_delivery(self, message):
        """Account a successful delivery."""
        self.messages_delivered += 1
        self.bytes_delivered += message.wire_bytes
        self.deliveries_by_kind[message.kind] = self.deliveries_by_kind.get(message.kind, 0) + 1

    def record_drop(self):
        """Account a message destroyed by the fault plan."""
        self.messages_dropped += 1


class Network:
    """A switched LAN fabric.

    Parameters
    ----------
    sim:
        The owning simulator.
    latency_s:
        One-way propagation latency between any two ports.
    bandwidth_bps:
        Default per-port egress bandwidth, in bytes per second.
    """

    def __init__(self, sim, latency_s=DEFAULT_LATENCY_S, bandwidth_bps=DEFAULT_BANDWIDTH_BPS):
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self._sim = sim
        self._latency_s = latency_s
        self._default_bandwidth_bps = bandwidth_bps
        self._ports = {}
        # Endpoints register themselves so crash tooling can find and
        # kill everything attached for a given host prefix; the fabric
        # itself never calls into them during delivery.
        self._endpoints = {}
        # Wide-area topology: address prefixes map to sites, and pairs
        # of sites may override the propagation latency.  Everything
        # not assigned lives in the default site (the LAN case).
        self._site_prefixes = []
        self._intersite_latency = {}
        self.faults = FaultPlan()
        self.stats = NetworkStats()
        self.metrics = MetricsRegistry(sim)
        # Circuit breakers keyed by target (e.g. "ico:<loid>"), shared
        # by every client on the fabric: once one caller discovers a
        # dead ICO, the whole fleet fails fast instead of each instance
        # burning its own timeout schedule.
        self._breakers = {}
        # SLO monitors keyed by stream name (e.g. "canary:Sorter"),
        # registered by traffic harnesses and canary gates so system
        # reports can show service health fleet-wide.
        self._slo_monitors = {}
        # Arrival batching: every message landing at the same instant
        # shares one scheduled kernel event; spent envelopes are pooled
        # and reused so steady-state delivery allocates nothing.
        self._pending_arrivals = {}
        self._envelope_pool = []
        # Egress slowdown factors by address prefix (limping NICs);
        # applied to matching ports at attach() so a host's restart
        # endpoints inherit the degradation.
        self._egress_slowdowns = {}
        # Per-peer health registry (gray-failure quarantine).  None
        # until enable_health() arms it, so calibrated runs that never
        # opt in pay a single attribute check on the health hooks.
        self._health = None
        # Shared event bus: health/SLO/supervisor/chaos transitions are
        # published here so reactive consumers (the controller) sense
        # without polling.  Always present — publishing with no
        # subscribers is one dict lookup and a ring append.
        from repro.obs.bus import EventBus

        self.bus = EventBus(sim)

    # ------------------------------------------------------------------
    # Peer health (gray-failure quarantine)
    # ------------------------------------------------------------------

    def enable_health(self, **kwargs):
        """Arm the shared :class:`~repro.obs.health.HealthRegistry`.

        Idempotent; construction keyword arguments apply only on first
        creation.  Until armed, :meth:`health_observe` is a no-op and
        :meth:`health_quarantined` always answers False.
        """
        if self._health is None:
            from repro.obs.health import HealthRegistry

            self._health = HealthRegistry(
                self._sim, metrics=self.metrics, bus=self.bus, **kwargs
            )
        return self._health

    def publish(self, topic, subject=None, **details):
        """Publish one event on the fabric's shared bus."""
        return self.bus.publish(topic, subject, **details)

    @property
    def health(self):
        """The armed health registry, or None."""
        return self._health

    def health_observe(self, address, event):
        """Record a health signal for the host behind ``address``.

        ``event`` is one of ``"success"`` / ``"timeout"`` /
        ``"hedge_win"`` / ``"suspicion"``.  No-op unless armed.
        """
        if self._health is not None:
            self._health.observe(address.split("/", 1)[0], event)

    def health_quarantined(self, host):
        """True if ``host`` is currently quarantined (False when unarmed)."""
        return self._health is not None and self._health.is_quarantined(host)

    def health_snapshot(self):
        """Plain-dict view of peer health, for system reports."""
        return self._health.snapshot() if self._health is not None else {}

    def breaker(self, key, **kwargs):
        """Get-or-create the shared :class:`CircuitBreaker` for ``key``.

        Construction keyword arguments apply only on first creation;
        state transitions are mirrored into the fabric metrics
        (``breaker.opened`` / ``breaker.half_open`` / ``breaker.closed``).
        """
        from repro.net.retry import CircuitBreaker, CircuitState

        breaker = self._breakers.get(key)
        if breaker is None:

            def on_transition(__, state):
                if state is CircuitState.OPEN:
                    self.count("breaker.opened")
                elif state is CircuitState.HALF_OPEN:
                    self.count("breaker.half_open_probes")
                else:
                    self.count("breaker.closed")

            breaker = self._breakers[key] = CircuitBreaker(
                self._sim, name=key, on_transition=on_transition, **kwargs
            )
        return breaker

    def breakers_snapshot(self):
        """Plain-dict view of every breaker, for system reports."""
        return {
            key: {
                "state": breaker.state.value,
                "failures": breaker.failures,
                "successes": breaker.successes,
                "times_opened": breaker.times_opened,
                "short_circuits": breaker.short_circuits,
            }
            for key, breaker in sorted(self._breakers.items())
        }

    def slo_monitor(self, key, slo=None, **kwargs):
        """Get-or-create the shared SLO monitor for ``key``.

        ``slo`` (plus construction keyword arguments) applies only on
        first creation; later callers get the registered monitor.
        """
        from repro.obs.slo import SLOMonitor

        monitor = self._slo_monitors.get(key)
        if monitor is None:
            if slo is None:
                raise ValueError(f"no SLO monitor registered under {key!r}")
            monitor = self._slo_monitors[key] = SLOMonitor(
                self._sim, slo, bus=self.bus, stream=key, **kwargs
            )
        return monitor

    def register_slo_monitor(self, key, monitor):
        """Register an externally built monitor under ``key``.

        The fabric's bus is attached (and the stream named) so breach
        transitions publish even for monitors built elsewhere.
        """
        if getattr(monitor, "bus", None) is None:
            monitor.bus = self.bus
        if getattr(monitor, "stream", None) is None:
            monitor.stream = key
        self._slo_monitors[key] = monitor
        return monitor

    def slo_snapshot(self):
        """Plain-dict view of every registered SLO monitor."""
        return {
            key: monitor.snapshot()
            for key, monitor in sorted(self._slo_monitors.items())
        }

    @property
    def sim(self):
        """The owning simulator."""
        return self._sim

    @property
    def latency_s(self):
        """One-way propagation latency."""
        return self._latency_s

    def attach(self, address, bandwidth_bps=None):
        """Create and register a port for ``address``; returns the port.

        ``bandwidth_bps=None`` means the fabric default; an explicit
        invalid value (e.g. 0) is rejected by the port.
        """
        if address in self._ports:
            raise ValueError(f"address {address!r} already attached")
        if bandwidth_bps is None:
            bandwidth_bps = self._default_bandwidth_bps
        port = Port(self._sim, address, bandwidth_bps)
        for prefix, factor in self._egress_slowdowns.items():
            if address.startswith(prefix):
                port.slowdown = factor
        self._ports[address] = port
        return port

    def set_egress_slowdown(self, prefix, factor):
        """Slow (or restore, with 1.0) egress on every ``prefix`` port.

        Models a limping NIC: serialization time is multiplied by
        ``factor``.  Applies to current ports and to ports attached
        later under the same prefix (restarted endpoints limp too).
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor}")
        if factor == 1.0:
            self._egress_slowdowns.pop(prefix, None)
        else:
            self._egress_slowdowns[prefix] = factor
        for address, port in self._ports.items():
            if address.startswith(prefix):
                port.slowdown = factor

    def detach(self, address):
        """Remove the port for ``address``; in-flight messages are lost."""
        self._ports.pop(address, None)

    def port(self, address):
        """Return the port registered for ``address``.

        Raises ``KeyError`` for unknown addresses; callers that model
        "host unreachable" should use :meth:`knows` first.
        """
        return self._ports[address]

    def knows(self, address):
        """True if a port is attached at ``address``."""
        return address in self._ports

    def count(self, name, amount=1):
        """Bump the fabric-wide counter ``name`` (metrics convenience)."""
        self.metrics.counter(name).increment(amount)

    def count_value(self, name):
        """Current value of the fabric-wide counter ``name`` (0 if unused)."""
        return self.metrics.counter(name).value

    # ------------------------------------------------------------------
    # Endpoint registry (crash-fault support)
    # ------------------------------------------------------------------

    def register_endpoint(self, endpoint):
        """Track a live endpoint so crash tooling can close it by prefix."""
        self._endpoints[endpoint.address] = endpoint

    def unregister_endpoint(self, endpoint):
        """Forget a closing endpoint (idempotent)."""
        self._endpoints.pop(endpoint.address, None)

    def endpoints_with_prefix(self, prefix):
        """All live endpoints whose address starts with ``prefix``."""
        return [
            endpoint
            for address, endpoint in self._endpoints.items()
            if address.startswith(prefix)
        ]

    def addresses_with_prefix(self, prefix):
        """All attached addresses starting with ``prefix`` (ports, not endpoints)."""
        return [address for address in self._ports if address.startswith(prefix)]

    def close_endpoints_with_prefix(self, prefix):
        """Close every endpoint on ``prefix`` (a crashing host's addresses).

        Returns the closed endpoints.  Bare ports attached without an
        endpoint (rare, test-only) are detached too, so nothing keeps
        receiving on behalf of a dead host.
        """
        closed = self.endpoints_with_prefix(prefix)
        for endpoint in closed:
            endpoint.close()
        for address in self.addresses_with_prefix(prefix):
            self.detach(address)
        return closed

    # ------------------------------------------------------------------
    # Wide-area topology (the paper's setting is a wide-area system;
    # the measured testbed is one LAN site, which remains the default)
    # ------------------------------------------------------------------

    DEFAULT_SITE = "core"

    def assign_site(self, address_prefix, site):
        """Place every address starting with ``address_prefix`` in ``site``."""
        self._site_prefixes.append((address_prefix, site))
        # Longest prefix wins on overlap.
        self._site_prefixes.sort(key=lambda pair: -len(pair[0]))

    def site_of(self, address):
        """The site an address belongs to (DEFAULT_SITE if unassigned)."""
        for prefix, site in self._site_prefixes:
            if address.startswith(prefix):
                return site
        return self.DEFAULT_SITE

    def set_intersite_latency(self, site_a, site_b, latency_s):
        """Set the one-way latency between two sites (symmetric)."""
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self._intersite_latency[frozenset((site_a, site_b))] = latency_s

    def latency_between(self, source, destination):
        """One-way latency for a (source, destination) address pair."""
        site_a = self.site_of(source)
        site_b = self.site_of(destination)
        if site_a == site_b:
            return self._latency_s
        return self._intersite_latency.get(
            frozenset((site_a, site_b)), self._latency_s
        )

    def send(self, message):
        """Put ``message`` in flight; delivery is fire-and-forget.

        The egress serialization and the propagation delay are computed
        up front (see :meth:`Port.reserve_egress`), so a send costs no
        process and no per-message kernel event: every message arriving
        on the fabric at the same instant shares one scheduled arrival
        batch — broadcast and relay fan-out pay one kernel event per
        (arrival instant) wave, not one per message.
        """
        source_port = self._ports.get(message.source)
        if source_port is None:
            raise ValueError(f"unknown source address {message.source!r}")
        now = self._sim.now
        departure = source_port.reserve_egress(message.wire_bytes, now)
        arrival = departure + self.latency_between(message.source, message.destination)
        envelope = self._pending_arrivals.get(arrival)
        if envelope is None:
            pool = self._envelope_pool
            envelope = pool.pop() if pool else _DeliveryEnvelope(self)
            envelope.time = arrival
            self._pending_arrivals[arrival] = envelope
            self._sim._schedule_call(envelope.fire, delay=arrival - now)
        envelope.messages.append(message)
        return None

    def _arrive(self, envelope):
        """Land every message in one arrival batch (envelope callback)."""
        self._pending_arrivals.pop(envelope.time, None)
        now = self._sim.now
        ports = self._ports
        stats = self.stats
        faults = self.faults if self.faults.is_active else None
        for message in envelope.messages:
            if faults is not None:
                verdict = faults.route(message, now)
                if verdict is DROP:
                    stats.record_drop()
                    continue
                if verdict is not None:
                    # One copy per delay; delayed copies bypass fault
                    # re-evaluation (a slow link charges its toll once,
                    # and a duplicate cannot re-duplicate).
                    for delay in verdict:
                        if delay <= 0.0:
                            self._deliver_direct(message)
                        else:
                            self._sim._schedule_call(
                                self._make_direct_delivery(message), delay=delay
                            )
                    continue
            destination_port = ports.get(message.destination)
            if destination_port is None:
                # Destination vanished (crashed / detached): silent
                # loss, exactly like a frame to a dead NIC.
                stats.record_drop()
                continue
            destination_port.deliver(message)
            stats.record_delivery(message)
        envelope.messages.clear()
        self._envelope_pool.append(envelope)

    def _make_direct_delivery(self, message):
        """Bind ``message`` into a zero-arg callback for _schedule_call."""

        def fire():
            self._deliver_direct(message)

        return fire

    def _deliver_direct(self, message):
        """Deliver ``message`` now, skipping the fault plan.

        Used for delayed and duplicated copies whose fault disposition
        was already decided when they first crossed the fabric.
        """
        destination_port = self._ports.get(message.destination)
        if destination_port is None:
            self.stats.record_drop()
            return
        destination_port.deliver(message)
        self.stats.record_delivery(message)

    def transfer_time(self, size_bytes):
        """Ideal one-way time to move ``size_bytes`` (no contention)."""
        return self._latency_s + size_bytes / self._default_bandwidth_bps

    def __repr__(self):
        return f"<Network ports={len(self._ports)} delivered={self.stats.messages_delivered}>"
