"""Per-host network ports.

A :class:`Port` models one host's full-duplex connection to the
switch: an egress transmitter serialized at the port's bandwidth, and
an ingress queue that the endpoint's receive loop drains.
Transmissions from different hosts never contend (switched Ethernet),
but messages leaving one host go out one at a time in FIFO order.

Egress serialization is *computed*, not simulated: instead of parking
a process on a semaphore for the duration of each transmission, the
port tracks the instant its transmitter next falls idle and hands the
fabric a departure time directly.  Reservation order equals send
order, so the FIFO behaviour of the old semaphore model is preserved
exactly — without two kernel events and a process per message.
"""

from repro.sim import Queue


class Port:
    """One endpoint's attachment to the network fabric.

    Parameters
    ----------
    sim:
        The owning simulator.
    address:
        The endpoint address this port serves.
    bandwidth_bps:
        Egress bandwidth in *bytes* per second.
    """

    __slots__ = (
        "_sim",
        "_address",
        "_bandwidth_bps",
        "_egress_free_at",
        "_inbox",
        "slowdown",
        "bytes_sent",
        "bytes_received",
        "messages_sent",
        "messages_received",
    )

    def __init__(self, sim, address, bandwidth_bps):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self._sim = sim
        self._address = address
        self._bandwidth_bps = float(bandwidth_bps)
        self._egress_free_at = 0.0
        self._inbox = Queue(sim, name=f"{address}.inbox")
        # Egress degradation multiplier (>= 1.0); a limping NIC
        # serializes this many times slower than its rated bandwidth.
        self.slowdown = 1.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def address(self):
        """The endpoint address this port serves."""
        return self._address

    @property
    def bandwidth_bps(self):
        """Egress bandwidth in bytes per second."""
        return self._bandwidth_bps

    @property
    def inbox(self):
        """Queue of delivered messages, drained by the endpoint."""
        return self._inbox

    def transmission_time(self, wire_bytes):
        """Seconds this port's transmitter is busy sending ``wire_bytes``."""
        return wire_bytes * self.slowdown / self._bandwidth_bps

    def reserve_egress(self, wire_bytes, now):
        """Reserve the transmitter for ``wire_bytes``; returns departure time.

        The transmission starts when the port falls idle (or ``now``,
        whichever is later) and occupies the transmitter for the wire
        time.  Back-to-back reservations therefore serialize exactly
        like the semaphore-held transmit they replace.
        """
        start = self._egress_free_at
        if start < now:
            start = now
        departure = start + wire_bytes * self.slowdown / self._bandwidth_bps
        self._egress_free_at = departure
        self.bytes_sent += wire_bytes
        self.messages_sent += 1
        return departure

    def deliver(self, message):
        """Place a fully-propagated message in this port's inbox."""
        self.bytes_received += message.wire_bytes
        self.messages_received += 1
        self._inbox.put_nowait(message)

    def __repr__(self):
        return f"<Port {self._address} rx={self.messages_received} tx={self.messages_sent}>"
