"""Per-host network ports.

A :class:`Port` models one host's full-duplex connection to the
switch: an egress queue serialized at the port's bandwidth, and an
ingress queue that the endpoint's receive loop drains.  Transmissions
from different hosts never contend (switched Ethernet), but messages
leaving one host go out one at a time in FIFO order.
"""

from repro.sim import Queue, Semaphore


class Port:
    """One endpoint's attachment to the network fabric.

    Parameters
    ----------
    sim:
        The owning simulator.
    address:
        The endpoint address this port serves.
    bandwidth_bps:
        Egress bandwidth in *bytes* per second.
    """

    def __init__(self, sim, address, bandwidth_bps):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self._sim = sim
        self._address = address
        self._bandwidth_bps = float(bandwidth_bps)
        self._egress = Semaphore(sim, permits=1, name=f"{address}.egress")
        self._inbox = Queue(sim, name=f"{address}.inbox")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def address(self):
        """The endpoint address this port serves."""
        return self._address

    @property
    def bandwidth_bps(self):
        """Egress bandwidth in bytes per second."""
        return self._bandwidth_bps

    @property
    def inbox(self):
        """Queue of delivered messages, drained by the endpoint."""
        return self._inbox

    def transmission_time(self, wire_bytes):
        """Seconds this port's transmitter is busy sending ``wire_bytes``."""
        return wire_bytes / self._bandwidth_bps

    def transmit(self, message):
        """Process body: occupy the egress port for the message's wire time.

        Returns a generator to be driven with ``yield from``.  On
        return, the message has fully left the host; propagation and
        delivery are the fabric's job.
        """
        yield self._egress.acquire()
        try:
            yield self._sim.timeout(self.transmission_time(message.wire_bytes))
        finally:
            self._egress.release()
        self.bytes_sent += message.wire_bytes
        self.messages_sent += 1

    def deliver(self, message):
        """Place a fully-propagated message in this port's inbox."""
        self.bytes_received += message.wire_bytes
        self.messages_received += 1
        self._inbox.put_nowait(message)

    def __repr__(self):
        return f"<Port {self._address} rx={self.messages_received} tx={self.messages_sent}>"
