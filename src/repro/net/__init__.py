"""Simulated network: messages, links, fabric, and reliable transport.

The model is a switched LAN in the style of the paper's testbed (100
Mbps switched Ethernet): every host has its own full-duplex port into
the switch, so transmissions from different hosts do not contend, while
messages from one host serialize on its egress port.  Message delivery
time is ``propagation latency + size / bandwidth``.

Fault injection (drops and partitions) is built into the fabric so
tests can exercise timeout/retry behaviour in the layers above.
"""

from repro.net.fabric import Network, NetworkStats
from repro.net.faults import (
    DROP,
    DropRule,
    DuplicateRule,
    FaultPlan,
    LinkFlap,
    OneWayPartition,
    Partition,
    PrefixPartition,
    ReorderRule,
    SlowLink,
)
from repro.net.link import Port
from repro.net.message import ManagerTerm, Message, next_message_id
from repro.net.retry import (
    DEFAULT_REQUEST_RETRY,
    CircuitBreaker,
    CircuitState,
    RetryPolicy,
    RttEstimator,
)
from repro.net.transport import (
    BATCH_RECORD_BYTES,
    CircuitOpen,
    Endpoint,
    RemoteError,
    RequestTimeout,
    TransportError,
    run_windowed,
)

__all__ = [
    "BATCH_RECORD_BYTES",
    "CircuitBreaker",
    "CircuitOpen",
    "CircuitState",
    "DEFAULT_REQUEST_RETRY",
    "DROP",
    "DropRule",
    "DuplicateRule",
    "Endpoint",
    "FaultPlan",
    "LinkFlap",
    "ManagerTerm",
    "Message",
    "Network",
    "NetworkStats",
    "OneWayPartition",
    "Partition",
    "Port",
    "PrefixPartition",
    "RemoteError",
    "ReorderRule",
    "RequestTimeout",
    "RttEstimator",
    "SlowLink",
    "TransportError",
    "RetryPolicy",
    "next_message_id",
    "run_windowed",
]
