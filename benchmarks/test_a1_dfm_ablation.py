"""A1 — ablation: real (wall-clock) cost of the DFM indirection.

The simulated experiments charge the paper's calibrated 10-15 us; this
ablation measures what the indirection costs in *this* implementation:
a hot :meth:`DynamicFunctionMapper.lookup` against a direct Python
call, across DFM sizes.  The claim being checked is structural — the
lookup is O(entries) in the worst case here, but stays cheap at the
paper's scales (up to 500 functions).
"""

import pytest

from repro.core import ComponentBuilder
from repro.core.dfm import DynamicFunctionMapper
from repro.core.impltype import NATIVE


def build_dfm(function_count):
    builder = ComponentBuilder("bench-comp")
    for index in range(function_count):
        builder.function(f"fn_{index:04d}", lambda ctx: None)
    component = builder.build()
    dfm = DynamicFunctionMapper()
    dfm.add_component(component, component.variants[NATIVE])
    for index in range(function_count):
        dfm.enable(f"fn_{index:04d}", "bench-comp")
    return dfm


@pytest.mark.parametrize("function_count", [10, 100, 500])
def test_a1_dfm_lookup(benchmark, function_count):
    dfm = build_dfm(function_count)
    target = f"fn_{function_count // 2:04d}"
    entry = benchmark(dfm.lookup, target)
    assert entry.function == target
    benchmark.extra_info["function_count"] = function_count


def test_a1_direct_call_baseline(benchmark):
    def direct(ctx):
        return None

    result = benchmark(direct, None)
    assert result is None


def test_a1_dispatch_with_thread_accounting(benchmark):
    """Full enter/lookup/leave cycle — the per-call DFM work."""
    dfm = build_dfm(100)

    def dispatch():
        entry = dfm.lookup("fn_0050")
        dfm.enter(entry)
        dfm.leave(entry)

    benchmark(dispatch)
