"""P1 — invocation fast path (leases + batching); writes BENCH_invocation.json."""

import json
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p1

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_invocation.json"


def test_p1_fastpath(benchmark):
    result = run_experiment(benchmark, run_p1)
    benchmark.extra_info["round_trips"] = result.extra["round_trips"]
    benchmark.extra_info["throughput"] = result.extra["throughput"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
