"""P7 — gray-failure tolerance gates; writes BENCH_gray.json."""

import json
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p7

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_gray.json"


def test_p7_gray(benchmark):
    result = run_experiment(benchmark, run_p7)
    benchmark.extra_info["unhardened_ratio"] = result.extra["unhardened_ratio"]
    benchmark.extra_info["hardened_ratio"] = result.extra["hardened_ratio"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
