"""P5 — SLO-gated canary blast radius + MTTR; writes BENCH_slo.json."""

import json
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p5

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_slo.json"


def test_p5_slo_waves(benchmark):
    result = run_experiment(benchmark, run_p5)
    benchmark.extra_info["gated_mttr_s"] = result.extra["gated"]["mttr_s"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
