"""A2 — ablation: update-policy trade-offs argued in §3.4."""

from conftest import run_experiment

from repro.bench.experiments import run_a2


def test_a2_policy_tradeoffs(benchmark):
    result = run_experiment(benchmark, run_a2)
    for name, data in result.extra.items():
        benchmark.extra_info[name] = {
            "cut_latency_s": data["cut_latency_s"],
            "steady_latency_s": data["steady_latency_s"],
        }
