"""P8 — sharded-plane scaling ladder; writes BENCH_shard.json.

The full 10,240-instance fleet takes a minute or two of wall time;
CI smoke runs set ``P8_FLEET=2048`` to measure a reduced fleet (the
scaling and exactly-once gates are ratios and counts, so they hold
unchanged at the reduced size).
"""

import json
import os
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p8
from repro.bench.experiments.p8_shard import FLEET

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard.json"


def _fleet():
    spec = os.environ.get("P8_FLEET", "").strip()
    return int(spec) if spec else FLEET


def test_p8_shard(benchmark):
    result = run_experiment(
        benchmark, lambda seed: run_p8(seed=seed, fleet=_fleet())
    )
    benchmark.extra_info["scaling_4v1"] = result.extra["scaling_4v1"]
    benchmark.extra_info["rungs"] = result.extra["rungs"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
