"""P4 — manager failover MTTR vs restart; writes BENCH_availability.json."""

import json
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p4

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_availability.json"


def test_p4_availability(benchmark):
    result = run_experiment(benchmark, run_p4)
    benchmark.extra_info["intervals"] = result.extra["intervals"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
