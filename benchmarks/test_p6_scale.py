"""P6 — kernel + runtime scale to 100k DCDOs; writes BENCH_scale.json.

The full ladder (1k / 10k / 100k instances) takes a few minutes of
wall time; CI smoke runs set ``P6_SCALES=1024,10240`` to measure the
reduced ladder (the regression gate's instance floor is then lowered
to match via ``check_regression.py --scale-floor``).
"""

import json
import os
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p6
from repro.bench.experiments.p6_scale import SCALES

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def _scales():
    spec = os.environ.get("P6_SCALES", "").strip()
    if not spec:
        return SCALES
    return tuple(int(field) for field in spec.split(","))


def test_p6_scale(benchmark):
    scales = _scales()
    result = run_experiment(
        benchmark, lambda seed: run_p6(seed=seed, scales=scales)
    )
    benchmark.extra_info["scales"] = result.extra["scales"]
    benchmark.extra_info["storm_speedup"] = result.extra["storm"]["speedup"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
