"""E5 — implementation download time vs size (550 KB ~4 s, 5.1 MB 15-25 s)."""

from conftest import run_experiment

from repro.bench.experiments import run_e5


def test_e5_download_time(benchmark):
    result = run_experiment(benchmark, run_e5)
    benchmark.extra_info["measured_s"] = result.extra["measured_s"]
