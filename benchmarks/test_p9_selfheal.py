"""P9 — self-healing MTTR ratio; writes BENCH_selfheal.json.

The full 48-instance compound incident (limping host + unguarded
degraded deploy) runs twice — reactive controller vs. the same
runbook at operator cadence.  CI smoke runs set ``P9_FLEET`` to a
smaller fleet; the gates are ratios and hygiene counts, so they hold
unchanged at the reduced size.
"""

import json
import os
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p9
from repro.bench.experiments.p9_selfheal import FLEET

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_selfheal.json"


def _fleet():
    spec = os.environ.get("P9_FLEET", "").strip()
    return int(spec) if spec else FLEET


def test_p9_selfheal(benchmark):
    result = run_experiment(
        benchmark, lambda seed: run_p9(seed=seed, fleet=_fleet())
    )
    benchmark.extra_info["mttr_ratio"] = result.extra["mttr_ratio"]
    benchmark.extra_info["controller_mttr_s"] = result.extra["controller"][
        "mttr_s"
    ]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
