"""A3 — ablation: headline orderings are robust to calibration swings."""

from conftest import run_experiment

from repro.bench.experiments import run_a3


def test_a3_calibration_sensitivity(benchmark):
    run_experiment(benchmark, run_a3)
