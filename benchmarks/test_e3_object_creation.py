"""E3 — creating a 500-function object: monolithic vs componentized."""

from conftest import run_experiment

from repro.bench.experiments import run_e3


def test_e3_object_creation(benchmark):
    result = run_experiment(benchmark, run_e3)
    benchmark.extra_info["monolithic_s"] = result.extra["monolithic_s"]
    benchmark.extra_info["dcdo_s"] = {
        str(components): elapsed for components, elapsed in result.extra["dcdo_s"].items()
    }
