"""E4 — stale binding discovery takes ~25-35 s."""

from conftest import run_experiment

from repro.bench.experiments import run_e4


def test_e4_stale_binding(benchmark):
    result = run_experiment(benchmark, run_e4)
    benchmark.extra_info["discovery_times_s"] = result.extra["discovery_times_s"]
