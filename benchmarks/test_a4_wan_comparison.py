"""A4 — ablation: the E7 comparison in the wide-area setting."""

from conftest import run_experiment

from repro.bench.experiments import run_a4


def test_a4_wan_comparison(benchmark):
    result = run_experiment(benchmark, run_a4)
    benchmark.extra_info.update(result.extra)
