"""P2 — windowed manager fan-out; writes BENCH_propagation.json."""

import json
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p2

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_propagation.json"


def test_p2_fanout(benchmark):
    result = run_experiment(benchmark, run_p2)
    benchmark.extra_info["waves"] = result.extra["waves"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
