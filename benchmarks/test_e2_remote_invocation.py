"""E2 — remote invocation round trips are flat in implementation size."""

from conftest import run_experiment

from repro.bench.experiments import run_e2


def test_e2_remote_invocation(benchmark):
    result = run_experiment(benchmark, run_e2)
    benchmark.extra_info["dcdo_rtts_ms"] = result.extra["dcdo_rtts_ms"]
    benchmark.extra_info["mono_rtts_ms"] = result.extra["mono_rtts_ms"]
