"""Gate benchmark runs against a committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE CURRENT [--threshold 0.25]

Compares the P2 propagation benchmark's windowed wave latencies
(``extra.waves.<size>.windowed_s``) between a baseline JSON (the
committed ``BENCH_propagation.json``) and a freshly produced one.
Exits non-zero if any wave size regressed by more than the threshold
(default 25%), so CI fails instead of silently uploading a slower
result.  The simulator is deterministic, so any movement here is a
genuine behavior change in the delivery path, not noise.
"""

import argparse
import json
import sys


def load_waves(path):
    with open(path) as handle:
        data = json.load(handle)
    try:
        waves = data["extra"]["waves"]
    except KeyError:
        raise SystemExit(f"{path}: no extra.waves section — not a P2 result?")
    return {size: entry["windowed_s"] for size, entry in waves.items()}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_propagation.json")
    parser.add_argument("current", help="freshly generated BENCH_propagation.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = load_waves(args.baseline)
    current = load_waves(args.current)
    failures = []
    for size in sorted(baseline, key=int):
        base = baseline[size]
        if size not in current:
            failures.append(f"wave size {size}: missing from current results")
            continue
        now = current[size]
        ratio = (now - base) / base if base else float("inf")
        status = "OK"
        if ratio > args.threshold:
            status = "REGRESSED"
            failures.append(
                f"wave size {size}: windowed {base * 1000:.2f} ms -> "
                f"{now * 1000:.2f} ms ({ratio:+.1%} > {args.threshold:.0%})"
            )
        print(
            f"P2 wave {size:>3} instances: baseline {base * 1000:8.2f} ms, "
            f"current {now * 1000:8.2f} ms ({ratio:+.1%}) {status}"
        )
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
