"""Gate benchmark runs against a committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE CURRENT [--threshold 0.25]
        [--scaleout BENCH_scaleout.json]

Compares the P2 propagation benchmark's windowed wave latencies
(``extra.waves.<size>.windowed_s``) between a baseline JSON (the
committed ``BENCH_propagation.json``) and a freshly produced one.
Exits non-zero if any wave size regressed by more than the threshold
(default 25%), so CI fails instead of silently uploading a slower
result.  The simulator is deterministic, so any movement here is a
genuine behavior change in the delivery path, not noise.

``--scaleout`` additionally gates the P3 scale-out invariants on a
freshly produced ``BENCH_scaleout.json``: the relay-batched wave must
beat the flat wave at 256 instances and up, and the blob-cache hit
rate must reach ``(iph - 1) / iph`` for ``iph`` instances per host —
i.e. every colocated incorporation after a host's first is served
locally.

``--availability`` gates the P4 availability invariants on a freshly
produced ``BENCH_availability.json``: every supervised hot-takeover
MTTR must land well under the restart-and-recover baseline (under a
third of it), MTTR must grow with the heartbeat interval (detection
dominates), and the split-brain run must show the zombie primary
actually fenced — at least one stale-term rejection and zero duplicate
applications.

``--slo`` gates the P5 SLO-gated canary invariants on a freshly
produced ``BENCH_slo.json``: the healthy rollout must ramp to full
adoption with client p99 inside the objective, the gated degraded
rollout must stop at the canary (blast radius far below the ungated
baseline's full-fleet infection) and recover within 60 simulated
seconds of the breach.

``--gray`` gates the P7 gray-failure tolerance invariants on a freshly
produced ``BENCH_gray.json``: the unhardened wave behind a limping
root relay must degrade p99 by at least the recorded floor (the
scenario stays painful), the hardened wave must recover to within the
recorded ceiling of healthy with the limper actually quarantined and
skipped, exactly-once must hold across all waves, and the phi-accrual
supervisor must ride out a gray manager link with zero promotions
where the fixed-threshold one flaps.

``--shard`` gates the P8 sharded-plane invariants on a freshly
produced ``BENCH_shard.json``: full-fleet wave throughput at 4 shards
must reach 3x the single-shard rung with per-shard efficiency >= 0.8
(near-linear scaling), single-shard recovery must replay only the
failed shard's journal (share of plane-wide entries under the
recorded ceiling), and the live split mid-wave must lose nothing and
apply the in-flight version exactly once everywhere.

``--selfheal`` gates the P9 self-healing invariants on a freshly
produced ``BENCH_selfheal.json``: both the controller-driven run and
the operator-cadence baseline must fully heal the compound incident
(rollback converged *and* limper drained), the controller's MTTR must
beat the operator's by at least the recorded ``mttr_floor`` (3x), and
hygiene must hold across both runs — zero duplicate applications and
zero dangling remediation intents.

``--scale`` gates the P6 kernel/runtime scale invariants on a freshly
produced ``BENCH_scale.json``: the largest measured fleet must reach
``--scale-floor`` live instances (default 100,000; CI smoke runs pass
a reduced floor matching their reduced ladder), the message-storm
speedup over the reproduced pre-PR stack must hold at >= 5x, and the
announcement wave must stay flat (within the experiment's recorded
tolerance) from the smallest to the largest fleet.
"""

import argparse
import json
import sys


def load_waves(path):
    with open(path) as handle:
        data = json.load(handle)
    try:
        waves = data["extra"]["waves"]
    except KeyError:
        raise SystemExit(f"{path}: no extra.waves section — not a P2 result?")
    return {size: entry["windowed_s"] for size, entry in waves.items()}


def check_p2(baseline_path, current_path, threshold):
    """Gate P2 windowed wave latencies; returns failure strings."""
    baseline = load_waves(baseline_path)
    current = load_waves(current_path)
    failures = []
    for size in sorted(baseline, key=int):
        base = baseline[size]
        if size not in current:
            failures.append(f"wave size {size}: missing from current results")
            continue
        now = current[size]
        ratio = (now - base) / base if base else float("inf")
        status = "OK"
        if ratio > threshold:
            status = "REGRESSED"
            failures.append(
                f"wave size {size}: windowed {base * 1000:.2f} ms -> "
                f"{now * 1000:.2f} ms ({ratio:+.1%} > {threshold:.0%})"
            )
        print(
            f"P2 wave {size:>3} instances: baseline {base * 1000:8.2f} ms, "
            f"current {now * 1000:8.2f} ms ({ratio:+.1%}) {status}"
        )
    return failures


def check_p3(path):
    """Gate the P3 scale-out invariants; returns failure strings."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        scales = data["extra"]["scales"]
    except KeyError:
        raise SystemExit(f"{path}: no extra.scales section — not a P3 result?")
    failures = []
    for size in sorted(scales, key=int):
        entry = scales[size]
        flat_s = entry["flat"]["wave_s"]
        relay_s = entry["relay"]["wave_s"]
        iph = entry["instances_per_host"]
        expected_hit_rate = (iph - 1) / iph if iph else 0.0
        hit_rate = entry["relay"]["hit_rate"]
        status = "OK"
        if int(size) >= 256 and relay_s >= flat_s:
            status = "REGRESSED"
            failures.append(
                f"scale {size}: relay wave {relay_s * 1000:.2f} ms did not "
                f"beat flat {flat_s * 1000:.2f} ms"
            )
        if hit_rate < expected_hit_rate - 1e-9:
            status = "REGRESSED"
            failures.append(
                f"scale {size}: blob-cache hit rate {hit_rate:.3f} below "
                f"(iph-1)/iph = {expected_hit_rate:.3f}"
            )
        print(
            f"P3 scale {size:>4} instances: flat {flat_s * 1000:8.2f} ms, "
            f"relay {relay_s * 1000:8.2f} ms, hit rate {hit_rate:.3f} "
            f"(floor {expected_hit_rate:.3f}) {status}"
        )
    return failures


def check_p4(path):
    """Gate the P4 availability invariants; returns failure strings."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        extra = data["extra"]
        baseline_mttr = extra["baseline"]["mttr_s"]
        intervals = extra["intervals"]
        split = extra["split_brain"]
    except KeyError as exc:
        raise SystemExit(f"{path}: missing {exc} — not a P4 result?")
    failures = []
    previous = None
    for interval in sorted(intervals, key=float):
        mttr = intervals[interval]["mttr_s"]
        status = "OK"
        if mttr >= baseline_mttr / 3:
            status = "REGRESSED"
            failures.append(
                f"heartbeat {interval}s: takeover MTTR {mttr:.2f} s not well "
                f"under restart baseline {baseline_mttr:.2f} s"
            )
        if previous is not None and mttr < previous:
            status = "REGRESSED"
            failures.append(
                f"heartbeat {interval}s: MTTR {mttr:.2f} s below the "
                f"shorter interval's {previous:.2f} s — detection no longer "
                f"dominates takeover time"
            )
        previous = mttr
        print(
            f"P4 heartbeat {interval:>4}s: takeover MTTR {mttr:6.2f} s "
            f"(baseline {baseline_mttr:.2f} s) {status}"
        )
    if split["stale_term_rejections"] < 1:
        failures.append(
            "split brain: no stale-term rejections — the zombie primary "
            "was never fenced"
        )
    if split["duplicate_applications"] != 0:
        failures.append(
            f"split brain: {split['duplicate_applications']} duplicate "
            f"applications — exactly-once broken"
        )
    print(
        f"P4 split brain: {split['stale_term_rejections']} stale-term "
        f"rejections, {split['duplicate_applications']} duplicates "
        f"{'OK' if not any('split brain' in f for f in failures) else 'REGRESSED'}"
    )
    return failures


def check_p5(path):
    """Gate the P5 SLO-gated wave invariants; returns failure strings."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        extra = data["extra"]
        healthy = extra["healthy"]
        gated = extra["gated"]
        ungated = extra["ungated"]
    except KeyError as exc:
        raise SystemExit(f"{path}: missing {exc} — not a P5 result?")
    failures = []
    if healthy["admitted"] != extra["instances"]:
        failures.append(
            f"healthy rollout stopped at {healthy['admitted']}/"
            f"{extra['instances']} instances"
        )
    if healthy["during_p99_s"] > 0.200:
        failures.append(
            f"healthy rollout p99 {healthy['during_p99_s'] * 1000:.1f} ms "
            f"breached the 200 ms objective"
        )
    if gated["blast_radius"] >= ungated["blast_radius"]:
        failures.append(
            f"gate stopped containing the blast: gated "
            f"{gated['blast_radius']:.3f} vs ungated "
            f"{ungated['blast_radius']:.3f}"
        )
    if gated["infected"] != 1:
        failures.append(
            f"gated rollout infected {gated['infected']} instances — the "
            f"breach should land during the canary bake"
        )
    if not 0.0 < gated["mttr_s"] <= 60.0:
        failures.append(
            f"gated rollback MTTR {gated['mttr_s']:.1f} s outside (0, 60]"
        )
    if ungated["infected"] != extra["instances"]:
        failures.append(
            f"ungated baseline infected {ungated['infected']}/"
            f"{extra['instances']} — the comparison fleet changed"
        )
    status = "OK" if not failures else "REGRESSED"
    print(
        f"P5 gated blast {gated['blast_radius']:.3f} "
        f"(ungated {ungated['blast_radius']:.3f}), rollback MTTR "
        f"{gated['mttr_s']:.1f} s, healthy-rollout p99 "
        f"{healthy['during_p99_s'] * 1000:.1f} ms {status}"
    )
    return failures


def check_p6(path, instance_floor):
    """Gate the P6 kernel/runtime scale invariants; returns failures."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        extra = data["extra"]
        speedup = extra["storm"]["speedup"]
        speedup_floor = extra["speedup_floor"]
        flatness = extra["wave_flatness"]
        tolerance = extra["flatness_tolerance"]
        max_instances = extra["max_instances"]
        scales = extra["scales"]
    except KeyError as exc:
        raise SystemExit(f"{path}: missing {exc} — not a P6 result?")
    failures = []
    if max_instances < instance_floor:
        failures.append(
            f"largest fleet held {max_instances} live instances, below "
            f"the {instance_floor} floor"
        )
    if speedup < speedup_floor:
        failures.append(
            f"storm speedup {speedup:.2f}x fell below the "
            f"{speedup_floor:.0f}x floor over the pre-PR stack"
        )
    if abs(flatness - 1.0) > tolerance:
        failures.append(
            f"wave latency ratio {flatness:.3f}x across the scale ladder "
            f"is outside ±{tolerance:.0%}"
        )
    for size in sorted(scales, key=int):
        entry = scales[size]
        if entry["fallback_instances"]:
            failures.append(
                f"scale {size}: {entry['fallback_instances']} instances "
                f"fell back off the announcement path"
            )
        print(
            f"P6 scale {size:>6} instances / {entry['hosts']:>4} hosts: "
            f"wave {entry['wave_s'] * 1000:8.2f} ms, "
            f"{entry['events_per_s']:12,.0f} ev/s"
        )
    status = "OK" if not failures else "REGRESSED"
    print(
        f"P6 storm speedup {speedup:.2f}x (floor {speedup_floor:.0f}x), "
        f"wave flatness {flatness:.3f}x (±{tolerance:.0%}), "
        f"max fleet {max_instances} (floor {instance_floor}) {status}"
    )
    return failures


def check_p7(path):
    """Gate the P7 gray-failure tolerance invariants; returns failures."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        extra = data["extra"]
        unhardened_ratio = extra["unhardened_ratio"]
        hardened_ratio = extra["hardened_ratio"]
        unhardened_floor = extra["unhardened_floor"]
        hardened_ceiling = extra["hardened_ceiling"]
        hardened = extra["hardened"]
        fixed = extra["fixed_detector"]
        phi = extra["phi_detector"]
    except KeyError as exc:
        raise SystemExit(f"{path}: missing {exc} — not a P7 result?")
    failures = []
    if unhardened_ratio < unhardened_floor:
        failures.append(
            f"unhardened gray wave p99 only {unhardened_ratio:.1f}x healthy "
            f"(floor {unhardened_floor:.0f}x) — the limping-relay scenario "
            f"no longer hurts, so the hardened comparison proves nothing"
        )
    if hardened_ratio > hardened_ceiling:
        failures.append(
            f"hardened gray wave p99 {hardened_ratio:.1f}x healthy, above "
            f"the {hardened_ceiling:.0f}x ceiling — quarantine routing "
            f"stopped recovering the wave"
        )
    if not hardened["limper_quarantined"] or hardened["quarantine_skips"] < 1:
        failures.append(
            "hardened run never quarantined-and-skipped the limping relay "
            f"(quarantined={hardened['limper_quarantined']}, "
            f"skips={hardened['quarantine_skips']})"
        )
    duplicates = sum(
        extra[mode]["duplicate_applications"]
        for mode in ("healthy", "unhardened", "hardened")
    )
    if duplicates != 0:
        failures.append(
            f"{duplicates} duplicate applications under gray faults — "
            f"exactly-once broken"
        )
    if fixed["promotions"] < 1:
        failures.append(
            "fixed-threshold supervisor no longer flaps on a slow manager "
            "— the phi comparison proves nothing"
        )
    if phi["promotions"] != 0 or phi["false_positives"] != 0:
        failures.append(
            f"phi supervisor failed over a live-but-slow manager "
            f"({phi['promotions']} promotions, "
            f"{phi['false_positives']} false positives)"
        )
    status = "OK" if not failures else "REGRESSED"
    print(
        f"P7 gray wave p99: unhardened {unhardened_ratio:.1f}x / hardened "
        f"{hardened_ratio:.1f}x healthy (floor {unhardened_floor:.0f}x, "
        f"ceiling {hardened_ceiling:.0f}x), quarantine skips "
        f"{hardened['quarantine_skips']}, detector failovers fixed "
        f"{fixed['promotions']} / phi {phi['promotions']} {status}"
    )
    return failures


def check_p8(path):
    """Gate the P8 sharded-plane invariants; returns failure strings."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        extra = data["extra"]
        rungs = extra["rungs"]
        scaling = extra["scaling_4v1"]
        scaling_floor = extra["scaling_floor"]
        efficiency_floor = extra["efficiency_floor"]
        recovery = extra["recovery"]
        recovery_ceiling = extra["recovery_share_ceiling"]
        split = extra["split"]
    except KeyError as exc:
        raise SystemExit(f"{path}: missing {exc} — not a P8 result?")
    failures = []
    for count in sorted(rungs, key=int):
        entry = rungs[count]
        print(
            f"P8 {count:>2} shard(s): wave {entry['wave_s'] * 1000:8.2f} ms, "
            f"{entry['throughput_per_s']:10,.0f} inst/s"
        )
    if scaling is None:
        failures.append("shard ladder skipped the 4-shard rung — no scaling gate")
    else:
        if scaling < scaling_floor:
            failures.append(
                f"wave throughput at 4 shards only {scaling:.2f}x one shard "
                f"(floor {scaling_floor:.0f}x)"
            )
        if scaling / 4.0 < efficiency_floor:
            failures.append(
                f"per-shard efficiency {scaling / 4.0:.2f} at 4 shards below "
                f"the {efficiency_floor:.0%}-of-linear floor"
            )
    if recovery["replay_share"] > recovery_ceiling:
        failures.append(
            f"single-shard recovery replayed {recovery['replay_share']:.1%} "
            f"of the plane's journal entries (ceiling "
            f"{recovery_ceiling:.0%}) — recovery is no longer per-shard"
        )
    if split["lost"] != 0 or split["duplicated_applies"] != 0 or split["stragglers"] != 0:
        failures.append(
            f"live split mid-wave: {split['lost']} lost, "
            f"{split['duplicated_applies']} duplicated, "
            f"{split['stragglers']} stragglers — exactly-once across the "
            f"handoff broken"
        )
    status = "OK" if not failures else "REGRESSED"
    print(
        f"P8 scaling {scaling:.2f}x at 4 shards (floor {scaling_floor:.0f}x, "
        f"efficiency floor {efficiency_floor:.0%}), recovery replay share "
        f"{recovery['replay_share']:.1%} (ceiling {recovery_ceiling:.0%}), "
        f"split lost/dup {split['lost']}/{split['duplicated_applies']} {status}"
    )
    return failures


def check_p9(path):
    """Gate the P9 self-healing invariants; returns failure strings."""
    with open(path) as handle:
        data = json.load(handle)
    try:
        extra = data["extra"]
        controller = extra["controller"]
        operator = extra["operator"]
        ratio = extra["mttr_ratio"]
        floor = extra["mttr_floor"]
    except KeyError as exc:
        raise SystemExit(f"{path}: missing {exc} — not a P9 result?")
    failures = []
    for run in (controller, operator):
        label = run["mode"]
        if not run["healed"]:
            failures.append(
                f"{label} run never healed the compound incident "
                f"(rollback {run['rollback_mttr_s']}, "
                f"migrate {run['migrate_mttr_s']})"
            )
        if run["rollbacks"] < 1:
            failures.append(f"{label} run completed no rollback wave")
        if run["migrations"] < 1:
            failures.append(f"{label} run migrated nothing off the limper")
        if run["duplicate_applications"] != 0:
            failures.append(
                f"{label} run applied a version "
                f"{run['duplicate_applications']} extra time(s) — "
                f"exactly-once broken"
            )
        if run["open_intents"] != 0:
            failures.append(
                f"{label} run left {run['open_intents']} remediation "
                f"intent(s) dangling open in the journal"
            )
    if ratio is None:
        failures.append("MTTR ratio unavailable — a run failed to heal")
    elif ratio < floor:
        failures.append(
            f"controller MTTR only {ratio:.2f}x faster than the operator "
            f"runbook (floor {floor:.0f}x)"
        )
    status = "OK" if not failures else "REGRESSED"

    def mttr_text(run):
        return f"{run['mttr_s']:.1f}s" if run["healed"] else "unhealed"

    ratio_text = f"{ratio:.2f}x" if ratio is not None else "n/a"
    print(
        f"P9 controller MTTR {mttr_text(controller)} vs operator "
        f"{mttr_text(operator)} (ratio {ratio_text}, floor {floor:.0f}x) "
        f"{status}"
    )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_propagation.json")
    parser.add_argument("current", help="freshly generated BENCH_propagation.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--scaleout",
        default=None,
        help="freshly generated BENCH_scaleout.json to gate P3 invariants",
    )
    parser.add_argument(
        "--availability",
        default=None,
        help="freshly generated BENCH_availability.json to gate P4 invariants",
    )
    parser.add_argument(
        "--slo",
        default=None,
        help="freshly generated BENCH_slo.json to gate P5 invariants",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="freshly generated BENCH_scale.json to gate P6 invariants",
    )
    parser.add_argument(
        "--gray",
        default=None,
        help="freshly generated BENCH_gray.json to gate P7 invariants",
    )
    parser.add_argument(
        "--shard",
        default=None,
        help="freshly generated BENCH_shard.json to gate P8 invariants",
    )
    parser.add_argument(
        "--selfheal",
        default=None,
        help="freshly generated BENCH_selfheal.json to gate P9 invariants",
    )
    parser.add_argument(
        "--scale-floor",
        type=int,
        default=100_000,
        help="minimum live instances the largest P6 fleet must reach "
        "(default 100000; CI smoke ladders pass their own top scale)",
    )
    args = parser.parse_args(argv)

    failures = check_p2(args.baseline, args.current, args.threshold)
    if args.scaleout:
        failures += check_p3(args.scaleout)
    if args.availability:
        failures += check_p4(args.availability)
    if args.slo:
        failures += check_p5(args.slo)
    if args.scale:
        failures += check_p6(args.scale, args.scale_floor)
    if args.gray:
        failures += check_p7(args.gray)
    if args.shard:
        failures += check_p8(args.shard)
    if args.selfheal:
        failures += check_p9(args.selfheal)
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
