"""E6 — DCDO evolution cost: sub-second, ~200 us per cached component."""

from conftest import run_experiment

from repro.bench.experiments import run_e6


def test_e6_evolution_cost(benchmark):
    result = run_experiment(benchmark, run_e6)
    benchmark.extra_info["dfm_only_s"] = result.extra["dfm_only_s"]
    benchmark.extra_info["cached_slope_us"] = result.extra["cached_slope_s"] * 1e6
    benchmark.extra_info["uncached_s"] = result.extra["uncached_s"]
