"""E7 — evolving a DCDO vs evolving a normal Legion object."""

from conftest import run_experiment

from repro.bench.experiments import run_e7


def test_e7_evolution_comparison(benchmark):
    result = run_experiment(benchmark, run_e7)
    benchmark.extra_info["baseline_phases"] = result.extra["baseline_phases"]
    benchmark.extra_info["baseline_disruption_s"] = result.extra["baseline_disruption_s"]
    benchmark.extra_info["dcdo_cached_s"] = result.extra["dcdo_cached_s"]
    benchmark.extra_info["dcdo_uncached_s"] = result.extra["dcdo_uncached_s"]
