"""Shared helpers for the benchmark suite.

Each benchmark runs one experiment from :mod:`repro.bench.experiments`
exactly once under pytest-benchmark (the interesting numbers are
*simulated* seconds, attached as extra_info; wall time just shows the
harness is cheap), prints the paper-vs-measured table, and asserts the
shape checks.
"""

import pytest

from repro.bench.harness import format_table


def pytest_configure(config):
    """Surface each experiment's printed paper-vs-measured table.

    Passed-test stdout is normally swallowed; reporting passed-with-
    output ("P") makes ``pytest benchmarks/ --benchmark-only`` emit the
    tables without requiring ``-s``.
    """
    config.option.reportchars = (getattr(config.option, "reportchars", "") or "") + "P"


def run_experiment(benchmark, runner, seed=0):
    """Run ``runner`` once under the benchmark fixture; verify + print."""
    result = benchmark.pedantic(runner, kwargs={"seed": seed}, rounds=1, iterations=1)
    print()
    print(format_table(result))
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["all_ok"] = result.all_ok
    failures = result.failures()
    assert not failures, "shape checks failed: " + "; ".join(
        f"{row.label}: measured {row.measured} {row.unit} (paper: {row.paper})"
        for row in failures
    )
    return result
