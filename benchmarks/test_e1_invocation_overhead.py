"""E1 — dynamic function invocation overhead (§4: 10-15 us per call)."""

from conftest import run_experiment

from repro.bench.experiments import run_e1


def test_e1_invocation_overhead(benchmark):
    result = run_experiment(benchmark, run_e1)
    benchmark.extra_info["leaf_cost_us"] = result.extra["leaf_cost_s"] * 1e6
    benchmark.extra_info["direct_cost_us"] = result.extra["direct_cost_s"] * 1e6
