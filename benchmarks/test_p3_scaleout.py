"""P3 — relay fan-out + blob caching at scale; writes BENCH_scaleout.json."""

import json
from pathlib import Path

from conftest import run_experiment

from repro.bench.experiments import run_p3

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scaleout.json"


def test_p3_scaleout(benchmark):
    result = run_experiment(benchmark, run_p3)
    benchmark.extra_info["scales"] = result.extra["scales"]
    BENCH_PATH.write_text(
        json.dumps(
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "rows": [row.as_tuple() for row in result.rows],
                "extra": result.extra,
                "all_ok": result.all_ok,
            },
            indent=2,
        )
        + "\n"
    )
