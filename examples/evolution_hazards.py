"""The §3.1 evolution hazards — demonstrated, then prevented (§3.2).

Unrestricted dynamic configurability "can lead to significant
problems" (§6).  This example reproduces each of the paper's four
hazards against a live DCDO, then shows the §3.2 mechanism that
eliminates it:

1. disappearing exported function  -> mandatory markings
2. missing internal function      -> structural (Type A) dependencies,
                                     derived automatically by static
                                     analysis of the component
3. disappearing internal function -> dependency + thread-aware disable
4. disappearing component         -> thread activity monitoring with
                                     error / delay removal policies

Run with::

    python examples/evolution_hazards.py
"""

from repro import build_dcdo_system
from repro.core import (
    ComponentBuilder,
    ComponentBusy,
    Dependency,
    DependencyViolation,
    FunctionNotEnabled,
    MandatoryViolation,
    RemovePolicy,
    annotate_component,
)
from repro.core.manager import define_dcdo_type
from repro.legion.errors import MethodNotFound


def report(ctx):
    summary = yield from ctx.call("summarize")
    return f"report[{summary}]"


def summarize(ctx):
    return "ok"


def slow_job(ctx, seconds):
    yield ctx.work(seconds)
    return "job done"


def build_service(runtime, type_name, remove_policy=None, with_dependencies=False):
    reporting = (
        ComponentBuilder("reporting")
        .function("report", report)
        .function("summarize", summarize)
        .function("slow_job", slow_job)
        .variant(size_bytes=100_000)
        .build()
    )
    if with_dependencies:
        # §3.2: structural dependencies derived by static analysis.
        added = annotate_component(reporting)
        print(f"  analyzer derived: {[str(dep) for dep in added]}")
    manager = define_dcdo_type(runtime, type_name, remove_policy=remove_policy)
    manager.register_component(reporting)
    version = manager.new_version()
    manager.incorporate_into(version, "reporting")
    descriptor = manager.descriptor_of(version)
    for name in ("report", "summarize", "slow_job"):
        descriptor.enable(name, "reporting")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid = runtime.sim.run_process(manager.create_instance())
    return manager, loid


def hazard_1_disappearing_exported_function():
    print("\n[1] Disappearing exported function")
    runtime = build_dcdo_system(hosts=4, seed=1)
    __, loid = build_service(runtime, "Svc1")
    client = runtime.make_client("host02")
    interface = client.call_sync(loid, "getInterface")
    print(f"  client fetched interface: {interface}")
    client.call_sync(loid, "disableFunction", "report", "reporting")
    try:
        client.call_sync(loid, "report")
    except MethodNotFound as error:
        print(f"  HAZARD: invocation built against that interface failed: {error}")
    # Prevention: mark it mandatory; the disable is now refused.
    client.call_sync(loid, "enableFunction", "report", "reporting")
    manager_obj = runtime.find_object(loid)
    manager_obj.dfm.mark_mandatory("report")
    try:
        client.call_sync(loid, "disableFunction", "report", "reporting")
    except MandatoryViolation as error:
        print(f"  PREVENTED by mandatory marking: {error}")


def hazard_2_missing_internal_function():
    print("\n[2] Missing internal function")
    runtime = build_dcdo_system(hosts=4, seed=2)
    __, loid = build_service(runtime, "Svc2")
    client = runtime.make_client("host02")
    client.call_sync(loid, "disableFunction", "summarize", "reporting")
    try:
        client.call_sync(loid, "report")
    except FunctionNotEnabled as error:
        print(f"  HAZARD: report reached a call it could not carry out: {error}")

    print("  rebuilding with analyzer-derived Type A dependencies...")
    runtime = build_dcdo_system(hosts=4, seed=2)
    __, loid = build_service(runtime, "Svc2b", with_dependencies=True)
    client = runtime.make_client("host02")
    try:
        client.call_sync(loid, "disableFunction", "summarize", "reporting")
    except DependencyViolation as error:
        print(f"  PREVENTED by dependency: {error}")


def hazard_3_disappearing_internal_function():
    print("\n[3] Disappearing internal function (during an outcall)")
    runtime = build_dcdo_system(hosts=4, seed=3)
    __, loid = build_service(runtime, "Svc3")
    obj = runtime.find_object(loid)

    def sleepy_report(ctx):
        yield ctx.work(2.0)  # thread inactive here
        result = yield from ctx.call("summarize")
        return result

    client_a = runtime.make_client("host02")
    client_b = runtime.make_client("host03")
    outcomes = {}

    # Swap in the sleepy implementation for the demonstration.
    from repro.core.functions import FunctionDef

    entry = obj.dfm.lookup("report")
    entry.function_def = FunctionDef(name="report", body=sleepy_report)

    def worker():
        try:
            outcomes["report"] = yield from client_a.invoke(
                loid, "report", timeout_schedule=(60.0,)
            )
        except FunctionNotEnabled as error:
            outcomes["report"] = error

    def config():
        yield runtime.sim.timeout(0.5)
        yield from client_b.invoke(loid, "disableFunction", "summarize", "reporting")

    runtime.sim.spawn(worker())
    runtime.sim.spawn(config())
    runtime.sim.run()
    print(f"  HAZARD: the sleeping thread awoke to: {outcomes['report']!r}")
    print("  PREVENTED the same way as [2]: the dependency chain vetoes the")
    print("  disable, or disableFunction(..., wait_for_dependents=True)")
    print("  postpones it until the thread count drains (§3.2).")


def hazard_4_disappearing_component():
    print("\n[4] Disappearing component")
    runtime = build_dcdo_system(hosts=4, seed=4)
    __, loid = build_service(runtime, "Svc4", remove_policy=RemovePolicy.error())
    client_a = runtime.make_client("host02")
    client_b = runtime.make_client("host03")
    outcomes = {}

    def worker():
        outcomes["job"] = yield from client_a.invoke(
            loid, "slow_job", 5.0, timeout_schedule=(60.0,)
        )

    def remover():
        yield runtime.sim.timeout(1.0)
        try:
            yield from client_b.invoke(loid, "removeComponent", "reporting")
        except ComponentBusy as error:
            outcomes["remove"] = error

    runtime.sim.spawn(worker())
    runtime.sim.spawn(remover())
    runtime.sim.run()
    print(f"  PREVENTED by thread activity monitoring: {outcomes['remove']}")
    print(f"  the in-flight call still completed: {outcomes['job']!r}")
    print("  (RemovePolicy.delay() would instead wait; RemovePolicy.timeout(g)")
    print("  waits up to g seconds and then proceeds, accepting the hazard.)")


def main():
    print("Reproducing the four §3.1 hazards and their §3.2 preventions")
    hazard_1_disappearing_exported_function()
    hazard_2_missing_internal_function()
    hazard_3_disappearing_internal_function()
    hazard_4_disappearing_component()


if __name__ == "__main__":
    main()
