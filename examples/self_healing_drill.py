"""A self-healing drill: the reactive controller rides out a compound
incident with nobody at the dashboards.

Two faults land at the same instant on a fleet serving live open-loop
traffic: one instance host starts limping (a gray failure — 10x CPU
plus a slow, jittery NIC, not a clean crash) and an operator pushes a
degraded build as the official version with no canary gate watching.
The :class:`~repro.cluster.controller.ReactiveController` is the only
thing paying attention.  Its sense->decide->act loop must

- notice the SLO breach, attribute it to the freshly designated
  version, and roll the fleet back to the parent via the same
  journaled, transactional wave an operator would run; and
- notice the health scores quarantine the limper and migrate every
  instance off it.

The drill prints the remediation timeline straight from the
controller's log, then the healed end-state.  Run with::

    python examples/self_healing_drill.py
"""

from repro.cluster import ReactiveController, build_lan
from repro.core import ManagerJournal, RemovePolicy
from repro.core.policies import (
    DemoteDegradedVersion,
    MigrateOffFlakyHost,
    ReliableUpdatePolicy,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.net.faults import SlowLink
from repro.obs import SLO
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

RETRY = RetryPolicy(base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8)
INSTANCES = 12
INSTANCE_HOSTS = ("host01", "host02", "host03", "host04")
LIMPING_HOST = "host01"
FAULT_AT_S = 10.0


def main():
    runtime = LegionRuntime(build_lan(6, seed=77))
    sim = runtime.sim
    manager, __ = make_noop_manager(
        runtime,
        "Service",
        2,
        3,
        journal=ManagerJournal(name="Service"),
        host_name="host00",
        propagation_retry_policy=RETRY,
        update_policy=ReliableUpdatePolicy(retry_policy=RETRY),
        remove_policy=RemovePolicy.timeout(2.0),
    )
    loids = [
        sim.run_process(
            manager.create_instance(
                host_name=INSTANCE_HOSTS[index % len(INSTANCE_HOSTS)]
            )
        )
        for index in range(INSTANCES)
    ]
    v1 = manager.current_version
    v2 = build_degraded_version(manager, error_every=3)
    runtime.network.enable_health()

    slo = SLO(
        name="svc",
        latency_targets={0.99: 0.050},
        max_error_rate=0.02,
        min_samples=20,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=6.0)
    client = runtime.make_client(host_name="host05")
    client.invoker.enable_adaptive_timeouts()
    client.invoker.enable_hedging()
    load = OpenLoopLoad(
        client,
        loids,
        PoissonArrivals(40.0),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=240.0,
        timeout_schedule=None,
    ).start()
    controller = ReactiveController(
        runtime,
        "Service",
        policies=[MigrateOffFlakyHost(), DemoteDegradedVersion()],
        interval_s=1.0,
        retry_policy=RETRY,
    ).start()

    base = sim.now
    fault_at = base + FAULT_AT_S

    def incident():
        yield sim.timeout(fault_at - sim.now)
        print(f"t={sim.now - base:6.1f}s  FAULT: {LIMPING_HOST} limps, "
              f"operator pushes {v2} unguarded")
        runtime.host(LIMPING_HOST).set_limp(10.0, slow_nic=True)
        runtime.network.faults.add_delay_rule(
            SlowLink(
                [f"{LIMPING_HOST}/"],
                sorted(f"{h}/" for h in runtime.hosts if h != LIMPING_HOST),
                extra_s=0.4,
                jitter_s=0.04,
                seed=94,
                label="drill-limper-link",
            )
        )
        manager.set_current_version_async(v2)

    def watcher():
        while sim.now < fault_at + 180.0:
            rolled_back = manager.current_version == v1 and all(
                manager.record(loid).active
                and manager.record(loid).obj.version == v1
                for loid in loids
            )
            drained = not any(
                record.active and record.host.name == LIMPING_HOST
                for record in (manager.record(loid) for loid in loids)
            )
            if rolled_back and drained and sim.now > fault_at:
                print(f"t={sim.now - base:6.1f}s  HEALED: fleet back on {v1}, "
                      f"{LIMPING_HOST} drained "
                      f"(MTTR {sim.now - fault_at:.1f}s, hands-off)")
                break
            yield sim.timeout(0.25)
        load.stop()
        controller.stop()

    sim.run_process(incident())
    sim.run_process(watcher())
    sim.run()

    print("\n=== remediation timeline (controller log) ===")
    for entry in controller.remediation_log:
        print(
            f"t={entry['at'] - base:6.1f}s  {entry['policy']:<28} "
            f"{entry['kind']:<12} target={entry['target']} "
            f"-> {entry['outcome']}"
        )

    print("\n=== end state ===")
    placement = {}
    for loid in loids:
        record = manager.record(loid)
        placement.setdefault(record.host.name, []).append(
            str(record.obj.version)
        )
    for host in sorted(placement):
        versions = placement[host]
        print(f"  {host}: {len(versions)} instance(s) on {set(versions)}")
    health = runtime.network.health_snapshot().get(LIMPING_HOST, {})
    print(f"  {LIMPING_HOST} quarantined: {bool(health.get('quarantined'))}")
    print(f"  current version: {manager.current_version}")
    print(f"  open remediation intents: {manager.open_remediations()}")


if __name__ == "__main__":
    main()
