"""Quickstart: build, call, and evolve a DCDO in a simulated Legion.

Run with::

    python examples/quickstart.py

The script walks the paper's core loop: define a DCDO type through its
manager, create an instance, invoke dynamic functions through the DFM,
then evolve the running object — swap a function's implementation, add
a brand-new function — without restarting anything.
"""

from repro import build_dcdo_system
from repro.core import ComponentBuilder
from repro.core.manager import define_dcdo_type
from repro.core.policies import GeneralEvolutionPolicy


def greet_v1(ctx, name):
    return f"Hello, {name}!"


def greet_v2(ctx, name):
    excitement = ctx.component_state.setdefault("excitement", 0) + 1
    ctx.component_state["excitement"] = excitement
    return f"HELLO, {name.upper()}{'!' * excitement}"


def stats(ctx):
    return dict(ctx.component_state)


def main():
    # A 4-host simulated LAN running a Legion-like object system.
    runtime = build_dcdo_system(hosts=4, seed=42)
    sim = runtime.sim

    # 1. Define the DCDO type and register its first component.
    manager = define_dcdo_type(
        runtime, "Greeter", evolution_policy=GeneralEvolutionPolicy()
    )
    greeter_v1 = (
        ComponentBuilder("greeter-v1")
        .function("greet", greet_v1, signature="String greet(String)")
        .variant(size_bytes=80_000)
        .build()
    )
    manager.register_component(greeter_v1)

    # 2. Build version 1 in the manager's DFM store and freeze it.
    v1 = manager.new_version()
    manager.incorporate_into(v1, "greeter-v1")
    manager.descriptor_of(v1).enable("greet", "greeter-v1")
    manager.mark_instantiable(v1)
    manager.set_current_version(v1)

    # 3. Create a live instance and call it from another host.
    loid = sim.run_process(manager.create_instance(host_name="host01"))
    client = runtime.make_client("host03")
    print(f"object {loid} is live at version {manager.instance_version(loid)}")
    print("greet ->", client.call_sync(loid, "greet", "world"))
    print("interface ->", client.call_sync(loid, "getInterface"))

    # 4. Evolve the running object: version 1.1 swaps the greeting
    #    implementation and adds a stats function — no restart, no new
    #    process, the client keeps its binding.
    greeter_v2 = (
        ComponentBuilder("greeter-v2")
        .function("greet", greet_v2, signature="String greet(String)")
        .function("stats", stats, signature="Map stats()")
        .variant(size_bytes=95_000)
        .build()
    )
    manager.register_component(greeter_v2)
    v11 = manager.derive_version(v1)
    manager.incorporate_into(v11, "greeter-v2")
    descriptor = manager.descriptor_of(v11)
    descriptor.enable("greet", "greeter-v2", replace_current=True)
    descriptor.enable("stats", "greeter-v2")
    descriptor.remove_component("greeter-v1")
    manager.mark_instantiable(v11)

    start = sim.now
    sim.run_process(manager.evolve_instance(loid, v11))
    print(f"\nevolved to {manager.instance_version(loid)} in {sim.now - start:.3f} simulated seconds")
    print("greet ->", client.call_sync(loid, "greet", "world"))
    print("greet ->", client.call_sync(loid, "greet", "world"))
    print("stats ->", client.call_sync(loid, "stats"))
    print("interface ->", client.call_sync(loid, "getInterface"))

    table = client.call_sync(manager.loid, "getDCDOTable")
    print("\nmanager's DCDO table:")
    for row in table:
        print("  ", row)


if __name__ == "__main__":
    main()
