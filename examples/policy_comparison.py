"""Comparing evolution management strategies on a fleet of DCDOs.

§3.3: "no single evolution policy ... will be appropriate for all
applications".  This example runs the same version cut against fleets
managed under different strategy combinations and prints what each
costs and guarantees:

- single-version + proactive: everyone updates at the cut;
- single-version + explicit: nothing moves until asked;
- single-version + lazy (strict / every-3-calls): instances catch up
  when they are next used;
- multi-version increasing-version: a diverged instance stays put when
  the current version is not derived from its own.

Run with::

    python examples/policy_comparison.py
"""

from repro.cluster import build_lan
from repro.core.manager import define_dcdo_type
from repro.core.policies import (
    ExplicitUpdatePolicy,
    IncreasingVersionPolicy,
    LazyUpdatePolicy,
    ProactiveUpdatePolicy,
    SingleVersionPolicy,
)
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, synthetic_components

FLEET = 4


def build_fleet(type_name, evolution_policy, update_policy, seed=5):
    runtime = LegionRuntime(build_lan(8, seed=seed))
    manager = define_dcdo_type(
        runtime,
        type_name,
        evolution_policy=evolution_policy,
        update_policy=update_policy,
    )
    components = synthetic_components(2, 5, prefix=f"{type_name.lower()}-")
    version = build_component_version(manager, components)
    manager.set_current_version(version)
    loids = [
        runtime.sim.run_process(manager.create_instance(host_name=f"host0{index}"))
        for index in range(FLEET)
    ]
    # A function name present in every version, for client traffic.
    call_name = components[0].function_names()[0]
    return runtime, manager, loids, call_name


def cut_new_version(manager):
    extra = synthetic_components(1, 3, prefix=f"{manager.type_name.lower()}x-")
    # Pre-seed caches so the cut measures coordination, not downloads.
    for record in manager.active_instances():
        variant = extra[0].variant_for_host(record.host)
        record.host.cache.insert(variant.blob_id, variant.size_bytes)
    return build_component_version(manager, extra)


def fleet_versions(manager, loids):
    return [str(manager.instance_version(loid)) for loid in loids]


def scenario(title, evolution_policy, update_policy, drive):
    runtime, manager, loids, call_name = build_fleet(
        title.replace("-", ""), evolution_policy, update_policy
    )
    version = cut_new_version(manager)
    start = runtime.sim.now
    manager.set_current_version(version)
    cut_cost = runtime.sim.now - start
    print(f"\n== {title} ==")
    print(f"cut latency: {cut_cost:.3f}s; fleet right after cut: "
          f"{fleet_versions(manager, loids)}")
    drive(runtime, manager, loids, call_name)
    print(f"fleet after driving traffic:      {fleet_versions(manager, loids)}")


def drive_nothing(runtime, manager, loids, call_name):
    runtime.sim.run(until=runtime.sim.now + 10.0)


def drive_one_call_each(runtime, manager, loids, call_name):
    client = runtime.make_client("host07")
    for loid in loids:
        client.call_sync(loid, call_name, timeout_schedule=(600.0,))


def drive_explicit_updates(runtime, manager, loids, call_name):
    client = runtime.make_client("host07")
    for loid in loids[:2]:  # the operator only updates half the fleet
        client.call_sync(manager.loid, "updateInstance", loid, timeout_schedule=(600.0,))


def drive_three_calls_each(runtime, manager, loids, call_name):
    client = runtime.make_client("host07")
    for loid in loids:
        for __ in range(3):
            client.call_sync(loid, call_name, timeout_schedule=(600.0,))


def multi_version_scenario():
    print("\n== multi-version: increasing-version-number ==")
    runtime, manager, loids, __ = build_fleet(
        "MultiVer", IncreasingVersionPolicy(), ExplicitUpdatePolicy()
    )
    v1 = manager.current_version
    # Instance 0 evolves to a child of v1.
    child = cut_new_version(manager)
    runtime.sim.run_process(manager.evolve_instance(loids[0], child))
    # A sibling becomes current: derived from v1, not from child.
    sibling = cut_new_version(manager)
    manager.set_current_version(sibling)
    client = runtime.make_client("host07")
    for loid in loids:
        client.call_sync(manager.loid, "syncInstance", loid, timeout_schedule=(600.0,))
    print(f"versions now: {fleet_versions(manager, loids)}")
    print("instance 0 stayed on its branch (sibling is not derived from it);")
    print("the rest followed the current version.")


def main():
    scenario(
        "single-version + proactive",
        SingleVersionPolicy(),
        ProactiveUpdatePolicy(),
        drive_nothing,
    )
    scenario(
        "single-version + explicit",
        SingleVersionPolicy(),
        ExplicitUpdatePolicy(),
        drive_explicit_updates,
    )
    scenario(
        "single-version + lazy (strict)",
        SingleVersionPolicy(),
        LazyUpdatePolicy(),
        drive_one_call_each,
    )
    scenario(
        "single-version + lazy (every 3 calls)",
        SingleVersionPolicy(),
        LazyUpdatePolicy(every_k_calls=3),
        drive_three_calls_each,
    )
    multi_version_scenario()


if __name__ == "__main__":
    main()
