"""A crash drill: evolution propagation riding through host failures.

The operations story behind the fault-tolerance machinery: a journaled
DCDO Manager starts pushing a new current version to its fleet, its
own host crashes mid-wave, and a fresh manager recovered from the
journal finishes the wave — delivering only to the instances that never
acked, re-deriving nothing, double-applying nothing.  A seeded chaos
schedule then stresses the same invariant with random outages and
partitions, and the system report shows the crash / recovery / retry
counters the drill produced.

Run with::

    python examples/chaos_drill.py
"""

from repro.cluster import build_lan
from repro.cluster.chaos import (
    ChaosCoordinator,
    ChaosSchedule,
    crash_host,
    drive_to_convergence,
)
from repro.core import ManagerJournal, define_dcdo_type, recover_manager
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import PrefixPartition, RetryPolicy
from repro.obs import collect_system_report, render_report
from repro.workloads import build_component_version, synthetic_components

RETRY = RetryPolicy(base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8)


def build_service(runtime, journal):
    """A journaled 'Service' type with one instance per host."""
    manager = define_dcdo_type(
        runtime,
        "Service",
        update_policy=ReliableUpdatePolicy(retry_policy=RETRY),
        journal=journal,
        propagation_retry_policy=RETRY,
    )
    components = synthetic_components(2, 3, prefix="svc")
    version = build_component_version(manager, components)
    manager.set_current_version(version)
    loids = [
        runtime.sim.run_process(manager.create_instance(host_name=name))
        for name in runtime.hosts
    ]
    return manager, loids


def cut_version(manager, tag):
    """Derive + publish a new version carrying one extra component."""
    extra = synthetic_components(1, 2, prefix=tag)
    return build_component_version(manager, extra)


def drill_manager_crash():
    """Act 1: deterministic mid-propagation manager crash + recovery."""
    print("=== act 1: manager crash mid-propagation ===")
    runtime = LegionRuntime(build_lan(4, seed=11))
    journal = ManagerJournal(name="Service")
    manager, loids = build_service(runtime, journal)
    v2 = cut_version(manager, "patch")
    # host03 is unreachable from the manager, so its delivery stays
    # pending while the others ack.
    runtime.network.faults.add_partition(
        PrefixPartition(
            ["host00/"], ["host03/"], start=runtime.sim.now, end=runtime.sim.now + 120.0
        )
    )

    def scenario():
        yield runtime.sim.timeout(1.0)
        manager.set_current_version_async(v2)
        yield runtime.sim.timeout(30.0)
        tracker = manager.propagation(v2)
        print(f"t={runtime.sim.now:.0f}s before crash: {tracker.summary()}")
        crash_host(runtime, runtime.host("host00"))
        print(f"t={runtime.sim.now:.0f}s manager host crashed "
              f"(journal holds {len(journal)} entries)")
        yield runtime.sim.timeout(150.0)
        runtime.host("host00").restart()
        recovered = yield from recover_manager(runtime, journal)
        print(f"t={runtime.sim.now:.0f}s recovered manager "
              f"{recovered.loid} from journal; propagation resumed")
        return recovered

    recovered = runtime.sim.run_process(scenario())
    runtime.sim.run()
    tracker = recovered.propagation(v2)
    print(f"after recovery: {tracker.summary()}")
    applied = {
        str(loid): recovered.record(loid).obj.applications_by_version.get(v2, 0)
        for loid in loids
        if recovered.record(loid).active
    }
    print(f"applications of v{v2} per live instance: {applied}")
    snapshot = runtime.network.metrics.snapshot()
    print("recovery metrics:", {
        name: value
        for name, value in sorted(snapshot.items())
        if name.startswith(("host.", "manager.", "propagation.", "retry."))
    })
    return runtime


def drill_chaos_schedule():
    """Act 2: a seeded random schedule, healed to convergence."""
    print("\n=== act 2: seeded chaos schedule ===")
    runtime = LegionRuntime(build_lan(5, seed=23))
    journal = ManagerJournal(name="Service")
    manager, loids = build_service(runtime, journal)
    coordinator = ChaosCoordinator(runtime, journals={"Service": journal})
    schedule = ChaosSchedule.generate(7, list(runtime.hosts), duration_s=90.0)
    print(f"schedule: {schedule.crashes or 'no crashes'}, "
          f"{len(schedule.partitions)} partition(s), {len(schedule.drops)} drop rule(s)")
    schedule.install(runtime, coordinator)
    v2 = cut_version(manager, "hotfix")

    def scenario():
        yield runtime.sim.timeout(0.5)
        manager.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        tracker = yield from drive_to_convergence(
            runtime, "Service", journal=journal, retry_policy=RETRY
        )
        return tracker

    tracker = runtime.sim.run_process(scenario())
    runtime.sim.run()
    print(f"converged: {tracker.summary()}")
    for at, name, died in coordinator.crash_log:
        print(f"  crash  t={at:.1f}s {name} took down {len(died)} instance(s)")
    for at, kind, what in coordinator.recovery_log:
        print(f"  recover t={at:.1f}s {kind}: {what}")
    manager_now = runtime.class_of("Service")
    versions = {str(loid): str(manager_now.instance_version(loid)) for loid in loids}
    print(f"fleet versions: {versions}")
    return runtime


def main():
    drill_manager_crash()
    runtime = drill_chaos_schedule()
    print("\n=== system report (act 2 runtime) ===")
    print(render_report(collect_system_report(runtime)))


if __name__ == "__main__":
    main()
