"""Hot-patching a live service: DCDO vs monolithic restart.

The paper's motivating scenario (§1): grid applications "required to
be constantly operational" still need bug fixes.  Here a metric-
aggregation service ships with a bug — its percentile function sorts
descending — while clients hammer it continuously.

The same fix is applied two ways:

- **DCDO**: the manager cuts version 1.1 swapping the buggy component;
  the running object evolves in-place.  Clients never notice.
- **Monolithic baseline**: the class deactivates the object, downloads
  a fresh 5.1 MB executable, restarts, restores state, and rebinds —
  and every client stalls on a stale binding for ~30 seconds.

Run with::

    python examples/hot_patch_service.py
"""

from repro import build_dcdo_system
from repro.baseline import (
    MODERATE_IMPL_BYTES,
    BaselineEvolution,
    make_monolithic_implementation,
)
from repro.core import ComponentBuilder
from repro.core.manager import define_dcdo_type
from repro.core.policies import GeneralEvolutionPolicy
from repro.workloads import ClosedLoopClient


def record_metric(ctx, value):
    ctx.state.setdefault("values", []).append(value)
    return len(ctx.state["values"])


def p50_buggy(ctx, *_ignored):
    values = sorted(ctx.state.get("values", []), reverse=True)  # BUG: descending
    if not values:
        return None
    return values[len(values) // 2]


def p50_fixed(ctx, *_ignored):
    values = sorted(ctx.state.get("values", []))
    if not values:
        return None
    return values[len(values) // 2]


def build_dcdo_service(runtime):
    manager = define_dcdo_type(
        runtime, "Metrics", evolution_policy=GeneralEvolutionPolicy()
    )
    base = (
        ComponentBuilder("metrics-base")
        .function("record", record_metric)
        .variant(size_bytes=200_000)
        .build()
    )
    buggy = (
        ComponentBuilder("percentile-buggy")
        .function("p50", p50_buggy)
        .variant(size_bytes=60_000)
        .build()
    )
    fixed = (
        ComponentBuilder("percentile-fixed")
        .function("p50", p50_fixed)
        .variant(size_bytes=60_000)
        .build()
    )
    for component in (base, buggy, fixed):
        manager.register_component(component)
    v1 = manager.new_version()
    manager.incorporate_into(v1, "metrics-base")
    manager.incorporate_into(v1, "percentile-buggy")
    descriptor = manager.descriptor_of(v1)
    descriptor.enable("record", "metrics-base")
    descriptor.enable("p50", "percentile-buggy")
    manager.mark_instantiable(v1)
    manager.set_current_version(v1)
    return manager


def hot_patch(runtime, manager, loid):
    """Cut v1.1 with the fixed percentile component and evolve."""
    v11 = manager.derive_version(manager.current_version)
    manager.incorporate_into(v11, "percentile-fixed")
    descriptor = manager.descriptor_of(v11)
    descriptor.enable("p50", "percentile-fixed", replace_current=True)
    descriptor.remove_component("percentile-buggy")
    manager.mark_instantiable(v11)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, v11))
    return runtime.sim.now - start


def run_dcdo_scenario():
    runtime = build_dcdo_system(hosts=6, seed=7)
    manager = build_dcdo_service(runtime)
    loid = runtime.sim.run_process(manager.create_instance(host_name="host01"))
    feeder = runtime.make_client("host02")
    for value in (10, 20, 30, 40, 50, 60):
        feeder.call_sync(loid, "record", value)

    # Continuous client traffic across the patch window.
    reader = runtime.make_client("host03")
    loop = ClosedLoopClient(reader, loid, "p50", calls=None, think_time_s=0.05)
    runtime.sim.spawn(loop.run())
    runtime.sim.run(until=runtime.sim.now + 1.0)

    before = reader.call_sync(loid, "p50")
    patch_seconds = hot_patch(runtime, manager, loid)
    after = reader.call_sync(loid, "p50")

    runtime.sim.run(until=runtime.sim.now + 1.0)
    loop.stop()
    runtime.sim.run()
    worst_latency = max(loop.latencies)
    return before, after, patch_seconds, worst_latency, len(loop.errors)


def run_baseline_scenario():
    runtime = build_dcdo_system(hosts=6, seed=7)
    buggy_impl = make_monolithic_implementation(
        "metrics-mono-v1",
        function_count=20,
        size_bytes=MODERATE_IMPL_BYTES,
        functions={"record": record_metric, "p50": p50_buggy},
        version_tag="1",
    )
    for host in runtime.hosts.values():
        host.cache.insert(buggy_impl.impl_id, buggy_impl.size_bytes)
    klass = runtime.define_class("MetricsMono", implementations=[buggy_impl])
    loid = runtime.sim.run_process(klass.create_instance(host_name="host01"))
    feeder = runtime.make_client("host02")
    for value in (10, 20, 30, 40, 50, 60):
        feeder.call_sync(loid, "record", value)

    reader = runtime.make_client("host03")
    before = reader.call_sync(loid, "p50")

    evolution = BaselineEvolution(runtime, klass)
    fixed_impl = make_monolithic_implementation(
        "metrics-mono-v2",
        function_count=20,
        size_bytes=MODERATE_IMPL_BYTES,
        functions={"record": record_metric, "p50": p50_fixed},
        version_tag="2",
    )
    evolution.publish_version([fixed_impl])
    report = runtime.sim.run_process(evolution.evolve_instance(loid))
    # The reader's next call pays stale-binding discovery.
    start = runtime.sim.now
    after = reader.call_sync(loid, "p50")
    disruption = runtime.sim.now - start
    return before, after, report, disruption


def main():
    print("=== DCDO hot patch (clients keep running) ===")
    before, after, patch_seconds, worst_latency, errors = run_dcdo_scenario()
    print(f"p50 before patch: {before}   (buggy: descending sort)")
    print(f"p50 after patch:  {after}")
    print(f"patch applied in: {patch_seconds:.3f} simulated seconds")
    print(f"worst client latency across the window: {worst_latency * 1e3:.1f} ms")
    print(f"client errors during patch: {errors}")

    print("\n=== Monolithic baseline (restart + stale bindings) ===")
    before, after, report, disruption = run_baseline_scenario()
    print(f"p50 before patch: {before}")
    print(f"p50 after patch:  {after}")
    print("object-side pipeline:")
    for phase, seconds in report.as_rows():
        print(f"  {phase:<45s} {seconds:8.3f} s")
    print(f"client stalled on stale binding for: {disruption:.1f} s")


if __name__ == "__main__":
    main()
