"""An SLO-gated canary deploy: catch a bad build before it spreads.

The rollout story behind the gate machinery: a fleet serves live
open-loop traffic under a tail-latency SLO while the manager rolls a
new version out through :func:`~repro.core.policies.run_canary_wave`.
Act one ships a healthy build — the canary bakes clean, the gate passes
each ramp stage, and the fleet adopts it.  Act two ships a build whose
``ping`` is 300 ms slower: the canary instance ruins the p99 within one
bake window, the gate journals the breach, the transactional abort
rolls the canary back, and the other seven instances never see it.

Canary fleets need two §3 policies set deliberately: a multi-version
evolution policy (a canary *is* a multi-version deployment state, which
the default single-version policy vetoes) and a drain-based removal
policy (rolling back under live traffic must drain busy components,
not error on them).

Run with::

    python examples/canary_deploy.py
"""

from repro.cluster import build_lan
from repro.core import ManagerJournal, RemovePolicy
from repro.core.policies import (
    CanaryWavePolicy,
    IncreasingVersionPolicy,
    run_canary_wave,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.obs import SLO
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

RETRY = RetryPolicy(base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8)
INSTANCES = 8
RAMP = CanaryWavePolicy(stages=(0.125, 0.5, 1.0), bake_s=8.0, check_interval_s=1.0)


def build_fleet(seed):
    runtime = LegionRuntime(build_lan(6, seed=seed))
    manager, __ = make_noop_manager(
        runtime,
        "Service",
        2,
        3,
        evolution_policy=IncreasingVersionPolicy(),
        remove_policy=RemovePolicy.timeout(2.0),
        journal=ManagerJournal(name="Service"),
        host_name="host00",
        propagation_retry_policy=RETRY,
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{(index % 4) + 1:02d}")
        )
        for index in range(INSTANCES)
    ]
    return runtime, manager, loids


def deploy(title, added_latency_s, seed):
    runtime, manager, loids = build_fleet(seed)
    sim = runtime.sim
    v2 = build_degraded_version(manager, added_latency_s=added_latency_s)
    slo = SLO(
        name="svc",
        latency_targets={0.99: 0.200},
        max_error_rate=0.05,
        min_samples=30,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=6.0)
    load = OpenLoopLoad(
        runtime.make_client(host_name="host05"),
        loids,
        PoissonArrivals(40.0),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=600.0,
    ).start()
    result = {}

    def rollout():
        yield sim.timeout(5.0)
        result["outcome"] = yield from run_canary_wave(
            runtime, "Service", v2, RAMP,
            monitor=monitor, retry_policy=RETRY, deadline_s=300.0,
        )
        yield sim.timeout(5.0)  # let the post-rollout window settle
        load.stop()

    sim.run_process(rollout())
    sim.run()

    outcome = result["outcome"]
    print(f"\n=== {title} ===")
    print(f"outcome: {'ADOPTED' if outcome.completed else 'ROLLED BACK'}")
    if outcome.breached:
        print(f"breach:  {outcome.breach_reason}")
    print(
        f"blast:   {outcome.admitted}/{outcome.fleet_size} instances "
        f"({outcome.blast_radius:.1%}) after {outcome.stage_reached} gate(s)"
    )
    for at, violations in monitor.breach_log:
        print(f"  breach t={at:.1f}s: {'; '.join(violations)}")
    versions = {}
    for loid in loids:
        versions.setdefault(str(manager.record(loid).obj.version), 0)
        versions[str(manager.record(loid).obj.version)] += 1
    print(f"fleet:   {versions}  (current: {manager.current_version})")
    status = monitor.evaluate()
    print(f"slo:     {'healthy' if status.healthy else 'BREACHED'}")


def main():
    deploy("act 1: healthy build rides the gate to adoption", 0.0, seed=21)
    deploy("act 2: slow build is caught at the canary", 0.3, seed=22)


if __name__ == "__main__":
    main()
