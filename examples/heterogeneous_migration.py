"""Migrating a DCDO across architectures via implementation types.

§2.1: "a system can employ compiled, architecture-specific,
executable code in a heterogeneous environment, and still allow
objects to migrate from one node to another, even if the architectures
of the two nodes are different."

The cluster here mixes x86/Linux and SPARC/Solaris hosts.  Each
component carries one :class:`ComponentVariant` per implementation
type; when the object migrates, the manager rebuilds it at the *same
version*, selecting the variants matching the destination host.

Run with::

    python examples/heterogeneous_migration.py
"""

from repro.cluster import build_lan
from repro.core import ComponentBuilder, ImplementationType
from repro.core.manager import define_dcdo_type
from repro.legion import LegionRuntime

X86 = ImplementationType(architecture="x86-linux", code_format="elf", language="c++")
SPARC = ImplementationType(architecture="sparc-solaris", code_format="elf32", language="c++")


def checksum(ctx, data):
    # Identical observable behaviour on both architectures — the point
    # of functionally-equivalent implementations (§2.1).
    total = sum(ord(ch) for ch in data) % 65536
    ctx.state["last"] = total
    return total


def last(ctx):
    return ctx.state.get("last")


def main():
    testbed = build_lan(
        4, seed=3, architectures=("x86-linux", "sparc-solaris")
    )
    runtime = LegionRuntime(testbed)
    for name, host in runtime.hosts.items():
        print(f"{name}: {host.architecture}")

    manager = define_dcdo_type(runtime, "Checksummer")
    component = (
        ComponentBuilder("checksum-core")
        .function("checksum", checksum, signature="int checksum(String)")
        .function("last", last, signature="int last()")
        .variant(size_bytes=120_000, impl_type=X86)
        .variant(size_bytes=135_000, impl_type=SPARC)  # different build
        .build()
    )
    manager.register_component(component)
    version = manager.new_version()
    manager.incorporate_into(version, "checksum-core")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("checksum", "checksum-core")
    descriptor.enable("last", "checksum-core")
    manager.mark_instantiable(version)
    manager.set_current_version(version)

    # Create on the x86 host, exercise it.
    loid = runtime.sim.run_process(manager.create_instance(host_name="host00"))
    client = runtime.make_client("host02")
    print(f"\ncreated {loid} on host00 "
          f"(impl type {manager.instance_impl_type(loid)})")
    print("checksum('legion') ->", client.call_sync(loid, "checksum", "legion"))

    # Migrate to the SPARC host: same version, different variant.
    print("\nmigrating to host01 (sparc-solaris)...")
    start = runtime.sim.now
    runtime.sim.run_process(manager.migrate_instance(loid, "host01"))
    print(f"migration took {runtime.sim.now - start:.2f} simulated seconds")
    print(f"now on {manager.record(loid).host.name} "
          f"(impl type {manager.instance_impl_type(loid)})")
    print(f"still at version {manager.instance_version(loid)}")

    # State survived, behaviour identical; old binding rebinds.
    client.binding_cache.invalidate(loid)
    print("last() ->", client.call_sync(loid, "last"))
    print("checksum('grid') ->", client.call_sync(loid, "checksum", "grid"))

    table = manager.dcdo_table()
    print("\nmanager's DCDO table:")
    for row_loid, row_version, row_impl_type, active in table:
        print(f"  {row_loid}  v{row_version}  {row_impl_type}  active={active}")


if __name__ == "__main__":
    main()
