"""Operating an evolving fleet with observability.

A small operations story: a fleet of DCDOs serves traffic across two
WAN sites while the operator cuts two new versions (one proactive, one
picked up lazily), migrates an instance between sites, and finally
reads back the *system report* and the *evolution timeline* — the
operator's answer to "what changed while this system was running?".

Run with::

    python examples/observed_fleet.py
"""

from repro.cluster import build_wan
from repro.core.policies import LazyUpdatePolicy, SingleVersionPolicy
from repro.legion import LegionRuntime
from repro.obs import Tracer, collect_system_report, render_report
from repro.workloads import (
    ClosedLoopClient,
    build_component_version,
    make_noop_manager,
    synthetic_components,
)


def main():
    runtime = LegionRuntime(build_wan(2, 2, seed=17))
    runtime.tracer = Tracer(runtime.sim)

    manager, __ = make_noop_manager(
        runtime,
        "Service",
        component_count=2,
        functions_per_component=4,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(every_k_calls=5),
    )
    loids = [
        runtime.sim.run_process(manager.create_instance(host_name=host))
        for host in ("s0h00", "s0h01", "s1h00")
    ]

    # Continuous traffic from both sites.
    loops = []
    for index, loid in enumerate(loids):
        client = runtime.make_client(f"s{index % 2}h01")
        loop = ClosedLoopClient(
            client, loid, "ping", calls=None, think_time_s=0.1
        )
        loops.append(loop)
        runtime.sim.spawn(loop.run())
    runtime.sim.run(until=runtime.sim.now + 2.0)

    # Version cut 1: a new (pre-cached) component everywhere; the lazy
    # policy picks it up within 5 calls per instance.
    extra = synthetic_components(1, 2, prefix="svc-x")
    for record in manager.active_instances():
        variant = extra[0].variant_for_host(record.host)
        record.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    manager.set_current_version(version)
    runtime.sim.run(until=runtime.sim.now + 3.0)

    # Move the site-1 instance next to its clients at site 0.
    runtime.sim.run_process(manager.migrate_instance(loids[2], "s0h01"))
    runtime.sim.run(until=runtime.sim.now + 2.0)

    for loop in loops:
        loop.stop()
    runtime.sim.run()

    print("=== system report ===")
    print(render_report(collect_system_report(runtime)))
    total_calls = sum(loop.completed_calls for loop in loops)
    total_errors = sum(len(loop.errors) for loop in loops)
    print(f"\nclient traffic: {total_calls} calls, {total_errors} errors")

    print("\n=== evolution timeline (configuration plane) ===")
    interesting = (
        "current-version-set",
        "evolved",
        "instance-migrated",
        "version-instantiable",
    )
    for event in runtime.tracer.events:
        if event.category in interesting:
            print(event)

    lagging = [
        str(loid)
        for loid in loids
        if manager.instance_version(loid) != manager.current_version
    ]
    print(f"\ninstances lagging the current version: {lagging or 'none'}")


if __name__ == "__main__":
    main()
