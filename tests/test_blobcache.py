"""Content-addressed component caching through the per-host blob cache.

The scale-out claim under test: a component variant's bytes cross the
network once per *host*, not once per instance.  Colocated
incorporations — sequential or concurrent — after the first are served
from the host's :class:`FileCache`, with exactly one hit or miss
recorded per incorporation, and the counters surface through the
shared :class:`MetricsRegistry` and the obs report.
"""

from repro.cluster import FileCache, build_lan, deploy_relays
from repro.legion import LegionRuntime
from repro.obs import collect_system_report, render_report
from repro.obs.metrics import MetricsRegistry

from tests.conftest import create_dcdo, make_sorter_manager


def build_one_host_fleet():
    runtime = LegionRuntime(build_lan(2, seed=5))
    manager = make_sorter_manager(runtime)
    return runtime, manager


# ----------------------------------------------------------------------
# One fetch per host
# ----------------------------------------------------------------------


def test_sequential_colocated_creations_fetch_each_blob_once():
    runtime, manager = build_one_host_fleet()
    create_dcdo(runtime, manager, host_name="host01")
    fetches_after_first = runtime.network.count_value("ico.fetches")
    bytes_after_first = runtime.network.count_value("ico.bytes_served")
    assert fetches_after_first == 2  # sorter + compare-asc, once each
    for __ in range(3):
        create_dcdo(runtime, manager, host_name="host01")
    # Not a single extra byte left the ICOs: the host cache served all
    # later incorporations.
    assert runtime.network.count_value("ico.fetches") == fetches_after_first
    assert runtime.network.count_value("ico.bytes_served") == bytes_after_first
    assert runtime.network.count_value("blobcache.fills") == 2
    cache = runtime.host("host01").cache
    assert cache.misses == 2
    assert cache.hits == 6  # 3 later instances x 2 components


def test_concurrent_colocated_creations_coalesce_into_one_fill():
    runtime, manager = build_one_host_fleet()
    processes = [
        runtime.sim.spawn(manager.create_instance(host_name="host01"))
        for __ in range(4)
    ]
    runtime.sim.run()
    assert not any(process.is_alive for process in processes)
    # One leader fetched each blob; the other three waited on the fill
    # gate and were served from the cache.
    assert runtime.network.count_value("ico.fetches") == 2
    assert runtime.network.count_value("blobcache.fills") == 2
    assert runtime.network.count_value("blobcache.coalesced_waits") >= 1
    cache = runtime.host("host01").cache
    assert cache.misses == 2
    assert cache.hits == 6


def test_evicted_blob_is_refetched_once():
    runtime, manager = build_one_host_fleet()
    create_dcdo(runtime, manager, host_name="host01")
    cache = runtime.host("host01").cache
    evicted = [blob_id for blob_id in list(cache._entries) if cache.evict(blob_id)]
    assert len(evicted) == 2
    create_dcdo(runtime, manager, host_name="host01")
    # Both blobs crossed the wire a second time — and only once more.
    assert runtime.network.count_value("ico.fetches") == 4
    assert runtime.network.count_value("blobcache.fills") == 4
    for blob_id in evicted:
        assert blob_id in cache


# ----------------------------------------------------------------------
# Counter plumbing
# ----------------------------------------------------------------------


def test_lru_eviction_at_capacity_counts_into_registry():
    registry = MetricsRegistry()
    cache = FileCache(capacity_bytes=250)
    cache.bind_counters(registry)
    cache.insert("a", 100)
    cache.insert("b", 100)
    assert cache.lookup("a") == 100  # a becomes most-recently-used
    cache.insert("c", 100)  # evicts b, the LRU entry
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.evictions == 1
    assert cache.lookup("b") is None  # miss
    cache.insert("b", 100)  # re-fill after eviction evicts a in turn
    assert cache.lookup("b") == 100
    assert ("a" in cache) is False
    snapshot = registry.snapshot(prefix="cache")
    assert snapshot["cache.hits"] == 2
    assert snapshot["cache.misses"] == 1
    assert snapshot["cache.evictions"] == 2


def test_host_caches_feed_network_metrics():
    runtime, manager = build_one_host_fleet()
    for __ in range(2):
        create_dcdo(runtime, manager, host_name="host01")
    snapshot = runtime.network.metrics.snapshot(prefix="cache")
    assert snapshot["cache.misses"] == 2
    assert snapshot["cache.hits"] == 2


def test_report_surfaces_cache_and_relay_stats():
    runtime, manager = build_one_host_fleet()
    directory = deploy_relays(runtime)
    manager.use_relays(directory)
    for __ in range(2):
        create_dcdo(runtime, manager, host_name="host01")
    report = collect_system_report(runtime)
    host01 = report.hosts["host01"]
    assert host01["cache_hits"] == 2
    assert host01["cache_misses"] == 2
    assert host01["cache_evictions"] == 0
    assert sorted(report.relays) == ["host00", "host01"]
    assert report.relays["host01"]["active"]
    assert report.relays["host01"]["batches_served"] == 0
    assert report.faults["cache.hits"] == 2
    rendered = render_report(report)
    assert "2 hits / 2 misses / 0 evictions" in rendered
    assert "relay host01: up, 0 batches" in rendered
