"""Tests for the networked context service and path-based incorporation."""

import pytest

from repro.legion.errors import UnknownObject
from repro.net import RemoteError
from tests.conftest import create_dcdo, make_sorter_manager


def test_remote_lookup_resolves_registered_component(runtime):
    manager = make_sorter_manager(runtime)
    client = runtime.make_client("host02")
    loid = client.lookup_path_sync("/components/Sorter/sorter")
    assert loid == manager.component_ico("sorter")


def test_remote_lookup_missing_path_raises(runtime):
    make_sorter_manager(runtime)
    client = runtime.make_client("host02")
    with pytest.raises((UnknownObject, RemoteError)):
        client.lookup_path_sync("/components/Sorter/no-such-component")


def test_remote_lookup_pays_a_round_trip(runtime):
    make_sorter_manager(runtime)
    client = runtime.make_client("host02")
    start = runtime.sim.now
    client.lookup_path_sync("/components/Sorter/sorter")
    elapsed = runtime.sim.now - start
    assert 0 < elapsed < 0.01
    assert runtime.context_service.lookups_served == 1


def test_remote_bind_then_lookup(runtime):
    from repro.legion import bind_path
    from repro.legion.loid import mint_loid

    make_sorter_manager(runtime)
    client = runtime.make_client("host02")
    loid = mint_loid(runtime.domain, "Custom")
    runtime.sim.run_process(bind_path(client.endpoint, "/custom/thing", loid))
    assert client.lookup_path_sync("/custom/thing") == loid
    assert runtime.context_service.binds_served == 1


def test_classes_are_bound_in_namespace(runtime):
    manager = make_sorter_manager(runtime)
    client = runtime.make_client("host02")
    assert client.lookup_path_sync("/classes/Sorter") == manager.loid


def test_incorporate_component_by_path(runtime):
    """A DCDO pulls a component knowing only its global name (§2.3)."""
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host02")
    component_id = client.call_sync(
        loid,
        "incorporateComponentByPath",
        "/components/Sorter/compare-desc",
        timeout_schedule=(120.0,),
    )
    assert component_id == "compare-desc"
    assert "compare-desc" in obj.dfm.component_ids


def test_incorporate_by_unknown_path_fails_cleanly(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host02")
    with pytest.raises(Exception):
        client.call_sync(
            loid,
            "incorporateComponentByPath",
            "/components/Sorter/ghost",
            timeout_schedule=(120.0,),
        )
    assert "ghost" not in obj.dfm.component_ids


def test_get_interface_detailed(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    obj.dfm.mark_mandatory("sort")
    client = runtime.make_client("host02")
    detailed = client.call_sync(loid, "getInterfaceDetailed")
    by_name = {row["function"]: row for row in detailed}
    assert by_name["sort"]["component"] == "sorter"
    assert by_name["sort"]["signature"] == "Integer[] sort(Integer[])"
    assert by_name["sort"]["marking"] == "mandatory"
    assert by_name["compare"]["marking"] == "fully-dynamic"
