"""Chaos sweep: the self-healing controller under seeded faults.

Every seed rolls an unguarded bad deploy (the schedule's
``bad_deploys`` kind — no canary gate watching) while the schedule
limps instance hosts (``flaky_limps``), crashes hosts, partitions the
network, and on some seeds kills the manager so a supervisor promotes
a standby mid-remediation.  The :class:`ReactiveController` runs the
whole time with its default sense→decide→act loop; no test code ever
rolls back or migrates by hand.

Acceptance invariants, every seed:

- the controller's rollback *converges*: the fleet ends on the prior
  version, current-version designation included, exactly-once per
  instance per version;
- never-half-applied for every settled instance, at heal and at end;
- no supervisor fight: the shared convergence guard records zero
  violations (denials are the races *avoided*), and the remediation
  lease is never held under a stale term when the controller acts;
- journal hygiene: every controller intent on the surviving authority
  is closed (done, failed, or orphaned by GC) — nothing dangles.

``CHAOS_EXTRA_SEEDS`` (env) widens the sweep in CI.  Unit coverage for
the controller pieces lives in ``tests/test_controller.py``.
"""

import os

import pytest

from repro.cluster import (
    ReactiveController,
    Supervisor,
    build_lan,
    convergence_guard,
)
from repro.cluster.chaos import ChaosCoordinator, ChaosSchedule
from repro.core import ManagerJournal, RemovePolicy
from repro.core.policies import (
    DemoteDegradedVersion,
    MigrateOffFlakyHost,
    PrewarmBlobCaches,
    ReliableUpdatePolicy,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.obs import SLO
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

from tests.test_chaos_slo import assert_never_half_applied

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)

MANAGER_HOST = "host00"
STANDBY_HOSTS = ("host02", "host03")
DETECTOR_HOST = "host04"
CLIENT_HOST = "host05"
INSTANCE_HOSTS = ("host01", "host02", "host03")

INSTANCES = 6
CHAOS_SEEDS = 20 + int(os.environ.get("CHAOS_EXTRA_SEEDS", "0"))

#: Controller rollbacks and migrations per seed, checked in aggregate:
#: the sweep must actually exercise the remediation paths it certifies.
ROLLBACKS = {}
MIGRATIONS = {}


def build_fleet(sim_seed):
    runtime = LegionRuntime(build_lan(6, seed=sim_seed))
    journal = ManagerJournal(name="Svc")
    manager, __ = make_noop_manager(
        runtime,
        "Svc",
        2,
        3,
        journal=journal,
        host_name=MANAGER_HOST,
        propagation_retry_policy=FAST_RETRY,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
        remove_policy=RemovePolicy.timeout(2.0),
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(
                host_name=f"host{(index % 3) + 1:02d}"
            )
        )
        for index in range(INSTANCES)
    ]
    return runtime, manager, journal, loids


@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_controller_selfheals(seed):
    """Seeded bad deploy + flaky hosts + crashes + failover: the
    controller must detect, decide, and remediate on its own, with the
    full invariant set intact on whichever manager survives."""
    runtime, manager, journal, loids = build_fleet(sim_seed=3100 + seed)
    sim = runtime.sim
    v1 = manager.current_version
    runtime.network.enable_health()
    if seed % 2 == 0:
        manager.invoker.enable_adaptive_timeouts()
        manager.invoker.enable_hedging()

    supervisor = Supervisor(
        runtime,
        "Svc",
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        retry_policy=FAST_RETRY,
    ).start()
    controller = ReactiveController(
        runtime,
        "Svc",
        supervisor=supervisor,
        policies=[
            MigrateOffFlakyHost(),
            DemoteDegradedVersion(),
            PrewarmBlobCaches(),
        ],
        interval_s=1.0,
        retry_policy=FAST_RETRY,
    ).start()

    coordinator = ChaosCoordinator(runtime, journals={})
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=90.0,
        max_crashes=1 if seed % 4 == 2 else 0,
        max_partitions=1 if seed % 5 == 3 else 0,
        protect=(DETECTOR_HOST, CLIENT_HOST),
        manager_hosts=(MANAGER_HOST,) + STANDBY_HOSTS,
        max_manager_partitions=1 if seed % 3 == 0 else 0,
        max_failovers=seed % 2,
        instance_hosts=INSTANCE_HOSTS,
        max_bad_deploys=1,
        max_flaky_limps=1 if seed % 2 == 1 else 0,
    )
    assert schedule.bad_deploys, "every seed must stage a bad deploy"
    deploy_at, added_latency_s, error_every = schedule.bad_deploys[0]
    v2 = build_degraded_version(
        manager, added_latency_s=added_latency_s, error_every=error_every
    )
    schedule.install(runtime, coordinator)

    slo = SLO(
        name="svc",
        latency_targets={0.99: 0.050},
        max_error_rate=0.02,
        min_samples=20,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=6.0)
    load = OpenLoopLoad(
        runtime.make_client(host_name=CLIENT_HOST),
        loids,
        PoissonArrivals(30.0),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=800.0,
    )
    load.start()

    deploy_abs = schedule.installed_at + deploy_at

    def rollback_done():
        return any(
            entry["policy"] == "demote-degraded-version"
            and entry["outcome"] == "done"
            for entry in controller.remediation_log
        )

    def scenario():
        # The unguarded adoption: an operator pushes the bad build with
        # no canary watching.  Only the controller can save the fleet.
        if sim.now < deploy_abs:
            yield sim.timeout(deploy_abs - sim.now)
        current = supervisor.manager
        if current.is_active and not current.deposed:
            current.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if sim.now < heal:
            yield sim.timeout(heal - sim.now)
        assert_never_half_applied(
            supervisor.manager, loids, f"seed {seed} at heal"
        )
        deadline = sim.now + 420.0
        while sim.now < deadline:
            current = supervisor.manager
            if current.is_active and not current.deposed:
                if (
                    current.current_version == v1
                    and not rollback_done()
                    and not current.open_remediations()
                ):
                    # The crash beat the sync journal ship: the promoted
                    # authority recovered with no record of the bad
                    # designation, so the operator's never-acknowledged
                    # push retries against it — the controller must
                    # still catch and demote it.  (Open intents pause
                    # the retry: mid-demote the designation is already
                    # back at the parent by design.)
                    current.set_current_version_async(v2)
                elif (
                    rollback_done()
                    and current.current_version == v1
                    and all(
                        current.record(loid).active
                        and current.record(loid).obj.version == v1
                        for loid in loids
                    )
                ):
                    break
            yield sim.timeout(5.0)
        load.stop()
        controller.stop()
        supervisor.stop()

    sim.run_process(scenario())
    sim.run()

    current = supervisor.manager
    assert current.is_active and not current.deposed, (
        f"seed {seed}: no live authority after chaos ({schedule!r})"
    )

    # The controller-originated rollback converged: official version
    # and every instance back on v1, exactly-once per version.
    assert current.current_version == v1, (
        f"seed {seed}: fleet still designated {current.current_version} "
        f"(controller log: {controller.remediation_log})"
    )
    assert_never_half_applied(current, loids, f"seed {seed} converged")
    for loid in loids:
        record = current.record(loid)
        assert record.active, f"seed {seed}: {loid} never recovered"
        obj = record.obj
        assert obj.version == v1, (
            f"seed {seed}: {loid} stuck at {obj.version} "
            f"(controller log: {controller.remediation_log})"
        )
        assert obj.applications_by_version.get(v2, 0) <= 1, (
            f"seed {seed}: {loid} applied {v2} "
            f"{obj.applications_by_version.get(v2)} times"
        )
        assert (obj.observed_manager_term or 0) <= current.term, (
            f"seed {seed}: {loid} observed a term from the future"
        )

    # No supervisor fight: the guard's discipline held everywhere.
    guard = convergence_guard(runtime)
    assert guard.violations == 0, (
        f"seed {seed}: {guard.violations} convergence-guard violations"
    )

    # Journal hygiene: nothing the controller started dangles open on
    # the surviving authority (done, failed, or orphaned — all closed).
    open_now = current.open_remediations()
    assert open_now == [], (
        f"seed {seed}: dangling remediation intents {open_now}"
    )

    rollbacks = [
        entry
        for entry in controller.remediation_log
        if entry["policy"] == "demote-degraded-version"
        and entry["outcome"] == "done"
    ]
    assert rollbacks, (
        f"seed {seed}: controller never completed a rollback "
        f"(log: {controller.remediation_log})"
    )
    ROLLBACKS[seed] = runtime.network.count_value("controller.rollbacks")
    MIGRATIONS[seed] = runtime.network.count_value("controller.migrations")


def test_controller_paths_exercised_across_sweep():
    """Aggregate sanity: the sweep must have driven real remediations —
    a rollback on every seed, and at least one quarantine-driven
    migration somewhere (else the flaky-limp kind proved nothing)."""
    assert ROLLBACKS, "sweep did not run before the aggregate check"
    assert all(count >= 1 for count in ROLLBACKS.values()), (
        f"some seed converged without a controller rollback: {ROLLBACKS}"
    )
