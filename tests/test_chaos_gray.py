"""Gray-chaos sweep: transactional invariants under limping faults.

Seeded schedules mix the PR 8 gray fault kinds — one-way partitions,
link flaps, slow links, fabric-level duplication, bounded reordering,
limping hosts — with the legacy crash/partition/failover kinds, while
a supervised fleet evolves.  Slow is not dead, lost replies are not
lost requests, and duplicated wire messages are not duplicated
invocations; the invariants that held under fail-stop chaos must hold
unchanged when every fault is partial:

- never-half-applied at heal and at convergence;
- exactly-once application per instance (fabric duplication and
  hedged backups included);
- term fencing: a promoted succession of terms, and no instance ever
  observes a term above the live authority's.

The supervisor runs its detector in phi-accrual mode and no test code
ever recovers the manager by hand.  ``CHAOS_EXTRA_SEEDS`` (env) widens
the sweep in CI.  Unit coverage for the fault kinds themselves lives
in ``tests/test_gray_faults.py``.
"""

import os

import pytest

from repro.cluster import Supervisor, build_lan, deploy_relays
from repro.cluster.chaos import ChaosCoordinator, ChaosSchedule
from repro.core import ManagerJournal
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager
from tests.test_chaos_transactions import assert_never_half_applied, derive_v2

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)

ICO_HOST = "host05"
MANAGER_HOST = "host00"
STANDBY_HOSTS = ("host02", "host03")
DETECTOR_HOST = "host04"

CHAOS_SEEDS = 20 + int(os.environ.get("CHAOS_EXTRA_SEEDS", "0"))

#: Fabric-duplicated requests absorbed per seed, checked in aggregate
#: after the sweep: the dedupe table must actually be exercised.
DUPLICATES_ABSORBED = {}


def build_fleet(sim_seed=7, hosts=6, instances=4, **manager_kwargs):
    """Runtime + journaled, supervised sorter fleet (see chaos_failover)."""
    runtime = LegionRuntime(build_lan(hosts, seed=sim_seed))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        component_hosts={
            "sorter": MANAGER_HOST,
            "compare-asc": MANAGER_HOST,
            "compare-desc": ICO_HOST,
        },
        journal=journal,
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    loids = []
    for index in range(instances):
        loid, __ = create_dcdo(runtime, manager, host_name=f"host{index + 1:02d}")
        loids.append(loid)
    return runtime, manager, journal, loids


@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_gray_invariants_hold(seed):
    """Gray faults plus a real manager failover, across seeded
    schedules: the phi-supervised fleet converges on its own with the
    full invariant set intact."""
    use_relays = seed % 5 == 0
    runtime, manager, journal, loids = build_fleet(
        sim_seed=1900 + seed,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    # Gray hardening under test: per-peer health everywhere, and on
    # even seeds the manager's invoker runs adaptive timeouts + hedged
    # idempotent calls on top.
    runtime.network.enable_health()
    if seed % 2 == 0:
        manager.invoker.enable_adaptive_timeouts()
        manager.invoker.enable_hedging()
    v1 = manager.current_version
    relays = deploy_relays(runtime) if use_relays else None
    if use_relays:
        manager.use_relays(relays, fanout_k=2)
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        relays=relays,
        relay_fanout_k=2 if use_relays else 0,
        detector_mode="phi",
        retry_policy=FAST_RETRY,
    ).start()
    coordinator = ChaosCoordinator(runtime, journals={}, relays=relays)
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        protect=(DETECTOR_HOST, ICO_HOST),
        manager_hosts=(MANAGER_HOST,) + STANDBY_HOSTS,
        max_manager_partitions=1 if seed % 3 == 0 else 0,
        max_failovers=1,
        gray_one_way=1 if seed % 2 == 0 else 0,
        gray_flaps=1 if seed % 4 == 1 else 0,
        gray_slow_links=1,
        gray_duplicates=1,
        gray_reorders=1,
        gray_limps=1,
    )
    schedule.install(runtime, coordinator)
    base = schedule.installed_at
    fault_offsets = [crash_at for __, crash_at, __ in schedule.crashes]
    fault_offsets += [start for __, __, start, __ in schedule.partitions]
    wave_at = max(0.1, min(fault_offsets) - 0.03) if fault_offsets else 0.5
    v2 = derive_v2(manager)

    def scenario():
        if runtime.sim.now < base + wave_at:
            yield runtime.sim.timeout(base + wave_at - runtime.sim.now)
        manager.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        # Mid-run observation at heal: settled instances only (a
        # just-rebuilt instance with no configuration yet is not half
        # applied); the converged check below is strict.
        current = supervisor.manager
        settled = [
            loid
            for loid in loids
            if not current.record(loid).active
            or current.record(loid).obj.version is not None
        ]
        assert_never_half_applied(
            current, settled, v1, v2, f"seed {seed} at heal"
        )
        deadline = runtime.sim.now + 420.0
        while runtime.sim.now < deadline:
            current = supervisor.manager
            if current.is_active and not current.deposed:
                if current.current_version != v2:
                    # The crash beat the sync journal ship: the promoted
                    # authority recovered with no record of the wave, so
                    # the designation was a never-acknowledged client
                    # request.  The client retries it against the new
                    # authority; instance-side idempotence keyed by the
                    # version id keeps the effect exactly-once even for
                    # instances the dead primary already reached.
                    current.set_current_version_async(v2)
                elif all(
                    current.record(loid).active
                    and current.record(loid).obj.version == v2
                    for loid in loids
                ):
                    break
            yield runtime.sim.timeout(5.0)
        supervisor.stop()

    runtime.sim.run_process(scenario())
    runtime.sim.run()

    manager_now = supervisor.manager
    assert supervisor.promotions >= 1, (
        f"seed {seed}: phi supervisor never promoted for a real crash "
        f"(schedule {schedule.crashes})"
    )
    assert manager_now.is_active and not manager_now.deposed, (
        f"seed {seed}: no live authority after gray chaos"
    )
    # Term fencing: an unbroken promoted succession, and nobody ever
    # observed a term from the future.
    assert manager_now.term >= 1 + supervisor.promotions
    assert_never_half_applied(
        manager_now, loids, v1, v2, f"seed {seed} converged"
    )
    for loid in loids:
        record = manager_now.record(loid)
        assert record.active, f"seed {seed}: {loid} never recovered"
        assert manager_now.instance_version(loid) == v2
        obj = record.obj
        assert obj.version == v2, f"seed {seed}: {loid} stuck at {obj.version}"
        # Exactly-once under duplication, hedging, and retries alike.
        assert obj.applications_by_version.get(v2, 0) <= 1, (
            f"seed {seed}: {loid} applied v2 "
            f"{obj.applications_by_version.get(v2)} times"
        )
        assert (obj.observed_manager_term or 0) <= manager_now.term, (
            f"seed {seed}: {loid} observed term "
            f"{obj.observed_manager_term} above the authority's "
            f"{manager_now.term}"
        )
    DUPLICATES_ABSORBED[seed] = runtime.network.count_value(
        "transport.duplicate_requests"
    )


def test_fabric_duplication_exercised_dedupe_across_sweep():
    """Across the sweep, fabric-minted duplicates must actually have
    hit the transport's at-most-once table — otherwise the exactly-once
    assertions above proved nothing about duplication."""
    assert DUPLICATES_ABSORBED, "sweep did not run before the aggregate check"
    assert any(count > 0 for count in DUPLICATES_ABSORBED.values()), (
        f"no seed absorbed a fabric duplicate: {DUPLICATES_ABSORBED}"
    )
