"""Host relays: batched evolution waves, diffusion trees, recovery.

The scale-out claim under test: with relays deployed, a propagation
wave costs the manager O(hosts) RPCs instead of O(instances), while
every PR 3 delivery guarantee — tracker/journal bookkeeping, terminal
failures, retry-then-FAILED — survives unchanged because anything a
relay cannot positively confirm falls back to direct delivery.
"""

import pytest

from repro.cluster import build_lan, deploy_relays, restore_relays
from repro.cluster.chaos import crash_host
from repro.cluster.relay import build_relay_tree, count_jobs, iter_jobs
from repro.core import DeliveryStatus, ManagerJournal
from repro.legion import LegionRuntime
from repro.legion.loid import mint_loid
from repro.net import RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager

ONE_SHOT = RetryPolicy(base_s=1.0, max_attempts=1)


def build_relay_fleet(hosts=4, instances_per_host=2, journal=None):
    """Runtime + sorter manager + instances spread over host01..N."""
    runtime = LegionRuntime(build_lan(hosts + 1, seed=11))
    manager = make_sorter_manager(runtime, journal=journal)
    loids = []
    for host_index in range(1, hosts + 1):
        for __ in range(instances_per_host):
            loid, ___ = create_dcdo(
                runtime, manager, host_name=f"host{host_index:02d}"
            )
            loids.append(loid)
    return runtime, manager, loids


def derive_v2(manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    return version


# ----------------------------------------------------------------------
# Deployment and directory management
# ----------------------------------------------------------------------


def test_deploy_relays_one_per_up_host_and_idempotent():
    runtime = LegionRuntime(build_lan(4, seed=3))
    crash_host(runtime, runtime.host("host03"))
    directory = deploy_relays(runtime)
    assert sorted(directory) == ["host00", "host01", "host02"]
    for host_name, loid in directory.items():
        relay = runtime.live_object(loid)
        assert relay.is_active
        assert relay.host.name == host_name
        assert runtime.context_space.lookup(f"/relays/{host_name}") == loid
    # Redeploying reuses the live relays instead of minting new ones.
    again = deploy_relays(runtime)
    assert again == directory


def test_restore_relays_after_host_restart():
    runtime = LegionRuntime(build_lan(3, seed=3))
    directory = deploy_relays(runtime)
    crash_host(runtime, runtime.host("host02"))
    assert not runtime.live_object(directory["host02"]).is_active
    # Down host: skipped, nothing restored yet.
    assert runtime.sim.run_process(restore_relays(runtime, directory)) == []
    runtime.host("host02").restart()
    restored = runtime.sim.run_process(restore_relays(runtime, directory))
    assert restored == ["host02"]
    assert runtime.live_object(directory["host02"]).is_active
    # Live relays are left alone on a second pass.
    assert runtime.sim.run_process(restore_relays(runtime, directory)) == []


# ----------------------------------------------------------------------
# Batched waves
# ----------------------------------------------------------------------


def test_relay_wave_acks_all_with_host_granular_rpcs():
    journal = ManagerJournal(name="Sorter")
    runtime, manager, loids = build_relay_fleet(
        hosts=4, instances_per_host=3, journal=journal
    )
    manager.use_relays(deploy_relays(runtime))
    v2 = derive_v2(manager)
    manager.invoker.stats.reset()
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
        assert manager.instance_version(loid) == v2
    # One evolveBatch per host, not one RPC per instance.
    assert runtime.network.count_value("relay.batches") == 4
    assert runtime.network.count_value("relay.batch_instances") == 12
    assert manager.invoker.stats.invocations == 4
    # The journal records the same per-instance bookkeeping as direct
    # delivery: an instance-version line then a propagation ack, each.
    kinds = [entry.kind for entry in journal.entries]
    assert kinds.count("instance-version") >= 12
    assert kinds.count("propagation-ack") == 12


def test_relay_wave_acks_already_current_instances_without_rpc():
    runtime, manager, __ = build_relay_fleet(hosts=2, instances_per_host=1)
    directory = deploy_relays(runtime)
    manager.use_relays(directory)
    v2 = derive_v2(manager)
    runtime.sim.run_process(manager.propagate_version(v2))
    # A newcomer builds at v2; re-driving the wave must ack it without
    # shipping any new batch.
    newcomer, obj = create_dcdo(runtime, manager, host_name="host01")
    assert obj.version == v2
    before = runtime.network.count_value("relay.batches")
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, loids=[newcomer])
    )
    assert tracker.delivery(newcomer).status is DeliveryStatus.ACKED
    assert runtime.network.count_value("relay.batches") == before


def test_dead_relay_falls_back_to_direct_delivery():
    runtime, manager, loids = build_relay_fleet(hosts=2, instances_per_host=2)
    directory = deploy_relays(runtime)
    # Point host02's entry at a relay that never existed: every batch
    # to it fails, so its instances must arrive via the direct path.
    directory["host02"] = mint_loid(runtime.domain, "HostRelay")
    manager.use_relays(directory)
    v2 = derive_v2(manager)
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, retry_policy=ONE_SHOT)
    )
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    assert runtime.network.count_value("relay.batch_failures") >= 1
    assert runtime.network.count_value("relay.fallback_instances") == 2
    # host01's batch still went through a relay.
    assert runtime.network.count_value("relay.batches") == 1


# ----------------------------------------------------------------------
# Diffusion trees
# ----------------------------------------------------------------------


def test_build_relay_tree_shape():
    batches = {f"h{i}": [(f"loid{i}", None)] for i in range(7)}
    directory = {f"h{i}": f"relay{i}" for i in range(7)}
    root = build_relay_tree(batches, directory, fanout_k=2)
    assert root["host"] == "h0" and root["relay"] == "relay0"
    assert [child["host"] for child in root["children"]] == ["h1", "h2"]
    assert [c["host"] for c in root["children"][0]["children"]] == ["h3", "h4"]
    assert count_jobs(root) == 7
    assert sorted(loid for loid, __ in iter_jobs(root)) == sorted(
        f"loid{i}" for i in range(7)
    )
    with pytest.raises(ValueError):
        build_relay_tree(batches, directory, fanout_k=1)
    assert build_relay_tree({}, directory, fanout_k=2) is None


def test_tree_wave_single_manager_rpc():
    runtime, manager, loids = build_relay_fleet(hosts=4, instances_per_host=2)
    manager.use_relays(deploy_relays(runtime), fanout_k=2)
    v2 = derive_v2(manager)
    manager.invoker.stats.reset()
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    # The manager sent exactly one RPC: the root bundle.
    assert manager.invoker.stats.invocations == 1
    assert runtime.network.count_value("relay.tree_waves") == 1
    assert runtime.network.count_value("relay.batches") == 4


def test_tree_subtree_failure_reports_and_falls_back():
    runtime, manager, loids = build_relay_fleet(hosts=3, instances_per_host=2)
    directory = deploy_relays(runtime)
    directory["host03"] = mint_loid(runtime.domain, "HostRelay")
    manager.use_relays(directory, fanout_k=2)
    v2 = derive_v2(manager)
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, retry_policy=ONE_SHOT)
    )
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    assert runtime.network.count_value("relay.subtree_failures") >= 1
    assert runtime.network.count_value("relay.fallback_instances") == 2


def test_use_relays_validation_and_disable():
    runtime, manager, __ = build_relay_fleet(hosts=2, instances_per_host=1)
    directory = deploy_relays(runtime)
    with pytest.raises(ValueError):
        manager.use_relays(directory, fanout_k=1)
    manager.use_relays(directory)
    manager.use_relays(None)
    v2 = derive_v2(manager)
    before = runtime.network.count_value("relay.batches")
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked
    assert runtime.network.count_value("relay.batches") == before


# ----------------------------------------------------------------------
# Announcement waves
# ----------------------------------------------------------------------


def test_set_digest_is_order_independent():
    from repro.cluster.relay import set_digest

    a = mint_loid("legion", "Sorter")
    b = mint_loid("legion", "Sorter")
    assert set_digest([a, b]) == set_digest([b, a])
    assert set_digest([a]) != set_digest([a, b])
    assert set_digest([]) == 0


def test_build_announce_tree_shape():
    from repro.cluster.relay import (
        build_announce_tree,
        count_tree_hosts,
        iter_tree_hosts,
    )

    directory = {f"h{i}": f"relay{i}" for i in range(7)}
    root = build_announce_tree(sorted(directory), directory, fanout_k=2)
    assert root["host"] == "h0" and root["relay"] == "relay0"
    assert [child["host"] for child in root["children"]] == ["h1", "h2"]
    assert count_tree_hosts(root) == 7
    assert sorted(iter_tree_hosts(root)) == sorted(directory)
    assert build_announce_tree([], directory, fanout_k=2) is None
    with pytest.raises(ValueError):
        build_announce_tree(sorted(directory), directory, fanout_k=1)


def test_announce_wave_acks_all_with_one_rpc_and_local_binds():
    journal = ManagerJournal(name="Sorter")
    runtime, manager, loids = build_relay_fleet(
        hosts=4, instances_per_host=3, journal=journal
    )
    manager.use_relays(deploy_relays(runtime), fanout_k=2, announce=True)
    v2 = derive_v2(manager)
    manager.invoker.stats.reset()
    resolves_before = runtime.binding_agent.resolutions_served
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
        assert manager.instance_version(loid) == v2
    # One announcement bundle from the manager; constant-size payloads
    # carried the wave, and every instance bound host-locally.
    assert manager.invoker.stats.invocations == 1
    assert runtime.network.count_value("relay.announce_waves") == 1
    assert runtime.network.count_value("relay.local_binds") == 12
    assert runtime.network.count_value("relay.fallback_instances") == 0
    # Binding-agent lookups during the wave are roster-relay forwards
    # (one per up host — the fleet form visits every roster host, even
    # the instance-less manager host) plus one ICO resolve per host's
    # first blob fetch — bounded by hosts, never one per instance
    # (those bind host-locally).
    up_hosts = len(runtime.hosts)
    assert (
        runtime.binding_agent.resolutions_served - resolves_before
        <= 2 * up_hosts
    )
    kinds = [entry.kind for entry in journal.entries]
    assert kinds.count("propagation-ack") == 12


def test_announce_wave_dead_relay_falls_back():
    from repro.cluster.relay import seed_announce_roster

    runtime, manager, loids = build_relay_fleet(hosts=3, instances_per_host=2)
    directory = deploy_relays(runtime)
    directory["host03"] = mint_loid(runtime.domain, "HostRelay")
    # Poison the roster too, as a real relay death would: the fleet
    # round sees the subtree shortfall and the wave drops to per-host
    # announcements, which localize the failure to host03.
    seed_announce_roster(runtime, directory)
    manager.use_relays(directory, fanout_k=2, announce=True)
    v2 = derive_v2(manager)
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, retry_policy=ONE_SHOT)
    )
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    assert runtime.network.count_value("relay.fallback_instances") == 2
    assert runtime.network.count_value("relay.subtree_failures") >= 1


def test_chunk_spans_partition_contiguously():
    from repro.cluster.relay import chunk_spans

    assert chunk_spans(1, 1, 4) == []
    spans = chunk_spans(1, 10, 4)
    assert len(spans) <= 4
    flat = [i for lo, hi in spans for i in range(lo, hi)]
    assert flat == list(range(1, 10))
    assert chunk_spans(0, 3, 8) == [(0, 1), (1, 2), (2, 3)]


def test_deploy_relays_seeds_shared_roster():
    runtime, __, ___ = build_relay_fleet(hosts=2, instances_per_host=1)
    directory = deploy_relays(runtime)
    rosters = {
        runtime.live_object(loid).announce_roster
        for loid in directory.values()
    }
    assert len(rosters) == 1  # every relay holds the same (shared) roster
    roster = rosters.pop()
    assert [(host, loid) for host, loid, __ in roster] == sorted(
        directory.items()
    )
    # The roster ships each relay's current binding, membership-list
    # style, so fleet forwards never round-trip the central agent.
    for host, loid, binding in roster:
        assert binding is not None and binding.loid == loid


def test_announce_wave_foreign_instance_forces_host_fallback():
    """A colocated instance the wave did not target keeps announcement
    mode off: the manager must not let a relay evolve instances a
    subset wave (e.g. a canary stage) never admitted."""
    runtime, manager, loids = build_relay_fleet(hosts=3, instances_per_host=2)
    manager.use_relays(deploy_relays(runtime), fanout_k=2, announce=True)
    v2 = derive_v2(manager)
    held_back = loids[0]
    subset = loids[1:]
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, loids=subset)
    )
    assert tracker.all_acked and tracker.complete
    for loid in subset:
        assert manager.record(loid).obj.version == v2
    # The untargeted instance stayed at v1: no announcement round ran.
    assert manager.record(held_back).obj.version != v2
    assert runtime.network.count_value("relay.announce_waves") == 0


def test_use_relays_announce_validation():
    runtime, manager, __ = build_relay_fleet(hosts=2, instances_per_host=1)
    directory = deploy_relays(runtime)
    with pytest.raises(ValueError):
        manager.use_relays(directory, announce=True)  # needs a tree
    manager.use_relays(directory, fanout_k=2, announce=True)
    manager.use_relays(None)  # disabling clears announce mode too
    assert manager._relay_announce is False


# ----------------------------------------------------------------------
# Per-host object index
# ----------------------------------------------------------------------


def test_objects_on_host_index_tracks_attach_and_migration():
    runtime, manager, loids = build_relay_fleet(hosts=2, instances_per_host=2)
    on_host01 = {
        obj.loid for obj in runtime.objects_on_host("host01")
    }
    assert {loid for loid in loids[:2]} <= on_host01
    # Migration rebases the index entry along with the object.
    moved = runtime.find_object(loids[0])
    moved.moved_to(runtime.host("host02"))
    assert moved.loid not in {
        obj.loid for obj in runtime.objects_on_host("host01")
    }
    assert moved.loid in {
        obj.loid for obj in runtime.objects_on_host("host02")
    }
    # Unknown hosts simply have no objects.
    assert runtime.objects_on_host("no-such-host") == []
