"""Host relays: batched evolution waves, diffusion trees, recovery.

The scale-out claim under test: with relays deployed, a propagation
wave costs the manager O(hosts) RPCs instead of O(instances), while
every PR 3 delivery guarantee — tracker/journal bookkeeping, terminal
failures, retry-then-FAILED — survives unchanged because anything a
relay cannot positively confirm falls back to direct delivery.
"""

import pytest

from repro.cluster import build_lan, deploy_relays, restore_relays
from repro.cluster.chaos import crash_host
from repro.cluster.relay import build_relay_tree, count_jobs, iter_jobs
from repro.core import DeliveryStatus, ManagerJournal
from repro.legion import LegionRuntime
from repro.legion.loid import mint_loid
from repro.net import RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager

ONE_SHOT = RetryPolicy(base_s=1.0, max_attempts=1)


def build_relay_fleet(hosts=4, instances_per_host=2, journal=None):
    """Runtime + sorter manager + instances spread over host01..N."""
    runtime = LegionRuntime(build_lan(hosts + 1, seed=11))
    manager = make_sorter_manager(runtime, journal=journal)
    loids = []
    for host_index in range(1, hosts + 1):
        for __ in range(instances_per_host):
            loid, ___ = create_dcdo(
                runtime, manager, host_name=f"host{host_index:02d}"
            )
            loids.append(loid)
    return runtime, manager, loids


def derive_v2(manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    return version


# ----------------------------------------------------------------------
# Deployment and directory management
# ----------------------------------------------------------------------


def test_deploy_relays_one_per_up_host_and_idempotent():
    runtime = LegionRuntime(build_lan(4, seed=3))
    crash_host(runtime, runtime.host("host03"))
    directory = deploy_relays(runtime)
    assert sorted(directory) == ["host00", "host01", "host02"]
    for host_name, loid in directory.items():
        relay = runtime.live_object(loid)
        assert relay.is_active
        assert relay.host.name == host_name
        assert runtime.context_space.lookup(f"/relays/{host_name}") == loid
    # Redeploying reuses the live relays instead of minting new ones.
    again = deploy_relays(runtime)
    assert again == directory


def test_restore_relays_after_host_restart():
    runtime = LegionRuntime(build_lan(3, seed=3))
    directory = deploy_relays(runtime)
    crash_host(runtime, runtime.host("host02"))
    assert not runtime.live_object(directory["host02"]).is_active
    # Down host: skipped, nothing restored yet.
    assert runtime.sim.run_process(restore_relays(runtime, directory)) == []
    runtime.host("host02").restart()
    restored = runtime.sim.run_process(restore_relays(runtime, directory))
    assert restored == ["host02"]
    assert runtime.live_object(directory["host02"]).is_active
    # Live relays are left alone on a second pass.
    assert runtime.sim.run_process(restore_relays(runtime, directory)) == []


# ----------------------------------------------------------------------
# Batched waves
# ----------------------------------------------------------------------


def test_relay_wave_acks_all_with_host_granular_rpcs():
    journal = ManagerJournal(name="Sorter")
    runtime, manager, loids = build_relay_fleet(
        hosts=4, instances_per_host=3, journal=journal
    )
    manager.use_relays(deploy_relays(runtime))
    v2 = derive_v2(manager)
    manager.invoker.stats.reset()
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
        assert manager.instance_version(loid) == v2
    # One evolveBatch per host, not one RPC per instance.
    assert runtime.network.count_value("relay.batches") == 4
    assert runtime.network.count_value("relay.batch_instances") == 12
    assert manager.invoker.stats.invocations == 4
    # The journal records the same per-instance bookkeeping as direct
    # delivery: an instance-version line then a propagation ack, each.
    kinds = [entry.kind for entry in journal.entries]
    assert kinds.count("instance-version") >= 12
    assert kinds.count("propagation-ack") == 12


def test_relay_wave_acks_already_current_instances_without_rpc():
    runtime, manager, __ = build_relay_fleet(hosts=2, instances_per_host=1)
    directory = deploy_relays(runtime)
    manager.use_relays(directory)
    v2 = derive_v2(manager)
    runtime.sim.run_process(manager.propagate_version(v2))
    # A newcomer builds at v2; re-driving the wave must ack it without
    # shipping any new batch.
    newcomer, obj = create_dcdo(runtime, manager, host_name="host01")
    assert obj.version == v2
    before = runtime.network.count_value("relay.batches")
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, loids=[newcomer])
    )
    assert tracker.delivery(newcomer).status is DeliveryStatus.ACKED
    assert runtime.network.count_value("relay.batches") == before


def test_dead_relay_falls_back_to_direct_delivery():
    runtime, manager, loids = build_relay_fleet(hosts=2, instances_per_host=2)
    directory = deploy_relays(runtime)
    # Point host02's entry at a relay that never existed: every batch
    # to it fails, so its instances must arrive via the direct path.
    directory["host02"] = mint_loid(runtime.domain, "HostRelay")
    manager.use_relays(directory)
    v2 = derive_v2(manager)
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, retry_policy=ONE_SHOT)
    )
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    assert runtime.network.count_value("relay.batch_failures") >= 1
    assert runtime.network.count_value("relay.fallback_instances") == 2
    # host01's batch still went through a relay.
    assert runtime.network.count_value("relay.batches") == 1


# ----------------------------------------------------------------------
# Diffusion trees
# ----------------------------------------------------------------------


def test_build_relay_tree_shape():
    batches = {f"h{i}": [(f"loid{i}", None)] for i in range(7)}
    directory = {f"h{i}": f"relay{i}" for i in range(7)}
    root = build_relay_tree(batches, directory, fanout_k=2)
    assert root["host"] == "h0" and root["relay"] == "relay0"
    assert [child["host"] for child in root["children"]] == ["h1", "h2"]
    assert [c["host"] for c in root["children"][0]["children"]] == ["h3", "h4"]
    assert count_jobs(root) == 7
    assert sorted(loid for loid, __ in iter_jobs(root)) == sorted(
        f"loid{i}" for i in range(7)
    )
    with pytest.raises(ValueError):
        build_relay_tree(batches, directory, fanout_k=1)
    assert build_relay_tree({}, directory, fanout_k=2) is None


def test_tree_wave_single_manager_rpc():
    runtime, manager, loids = build_relay_fleet(hosts=4, instances_per_host=2)
    manager.use_relays(deploy_relays(runtime), fanout_k=2)
    v2 = derive_v2(manager)
    manager.invoker.stats.reset()
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    # The manager sent exactly one RPC: the root bundle.
    assert manager.invoker.stats.invocations == 1
    assert runtime.network.count_value("relay.tree_waves") == 1
    assert runtime.network.count_value("relay.batches") == 4


def test_tree_subtree_failure_reports_and_falls_back():
    runtime, manager, loids = build_relay_fleet(hosts=3, instances_per_host=2)
    directory = deploy_relays(runtime)
    directory["host03"] = mint_loid(runtime.domain, "HostRelay")
    manager.use_relays(directory, fanout_k=2)
    v2 = derive_v2(manager)
    tracker = runtime.sim.run_process(
        manager.propagate_version(v2, retry_policy=ONE_SHOT)
    )
    assert tracker.all_acked and tracker.complete
    for loid in loids:
        assert manager.record(loid).obj.version == v2
    assert runtime.network.count_value("relay.subtree_failures") >= 1
    assert runtime.network.count_value("relay.fallback_instances") == 2


def test_use_relays_validation_and_disable():
    runtime, manager, __ = build_relay_fleet(hosts=2, instances_per_host=1)
    directory = deploy_relays(runtime)
    with pytest.raises(ValueError):
        manager.use_relays(directory, fanout_k=1)
    manager.use_relays(directory)
    manager.use_relays(None)
    v2 = derive_v2(manager)
    before = runtime.network.count_value("relay.batches")
    tracker = runtime.sim.run_process(manager.propagate_version(v2))
    assert tracker.all_acked
    assert runtime.network.count_value("relay.batches") == before
