"""Failure-injection tests: evolution and invocation under network
faults.

The layers under test are the retry/rebind machinery and the update
policies; the faults come from :mod:`repro.net.faults`.
"""

import pytest

from repro.core.policies import GeneralEvolutionPolicy, LazyUpdatePolicy, SingleVersionPolicy
from repro.legion.errors import ObjectUnreachable
from repro.net import DropRule, Partition
from tests.conftest import create_dcdo, make_sorter_manager


def test_invocation_survives_single_request_drop(runtime):
    manager = make_sorter_manager(runtime)
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    client.call_sync(loid, "sort", [1])  # warm binding
    runtime.network.faults.add_drop_rule(
        DropRule(predicate=lambda m: m.kind == "request", count=1)
    )
    start = runtime.sim.now
    assert client.call_sync(loid, "sort", [2, 1]) == [1, 2]
    # One dropped request costs one timeout from the schedule (~2 s),
    # not a rebind (~30 s).
    elapsed = runtime.sim.now - start
    assert 1.0 <= elapsed <= 5.0
    assert client.binding_cache.stale_stats.count == 0


def test_invocation_survives_reply_drop(runtime):
    """Dropping the reply re-executes on retry (at-most-once per
    message, not per logical call) — the classic distributed ambiguity;
    the client still gets an answer."""
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    client.call_sync(loid, "sort", [1])
    runtime.network.faults.add_drop_rule(
        DropRule(predicate=lambda m: m.kind == "reply", count=1)
    )
    assert client.call_sync(loid, "sort", [3, 2]) == [2, 3]


def test_unreachable_object_raises_after_rebind_fails(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    client.call_sync(loid, "sort", [1])
    # The object dies without the binding agent learning anything.
    obj.deactivate()
    with pytest.raises(ObjectUnreachable):
        client.call_sync(loid, "sort", [1])
    # The failure took two full timeout walks (stale discovery + the
    # post-rebind attempt at the same dead incarnation).
    assert client.binding_cache.stale_stats.count == 1


def test_partition_heals_and_call_completes(runtime):
    manager = make_sorter_manager(runtime)
    loid, __ = create_dcdo(runtime, manager, host_name="host00")
    client = runtime.make_client("host03")
    client.call_sync(loid, "sort", [1])
    record = manager.record(loid)
    partition = runtime.network.faults.add_partition(
        Partition(
            {client.endpoint.address},
            {record.obj.address},
        )
    )
    outcome = {}

    def caller():
        outcome["result"] = yield from client.invoke(loid, "sort", [2, 1])
        outcome["when"] = runtime.sim.now

    def healer():
        yield runtime.sim.timeout(3.0)
        partition.heal(runtime.sim.now)

    runtime.sim.spawn(caller())
    runtime.sim.spawn(healer())
    runtime.sim.run()
    assert outcome["result"] == [1, 2]
    assert outcome["when"] >= 3.0


def test_lazy_update_with_manager_partitioned_keeps_serving(runtime):
    """A lazy DCDO whose manager is unreachable must keep serving at
    its current version (availability over freshness)."""
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(),
    )
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    runtime.network.faults.add_partition(
        Partition({obj.address}, {manager.address})
    )
    assert client.call_sync(loid, "sort", [2, 1], timeout_schedule=(600.0,)) == [1, 2]


def test_evolution_rpc_retries_through_drops(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    version = manager.derive_version(manager.current_version)
    manager.descriptor_of(version).set_exported("compare", "compare-asc", False)
    manager.mark_instantiable(version)
    # Drop the first applyConfiguration request.
    runtime.network.faults.add_drop_rule(
        DropRule(
            predicate=lambda m: m.kind == "request"
            and isinstance(m.payload, dict)
            and m.payload.get("method") == "applyConfiguration",
            count=1,
        )
    )
    reached = runtime.sim.run_process(manager.evolve_instance(loid, version))
    assert reached == version


def test_component_fetch_retries_through_drops(runtime):
    """An ICO data fetch surviving a dropped chunk of traffic."""
    from repro.core.policies import GeneralEvolutionPolicy as GEP

    manager = make_sorter_manager(
        runtime, type_name="FetchRetry", evolution_policy=GEP()
    )
    loid, __ = create_dcdo(runtime, manager)
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable("compare", "compare-desc", replace_current=True)
    manager.mark_instantiable(version)
    runtime.network.faults.add_drop_rule(
        DropRule(
            predicate=lambda m: m.kind == "request"
            and isinstance(m.payload, dict)
            and m.payload.get("method") == "fetchVariant",
            count=1,
        )
    )
    reached = runtime.sim.run_process(manager.evolve_instance(loid, version))
    assert reached == version
    client = runtime.make_client()
    assert client.call_sync(loid, "sort", [1, 2]) == [2, 1]


def test_proactive_update_with_one_unreachable_instance(runtime):
    """Proactive propagation must not wedge the whole cut when one
    instance is dark; the others still converge."""
    from repro.core.policies import ProactiveUpdatePolicy

    manager = make_sorter_manager(
        runtime,
        type_name="PartialFleet",
        evolution_policy=SingleVersionPolicy(),
        update_policy=ProactiveUpdatePolicy(),
    )
    loids = [create_dcdo(runtime, manager)[0] for __ in range(3)]
    dark = manager.record(loids[1]).obj
    dark.deactivate()
    version = manager.derive_version(manager.current_version)
    manager.descriptor_of(version).set_exported("compare", "compare-asc", False)
    manager.mark_instantiable(version)
    propagation = manager.set_current_version_async(version)
    try:
        runtime.sim.run(until=propagation)
    except Exception:  # noqa: BLE001 - dark instance may surface an error
        pass
    runtime.sim.run()
    assert manager.instance_version(loids[0]) == version
    assert manager.instance_version(loids[2]) == version
    assert manager.instance_version(loids[1]) != version
