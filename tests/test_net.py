"""Unit tests for the network layer: fabric timing, faults, transport."""

import pytest

from repro.net import (
    DropRule,
    Endpoint,
    FaultPlan,
    Message,
    Network,
    Partition,
    PrefixPartition,
    RemoteError,
    RequestTimeout,
    TransportError,
)
from repro.net.message import HEADER_BYTES
from repro.sim import Simulator


def make_net(latency_s=0.001, bandwidth_bps=1_000_000):
    sim = Simulator()
    return sim, Network(sim, latency_s=latency_s, bandwidth_bps=bandwidth_bps)


# ----------------------------------------------------------------------
# Fabric timing
# ----------------------------------------------------------------------


def test_delivery_time_is_latency_plus_transmission():
    sim, net = make_net(latency_s=0.5, bandwidth_bps=1000)
    net.attach("a")
    port_b = net.attach("b")
    message = Message(source="a", destination="b", payload="hi", size_bytes=1000 - HEADER_BYTES)

    def receiver():
        received = yield port_b.inbox.get()
        return (sim.now, received.payload)

    net.send(message)
    when, payload = sim.run_process(receiver())
    # 1000 wire bytes at 1000 B/s = 1s transmission, + 0.5s latency.
    assert when == pytest.approx(1.5)
    assert payload == "hi"


def test_egress_serializes_messages_from_one_host():
    sim, net = make_net(latency_s=0.0, bandwidth_bps=1000)
    net.attach("a")
    port_b = net.attach("b")
    arrivals = []

    def receiver():
        for _ in range(2):
            yield port_b.inbox.get()
            arrivals.append(sim.now)

    size = 1000 - HEADER_BYTES  # exactly 1s of wire time each
    net.send(Message(source="a", destination="b", payload=1, size_bytes=size))
    net.send(Message(source="a", destination="b", payload=2, size_bytes=size))
    sim.spawn(receiver())
    sim.run()
    assert arrivals == pytest.approx([1.0, 2.0])


def test_different_senders_do_not_contend():
    sim, net = make_net(latency_s=0.0, bandwidth_bps=1000)
    net.attach("a")
    net.attach("b")
    port_c = net.attach("c")
    arrivals = []

    def receiver():
        for _ in range(2):
            yield port_c.inbox.get()
            arrivals.append(sim.now)

    size = 1000 - HEADER_BYTES
    net.send(Message(source="a", destination="c", payload=1, size_bytes=size))
    net.send(Message(source="b", destination="c", payload=2, size_bytes=size))
    sim.spawn(receiver())
    sim.run()
    # Switched Ethernet: both arrive after their own 1s transmission.
    assert arrivals == pytest.approx([1.0, 1.0])


def test_send_from_unknown_source_raises():
    __, net = make_net()
    net.attach("b")
    with pytest.raises(ValueError, match="unknown source"):
        net.send(Message(source="ghost", destination="b", payload=None))


def test_send_to_unknown_destination_is_silently_dropped():
    sim, net = make_net()
    net.attach("a")
    net.send(Message(source="a", destination="ghost", payload=None))
    sim.run()
    assert net.stats.messages_dropped == 1
    assert net.stats.messages_delivered == 0


def test_detach_loses_in_flight_messages():
    sim, net = make_net(latency_s=1.0)
    net.attach("a")
    net.attach("b")
    net.send(Message(source="a", destination="b", payload="doomed"))
    sim.run(until=0.5)
    net.detach("b")
    sim.run()
    assert net.stats.messages_dropped == 1


def test_duplicate_attach_rejected():
    __, net = make_net()
    net.attach("a")
    with pytest.raises(ValueError, match="already attached"):
        net.attach("a")


def test_stats_count_kinds():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    net.send(Message(source="a", destination="b", payload=None, kind="request"))
    net.send(Message(source="a", destination="b", payload=None, kind="request"))
    sim.run()
    assert net.stats.deliveries_by_kind == {"request": 2}


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(source="a", destination="b", payload=None, size_bytes=-1)


def test_reply_to_swaps_addresses_and_correlates():
    request = Message(source="client", destination="server", payload="req", kind="request")
    reply = request.reply_to("resp")
    assert reply.source == "server"
    assert reply.destination == "client"
    assert reply.correlation_id == request.message_id
    assert reply.kind == "reply"


# ----------------------------------------------------------------------
# Faults
# ----------------------------------------------------------------------


def test_drop_rule_drops_matching_messages():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    rule = net.faults.add_drop_rule(DropRule(predicate=lambda m: m.payload == "drop me"))
    net.send(Message(source="a", destination="b", payload="drop me"))
    net.send(Message(source="a", destination="b", payload="keep me"))
    sim.run()
    assert rule.dropped == 1
    assert net.stats.messages_delivered == 1


def test_drop_rule_count_limit():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    net.faults.add_drop_rule(DropRule(count=2))
    for __ in range(5):
        net.send(Message(source="a", destination="b", payload=None))
    sim.run()
    assert net.stats.messages_dropped == 2
    assert net.stats.messages_delivered == 3


def test_drop_rule_time_window():
    sim, net = make_net(latency_s=0.0)
    net.attach("a")
    net.attach("b")
    net.faults.add_drop_rule(DropRule(start=10.0, end=20.0))

    def driver():
        net.send(Message(source="a", destination="b", payload="before"))
        yield sim.timeout(15)
        net.send(Message(source="a", destination="b", payload="during"))
        yield sim.timeout(15)
        net.send(Message(source="a", destination="b", payload="after"))

    sim.spawn(driver())
    sim.run()
    assert net.stats.messages_dropped == 1
    assert net.stats.messages_delivered == 2


def test_partition_blocks_both_directions():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    net.faults.add_partition(Partition({"a"}, {"b"}))
    net.send(Message(source="a", destination="b", payload=None))
    net.send(Message(source="b", destination="a", payload=None))
    sim.run()
    assert net.stats.messages_dropped == 2


def test_partition_heal_restores_traffic():
    sim, net = make_net(latency_s=0.0)
    net.attach("a")
    net.attach("b")
    partition = net.faults.add_partition(Partition({"a"}, {"b"}))

    def driver():
        net.send(Message(source="a", destination="b", payload="lost"))
        yield sim.timeout(5)
        partition.heal(sim.now)
        net.send(Message(source="a", destination="b", payload="through"))

    sim.spawn(driver())
    sim.run()
    assert net.stats.messages_dropped == 1
    assert net.stats.messages_delivered == 1


def test_partition_groups_must_be_disjoint():
    with pytest.raises(ValueError, match="disjoint"):
        Partition({"a", "b"}, {"b", "c"})


def test_partition_does_not_block_unrelated_traffic():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    net.attach("c")
    net.faults.add_partition(Partition({"a"}, {"b"}))
    net.send(Message(source="a", destination="c", payload=None))
    sim.run()
    assert net.stats.messages_delivered == 1


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------


def echo_handler(message):
    return ("echo:" + str(message.payload), 0)
    yield  # pragma: no cover - marks this as a generator


def test_request_reply_roundtrip():
    sim, net = make_net()
    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=echo_handler)

    def proc():
        reply = yield from client.request("server", "ping")
        return reply

    assert sim.run_process(proc()) == "echo:ping"


def test_request_measures_two_network_legs():
    sim, net = make_net(latency_s=0.25, bandwidth_bps=10_000_000)
    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=echo_handler)

    def proc():
        yield from client.request("server", "ping")
        return sim.now

    elapsed = sim.run_process(proc())
    assert elapsed >= 0.5  # at least two latency legs


def test_request_timeout_when_no_server():
    sim, net = make_net()
    client = Endpoint(net, "client")

    def proc():
        yield from client.request("nowhere", "ping", timeout_s=1.0)

    with pytest.raises(RequestTimeout) as excinfo:
        sim.run_process(proc())
    assert excinfo.value.attempts == 1
    assert sim.now == pytest.approx(1.0, abs=0.01)


def test_request_retry_succeeds_after_drop():
    sim, net = make_net()
    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=echo_handler)
    net.faults.add_drop_rule(DropRule(predicate=lambda m: m.kind == "request", count=1))

    def proc():
        reply = yield from client.request("server", "ping", timeout_s=1.0, max_attempts=3)
        return (reply, sim.now)

    reply, elapsed = sim.run_process(proc())
    assert reply == "echo:ping"
    assert elapsed > 1.0  # one timeout was paid


def test_remote_handler_exception_becomes_remote_error():
    sim, net = make_net()

    def exploding_handler(message):
        raise KeyError("no such function")
        yield  # pragma: no cover

    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=exploding_handler)

    def proc():
        yield from client.request("server", "ping")

    with pytest.raises(RemoteError) as excinfo:
        sim.run_process(proc())
    assert isinstance(excinfo.value.cause, KeyError)


def test_handler_can_do_simulated_work():
    sim, net = make_net(latency_s=0.0)

    def slow_handler(message):
        yield sim.timeout(2.0)
        return "done"

    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=slow_handler)

    def proc():
        reply = yield from client.request("server", "work", timeout_s=10.0)
        return (reply, sim.now)

    reply, elapsed = sim.run_process(proc())
    assert reply == "done"
    assert elapsed >= 2.0


def test_concurrent_requests_are_correlated_correctly():
    sim, net = make_net()

    def delay_handler(message):
        yield sim.timeout(message.payload)
        return message.payload * 10

    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=delay_handler)
    results = {}

    def caller(delay):
        reply = yield from client.request("server", delay, timeout_s=10.0)
        results[delay] = reply

    sim.spawn(caller(3))
    sim.spawn(caller(1))
    sim.run()
    assert results == {3: 30, 1: 10}


def test_closed_endpoint_rejects_sends():
    __, net = make_net()
    client = Endpoint(net, "client")
    client.close()
    with pytest.raises(Exception, match="closed"):
        client.send("anywhere", None)


def test_request_to_endpoint_closed_midway_times_out():
    sim, net = make_net()

    def never_handler(message):
        yield sim.timeout(1000)
        return None

    client = Endpoint(net, "client")
    server = Endpoint(net, "server", request_handler=never_handler)

    def closer():
        yield sim.timeout(0.5)
        server.close()

    def proc():
        yield from client.request("server", "ping", timeout_s=2.0)

    sim.spawn(closer())
    with pytest.raises(RequestTimeout):
        sim.run_process(proc())


def test_oneway_handler_receives_messages():
    sim, net = make_net()
    received = []
    client = Endpoint(net, "client")
    Endpoint(net, "server", oneway_handler=lambda m: received.append(m.payload))
    client.send("server", "datagram")
    sim.run()
    assert received == ["datagram"]


def test_requests_served_counter():
    sim, net = make_net()
    client = Endpoint(net, "client")
    server = Endpoint(net, "server", request_handler=echo_handler)

    def proc():
        yield from client.request("server", 1)
        yield from client.request("server", 2)

    sim.run_process(proc())
    assert server.requests_served == 2


# ----------------------------------------------------------------------
# Fault-plan edge cases
# ----------------------------------------------------------------------


def _msg(source, destination):
    return Message(source=source, destination=destination, payload=None)


def test_overlapping_partitions_heal_independently():
    plan = FaultPlan()
    ab = plan.add_partition(Partition(["a"], ["b"]))
    ac = plan.add_partition(Partition(["a"], ["c"]))
    assert plan.swallows(_msg("a", "b"), now=1.0)
    assert plan.swallows(_msg("a", "c"), now=1.0)
    ab.heal(1.0)
    # "a" is still cut off from "c" by the partition that remains.
    assert not plan.swallows(_msg("a", "b"), now=1.0)
    assert plan.swallows(_msg("a", "c"), now=1.0)
    assert ac.blocked == 2


def test_partition_swallow_preserves_drop_rule_budget():
    plan = FaultPlan()
    partition = plan.add_partition(Partition(["a"], ["b"]))
    rule = plan.add_drop_rule(DropRule(count=1))
    # The partition swallows first; the drop-rule budget is untouched.
    assert plan.swallows(_msg("a", "b"), now=0.0)
    assert partition.blocked == 1
    assert rule.dropped == 0
    # The budget is still available for unpartitioned traffic...
    assert plan.swallows(_msg("a", "c"), now=0.0)
    assert rule.dropped == 1
    # ...and is exhausted afterwards.
    assert not plan.swallows(_msg("a", "c"), now=0.0)


def test_heal_at_current_time_unblocks_immediately():
    partition = Partition(["a"], ["b"])
    assert partition.blocks(_msg("a", "b"), now=5.0)
    partition.heal(5.0)
    assert not partition.blocks(_msg("a", "b"), now=5.0)


def test_partition_respects_time_window():
    partition = Partition(["a"], ["b"], start=2.0, end=4.0)
    assert not partition.blocks(_msg("a", "b"), now=1.9)
    assert partition.blocks(_msg("a", "b"), now=2.0)
    assert not partition.blocks(_msg("a", "b"), now=4.0)  # end-exclusive


def test_prefix_partition_blocks_by_prefix_both_ways():
    partition = PrefixPartition(["host00/"], ["host01/"])
    assert partition.blocks(_msg("host00/x", "host01/y"), now=0.0)
    assert partition.blocks(_msg("host01/y", "host00/x"), now=0.0)
    # Traffic not crossing the cut — including a third host — passes.
    assert not partition.blocks(_msg("host00/x", "host00/z"), now=0.0)
    assert not partition.blocks(_msg("host02/w", "host01/y"), now=0.0)
    assert partition.blocked == 2


def test_prefix_partition_rejects_overlapping_prefixes():
    with pytest.raises(ValueError):
        PrefixPartition(["host0"], ["host00/"])
    with pytest.raises(ValueError):
        PrefixPartition(["host00/"], [])


def test_drop_rule_rejects_nonpositive_count():
    with pytest.raises(ValueError):
        DropRule(count=0)


# ----------------------------------------------------------------------
# Transport regressions: close during service, dedupe bounding
# ----------------------------------------------------------------------


def test_server_closing_mid_service_suppresses_reply():
    sim, net = make_net()
    client = Endpoint(net, "client")

    def slow_echo(message):
        yield sim.timeout(1.0)
        return message.payload

    server = Endpoint(net, "server", request_handler=slow_echo)

    def closer():
        yield sim.timeout(0.5)
        server.close()

    def proc():
        yield from client.request("server", "ping", timeout_s=2.0, max_attempts=1)

    sim.spawn(closer())
    with pytest.raises(RequestTimeout):
        sim.run_process(proc())
    # The handler finished, but the closed endpoint never spoke from its
    # detached address — and did not count the request as served.
    sim.run()
    assert server.requests_served == 0


def test_closing_client_fails_its_next_request_attempt():
    sim, net = make_net()

    def never(message):
        yield sim.timeout(1000)
        return None

    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=never)

    def closer():
        yield sim.timeout(0.5)
        client.close()

    def proc():
        yield from client.request("server", "ping", timeout_s=1.0, max_attempts=2)

    sim.spawn(closer())
    # Attempt 1 was in flight when we closed; it times out normally
    # (bounded by its own timeout, never dangling), and attempt 2 then
    # refuses to speak from the closed endpoint.
    with pytest.raises(TransportError, match="closed"):
        sim.run_process(proc())
    assert sim.now < 2.0


def test_closed_endpoint_rejects_new_requests_outright():
    sim, net = make_net()
    client = Endpoint(net, "client")
    client.close()

    def proc():
        yield from client.request("server", "ping")

    with pytest.raises(TransportError, match="closed"):
        sim.run_process(proc())


def _echo(message):
    return message.payload
    yield  # pragma: no cover - uniform generator shape


def test_seen_requests_expire_after_ttl():
    sim, net = make_net()
    client = Endpoint(net, "client")
    server = Endpoint(net, "server", request_handler=_echo, dedupe_ttl_s=5.0)

    def proc():
        yield from client.request("server", 1)
        yield sim.timeout(20.0)  # far past the dedupe TTL
        yield from client.request("server", 2)

    sim.run_process(proc())
    sim.run()
    # The first request's id was evicted when the second arrived.
    assert len(server._seen_requests) == 1
    assert server.requests_served == 2


def test_seen_requests_bounded_by_cap():
    sim, net = make_net()
    client = Endpoint(net, "client")
    server = Endpoint(net, "server", request_handler=_echo)
    server.SEEN_REQUEST_LIMIT = 2

    def proc():
        for i in range(5):
            yield from client.request("server", i)

    sim.run_process(proc())
    sim.run()
    assert len(server._seen_requests) <= 2
    assert server.requests_served == 5
