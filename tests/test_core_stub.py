"""Tests for the defensive client stub."""

import pytest

from repro.core.stub import DCDOStub
from repro.legion.errors import MethodNotFound
from tests.conftest import create_dcdo, make_sorter_manager


@pytest.fixture
def stub_setup(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    return manager, loid, obj, client


def test_plain_call_works(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid)
    assert stub.call_sync("sort", [2, 1]) == [1, 2]


def test_refresh_interface_caches_snapshot(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid)
    functions = client.sim.run_process(stub.refresh_interface())
    assert functions == {"sort", "compare"}
    assert stub.interface.is_fresh
    assert stub.interface.version == "1"
    assert stub.interface.exports("sort")
    assert not stub.interface.exports("ghost")


def test_supports_requeries(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid)
    assert client.sim.run_process(stub.supports("sort"))
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    assert not client.sim.run_process(stub.supports("sort"))


def test_check_first_skips_missing_function_via_fallback(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid, fallbacks={"sort": "compare"})
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    # check_first sees sort missing and routes to the fallback.
    assert stub.call_sync("sort", 5, 9, check_first=True) == 5


def test_disappearance_retry_succeeds_after_reenable(runtime):
    """The function vanishes, then an equivalent is re-enabled; the
    stub's re-query + retry path succeeds transparently."""
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    stub = DCDOStub(client, loid)
    client.call_sync(loid, "getVersion")  # warm the binding cache
    runtime.sim.run_process(obj.disable_function("sort", "sorter"))

    def scenario():
        call = runtime.sim.spawn(stub.call("sort", [3, 1]))
        # Re-enable after the first invocation has already failed (a
        # round trip is ~3 ms) but before the stub's re-query lands.
        yield runtime.sim.timeout(0.004)
        yield from obj.enable_function("sort", "sorter")
        result = yield call
        return result

    assert runtime.sim.run_process(scenario()) == [1, 3]
    assert stub.disappearances == 1


def test_disappearance_without_retry_or_fallback_raises(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid, retry_on_disappearance=False)
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    with pytest.raises(MethodNotFound):
        stub.call_sync("sort", [1])
    assert stub.disappearances == 1


def test_fallback_used_when_function_gone_for_good(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid, fallbacks={"sort": "compare"})
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    # compare(min) of the two args stands in for the missing sort.
    assert stub.call_sync("sort", 4, 2) == 2
    assert stub.fallbacks_used == 1


def test_missing_function_with_no_options_raises_clear_error(stub_setup):
    __, loid, __, client = stub_setup
    stub = DCDOStub(client, loid)
    with pytest.raises(MethodNotFound):
        stub.call_sync("never_existed")
