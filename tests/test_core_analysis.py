"""Tests for the structural-dependency static analyzer."""

from repro.core import ComponentBuilder, Dependency
from repro.core.analysis import (
    annotate_component,
    called_functions,
    check_closure,
    derive_structural_dependencies,
)


def simple_caller(ctx):
    result = yield from ctx.call("helper")
    return result


def multi_caller(ctx, flag):
    first = yield from ctx.call("alpha", flag)
    second = yield from ctx.call("beta")
    if flag:
        third = yield from ctx.call("alpha")  # repeated target
        return (first, second, third)
    return (first, second)


def recursive_fn(ctx, n):
    if n <= 0:
        return 0
    rest = yield from ctx.call("recursive_fn", n - 1)
    return n + rest


def dynamic_target(ctx, name):
    result = yield from ctx.call(name)  # not statically resolvable
    return result


def renamed_context(context):
    return (yield from context.call("via_renamed"))


def no_calls(ctx, a, b):
    return a + b


def test_called_functions_finds_literal_targets():
    names, unknown = called_functions(multi_caller)
    assert names == {"alpha", "beta"}
    assert unknown == 0


def test_called_functions_counts_unknown_targets():
    names, unknown = called_functions(dynamic_target)
    assert names == set()
    assert unknown == 1


def test_called_functions_respects_context_parameter_name():
    names, __ = called_functions(renamed_context)
    assert names == {"via_renamed"}


def test_called_functions_none_for_plain_body():
    names, unknown = called_functions(no_calls)
    assert names == set()
    assert unknown == 0


def test_called_functions_handles_unanalyzable_bodies():
    names, unknown = called_functions(len)  # builtin: no source
    assert names == set()
    assert unknown == 0


def test_derive_structural_dependencies_are_type_a():
    component = (
        ComponentBuilder("c1")
        .function("simple_caller", simple_caller)
        .function("helper", lambda ctx: "h")
        .build()
    )
    deps = derive_structural_dependencies(component)
    assert deps == [
        Dependency("simple_caller", "helper", dependent_component="c1")
    ]
    assert deps[0].type_letter == "A"


def test_derive_includes_self_dependency_for_recursion():
    component = ComponentBuilder("c1").function("recursive_fn", recursive_fn).build()
    deps = derive_structural_dependencies(component)
    assert Dependency("recursive_fn", "recursive_fn", dependent_component="c1") in deps
    assert derive_structural_dependencies(component, include_self=False) == []


def test_annotate_component_ships_and_deduplicates():
    component = (
        ComponentBuilder("c1")
        .function("simple_caller", simple_caller)
        .function("helper", lambda ctx: "h")
        .build()
    )
    added = annotate_component(component)
    assert len(added) == 1
    assert annotate_component(component) == []  # idempotent
    assert component.declared_dependencies == added


def test_annotated_component_protects_callee_in_live_dcdo(runtime):
    """End to end: analyzer-shipped dependencies veto the disable that
    would have caused the missing internal function problem."""
    import pytest

    from repro.core import DependencyViolation
    from repro.core.manager import define_dcdo_type

    component = (
        ComponentBuilder("analyzed")
        .function("simple_caller", simple_caller)
        .function("helper", lambda ctx: "h")
        .variant(size_bytes=64_000)
        .build()
    )
    annotate_component(component)
    manager = define_dcdo_type(runtime, "Analyzed")
    manager.register_component(component)
    version = manager.new_version()
    manager.incorporate_into(version, "analyzed")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("simple_caller", "analyzed")
    descriptor.enable("helper", "analyzed")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client()
    assert client.call_sync(loid, "simple_caller") == "h"
    with pytest.raises(DependencyViolation):
        client.call_sync(loid, "disableFunction", "helper", "analyzed")


def test_check_closure_reports_gaps():
    from repro.core import DFMDescriptor

    caller_comp = (
        ComponentBuilder("caller-comp")
        .function("simple_caller", simple_caller)
        .build()
    )
    annotate_component(caller_comp)
    descriptor = DFMDescriptor()
    descriptor.incorporate(caller_comp, ico_loid="ico")
    # Deliberately bypass add-time validation by injecting the enabled
    # state without the helper existing anywhere.
    from dataclasses import replace

    key = ("simple_caller", "caller-comp")
    descriptor._entries[key] = replace(descriptor._entries[key], enabled=True)
    assert check_closure(descriptor) == [("simple_caller", "helper")]


def test_check_closure_clean_when_chain_complete():
    from repro.core import DFMDescriptor

    component = (
        ComponentBuilder("c1")
        .function("simple_caller", simple_caller)
        .function("helper", lambda ctx: "h")
        .build()
    )
    annotate_component(component)
    descriptor = DFMDescriptor()
    descriptor.incorporate(component, ico_loid="ico")
    descriptor.enable("helper", "c1")
    descriptor.enable("simple_caller", "c1")
    assert check_closure(descriptor) == []
