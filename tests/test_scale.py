"""Scale tests: larger fleets, bigger tables, longer runs.

All fast in wall-clock terms (the simulator is event-driven), but they
exercise code paths at sizes closer to the paper's ambitions.
"""

import pytest

from repro.cluster import build_centurion
from repro.core.policies import ProactiveUpdatePolicy, SingleVersionPolicy
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, make_noop_manager, synthetic_components


def test_hundred_instances_across_sixteen_hosts():
    runtime = LegionRuntime(build_centurion(seed=21))
    manager, __ = make_noop_manager(
        runtime, "Scale100", component_count=2, functions_per_component=3
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"centurion{index % 16:02d}")
        )
        for index in range(100)
    ]
    assert len(manager.instance_loids()) == 100
    client = runtime.make_client("centurion00")
    for loid in loids[::10]:
        assert client.call_sync(loid, "ping", 1) == (1,)
    # Host placement is spread as directed.
    per_host = {}
    for loid in loids:
        per_host.setdefault(manager.record(loid).host.name, 0)
        per_host[manager.record(loid).host.name] += 1
    assert all(count == 100 // 16 or count == 100 // 16 + 1 for count in per_host.values())


def test_proactive_cut_converges_fifty_instances():
    runtime = LegionRuntime(build_centurion(seed=22))
    manager, __ = make_noop_manager(
        runtime,
        "Scale50",
        component_count=1,
        functions_per_component=2,
        evolution_policy=SingleVersionPolicy(),
        update_policy=ProactiveUpdatePolicy(),
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"centurion{index % 16:02d}")
        )
        for index in range(50)
    ]
    extra = synthetic_components(1, 2, prefix="scale50x-")
    for record in manager.active_instances():
        variant = extra[0].variant_for_host(record.host)
        record.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    start = runtime.sim.now
    manager.set_current_version(version)
    cut_time = runtime.sim.now - start
    assert all(manager.instance_version(loid) == version for loid in loids)
    # Parallel propagation: the 50-instance cut costs far less than 50
    # serial evolutions (~10 ms each).
    assert cut_time < 0.1


def test_large_dfm_object_serves_correctly():
    runtime = LegionRuntime(build_centurion(seed=23))
    manager, components = make_noop_manager(
        runtime, "BigDFM", component_count=50, functions_per_component=10
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))
    obj = manager.record(loid).obj
    assert obj.dfm.entry_count() >= 500
    client = runtime.make_client("centurion02")
    # Any of the 500 functions dispatches.
    name = components[37].function_names()[5]
    assert client.call_sync(loid, name) is None
    assert client.call_sync(loid, "ping", "x") == ("x",)


def test_deep_version_chains():
    """A 30-deep derivation chain stays consistent and instantiable."""
    runtime = LegionRuntime(build_centurion(seed=24))
    manager, components = make_noop_manager(
        runtime, "DeepChain", component_count=1, functions_per_component=2
    )
    version = manager.current_version
    first = components[0]
    names = [name for name in first.functions if name != "ping"]
    for depth in range(30):
        version = manager.derive_version(version)
        descriptor = manager.descriptor_of(version)
        target = names[depth % len(names)]
        if descriptor.is_enabled(target, first.component_id):
            descriptor.disable(target, first.component_id)
        else:
            descriptor.enable(target, first.component_id)
        manager.mark_instantiable(version)
    assert version.depth == 31  # root (1) + 30 derivations
    manager.set_current_version(version)
    loid = runtime.sim.run_process(manager.create_instance())
    assert manager.instance_version(loid) == version


def test_long_running_traffic_is_stable():
    """A client loop sustained over 10 simulated minutes: constant
    latency, no drift, no leaked threads."""
    from repro.workloads import ClosedLoopClient, run_clients

    runtime = LegionRuntime(build_centurion(seed=25))
    manager, __ = make_noop_manager(
        runtime, "LongHaul", component_count=1, functions_per_component=2
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))
    obj = manager.record(loid).obj
    client = runtime.make_client("centurion05")
    loop = ClosedLoopClient(client, loid, "ping", calls=2000, think_time_s=0.3)
    run_clients(runtime, [loop])
    assert loop.completed_calls == 2000
    assert loop.errors == []
    first_hundred = sum(loop.latencies[:100]) / 100
    last_hundred = sum(loop.latencies[-100:]) / 100
    assert last_hundred == pytest.approx(first_hundred, rel=0.05)
    assert obj.active_requests == 0
    assert runtime.sim.now >= 600.0
