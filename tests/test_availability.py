"""Manager high availability: terms, replication, detection, failover.

Unit-level coverage for the PR 5 availability stack — fencing terms on
the wire, journal byte accounting, hot-standby journal shipping (sync
and async, including checkpoint/replay interleavings), heartbeat
failure detection, and supervised failover end-to-end (crash and
split-brain).  The seeded chaos sweep lives in
``tests/test_chaos_failover.py``.
"""

import pytest

from repro.cluster import HeartbeatFailureDetector, Supervisor, build_lan
from repro.cluster.chaos import crash_host
from repro.core import (
    ManagerJournal,
    ManagerRecoveryError,
    ReplicationLink,
    estimate_entry_bytes,
    recover_manager,
)
from repro.core.policies import ReliableUpdatePolicy
from repro.core.recovery import JournalEntry
from repro.legion import LegionRuntime
from repro.legion.errors import StaleManagerTerm
from repro.net import ManagerTerm, PrefixPartition, RemoteError, RetryPolicy

from tests.conftest import create_dcdo, make_counter_class, make_sorter_manager

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)


def build_fleet(sim_seed=7, hosts=6, instances=3, **manager_kwargs):
    """Runtime + journaled sorter manager on host00, instances beyond."""
    runtime = LegionRuntime(build_lan(hosts, seed=sim_seed))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        component_hosts={
            "sorter": "host00",
            "compare-asc": "host00",
            "compare-desc": "host05" if hosts > 5 else "host00",
        },
        journal=journal,
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    loids = []
    for index in range(instances):
        loid, __ = create_dcdo(runtime, manager, host_name=f"host{index + 1:02d}")
        loids.append(loid)
    return runtime, manager, journal, loids


def derive_v2(manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    return version


# ----------------------------------------------------------------------
# Satellite: recover_manager with no live host
# ----------------------------------------------------------------------


def test_recover_manager_no_live_host_raises_recovery_error():
    """Regression: the fallback-host pick was a bare ``next()`` whose
    StopIteration PEP 479 turned into an opaque RuntimeError."""
    runtime, manager, journal, __ = build_fleet(hosts=3, instances=1)
    for host in list(runtime.hosts.values()):
        crash_host(runtime, host)
    with pytest.raises(ManagerRecoveryError, match="no live host"):
        runtime.sim.run_process(recover_manager(runtime, journal))


# ----------------------------------------------------------------------
# Satellite: journal byte accounting
# ----------------------------------------------------------------------


def test_estimate_entry_bytes_by_value_shape():
    base = estimate_entry_bytes(JournalEntry("x", {}))
    assert base > 0
    assert estimate_entry_bytes(
        JournalEntry("x", {"s": "abcdefgh"})
    ) > estimate_entry_bytes(JournalEntry("x", {"s": "ab"}))
    assert estimate_entry_bytes(
        JournalEntry("x", {"l": [1, 2, 3, 4]})
    ) > estimate_entry_bytes(JournalEntry("x", {"l": []}))


def test_journal_tracks_bytes_across_append_and_checkpoint():
    journal = ManagerJournal(name="T")
    assert journal.bytes == 0
    journal.append("alpha", value="payload")
    journal.append("beta", value="more-payload")
    grown = journal.bytes
    assert grown == sum(estimate_entry_bytes(e) for e in journal.replay())
    journal.write_checkpoint(journal.replay()[1:])
    assert 0 < journal.bytes < grown
    journal.append("gamma")
    assert journal.bytes == sum(estimate_entry_bytes(e) for e in journal.replay())


def test_manager_publishes_journal_gauges():
    runtime, manager, journal, __ = build_fleet(instances=1)
    metrics = runtime.network.metrics
    assert metrics.gauge("journal.entries").value == len(journal)
    assert metrics.gauge("journal.bytes").value == journal.bytes
    manager.write_checkpoint()
    assert metrics.gauge("journal.entries").value == len(journal)
    assert metrics.gauge("journal.bytes").value == journal.bytes


# ----------------------------------------------------------------------
# Fencing terms
# ----------------------------------------------------------------------


def test_stale_term_rejected_fresh_term_accepted(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(
        class_object.create_instance(host_name="host01")
    )
    obj = class_object.record(loid).obj
    invoker = class_object.invoker

    result = runtime.sim.run_process(
        invoker.invoke(loid, "inc", (1,), term=ManagerTerm("Counter", 5))
    )
    assert result == 1
    assert obj.observed_term("Counter") == 5

    with pytest.raises(StaleManagerTerm):
        runtime.sim.run_process(
            invoker.invoke(loid, "inc", (1,), term=ManagerTerm("Counter", 3))
        )
    assert runtime.network.count_value("manager.stale_term_rejections") == 1
    # The stale call did not execute; the fresh term still stands.
    assert runtime.sim.run_process(invoker.invoke(loid, "get", ())) == 1
    assert obj.observed_term("Counter") == 5
    # Equal term is fine (the same manager keeps talking).
    runtime.sim.run_process(
        invoker.invoke(loid, "inc", (1,), term=ManagerTerm("Counter", 5))
    )


def test_term_bumps_are_journaled_and_survive_double_recovery():
    runtime, manager, journal, __ = build_fleet(instances=1)
    assert manager.term == 1

    crash_host(runtime, runtime.host("host00"))
    second = runtime.sim.run_process(
        recover_manager(runtime, journal, host_name="host02")
    )
    assert second.term == 2
    second.write_checkpoint()  # the term must lead the checkpoint

    crash_host(runtime, runtime.host("host02"))
    third = runtime.sim.run_process(
        recover_manager(runtime, journal, host_name="host03")
    )
    assert third.term == 3
    assert third.current_term() == ManagerTerm("Sorter", 3)


# ----------------------------------------------------------------------
# Hot-standby replication
# ----------------------------------------------------------------------


def journals_equal(a, b):
    return [(e.kind, e.data) for e in a.replay()] == [
        (e.kind, e.data) for e in b.replay()
    ]


def test_sync_replication_ships_bootstrap_and_live_writes():
    runtime, manager, journal, loids = build_fleet(instances=2)
    link = ReplicationLink(runtime, manager, "host02", mode="sync")
    v2 = derive_v2(manager)
    runtime.sim.run_process(manager.propagate_version(v2))
    runtime.sim.run()
    assert link.lag == 0
    assert journals_equal(link.replica.journal, journal)
    assert link.replica.journal.meta["type_name"] == "Sorter"
    assert runtime.network.count_value("repl.entries_shipped") > 0
    assert runtime.network.count_value("repl.checkpoints_shipped") >= 1
    assert runtime.network.count_value("repl.bytes_shipped") > 0


def test_async_replication_catches_up_on_interval():
    runtime, manager, journal, loids = build_fleet(instances=2)
    link = ReplicationLink(
        runtime, manager, "host02", mode="async", ship_interval_s=0.5
    )
    v2 = derive_v2(manager)
    runtime.sim.run_process(manager.propagate_version(v2))
    # Writes land between interval ticks; drive past a few ticks.
    runtime.sim.run(until=runtime.sim.now + 5.0)
    assert link.lag == 0
    assert journals_equal(link.replica.journal, journal)


def test_checkpoint_during_standby_replay_loses_no_tail(runtime):
    """Satellite: write_checkpoint racing shipped appends must never
    lose tail entries — the standby applies records strictly in ship
    order, so a checkpoint followed by post-checkpoint appends lands
    exactly as the primary wrote them."""
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(runtime, journal=journal)
    link = ReplicationLink(runtime, manager, "host02", mode="sync")

    def churn():
        for round_no in range(5):
            for index in range(4):
                journal.append("note", round=round_no, index=index)
                yield runtime.sim.timeout(0.001)
            manager.write_checkpoint()
            journal.append("post-checkpoint", round=round_no)
            yield runtime.sim.timeout(0.01)

    runtime.sim.run_process(churn())
    runtime.sim.run()
    assert link.lag == 0
    assert journals_equal(link.replica.journal, journal)
    tail_kinds = [e.kind for e in link.replica.journal.entries]
    assert "post-checkpoint" in tail_kinds


def test_partitioned_standby_lags_then_catches_up():
    runtime, manager, journal, loids = build_fleet(instances=2)
    runtime.network.faults.add_partition(
        PrefixPartition(["host02/"], ["host00/", "host01/"], start=0.0, end=20.0)
    )
    link = ReplicationLink(runtime, manager, "host02", mode="sync")
    v2 = derive_v2(manager)
    runtime.sim.run_process(manager.propagate_version(v2))
    assert link.lag > 0  # backlog while cut off
    assert runtime.network.count_value("repl.ship_failures") > 0

    def wait_heal():
        yield runtime.sim.timeout(25.0)
        journal.append("after-heal")  # any write re-kicks the queue

    runtime.sim.run_process(wait_heal())
    runtime.sim.run()
    assert link.lag == 0
    assert journals_equal(link.replica.journal, journal)


def test_duplicate_ship_is_idempotent():
    """A re-shipped batch (lost reply) must not double-apply records."""
    runtime, manager, journal, __ = build_fleet(instances=1)
    link = ReplicationLink(runtime, manager, "host02", mode="sync")
    runtime.sim.run()
    before = len(link.replica.journal)
    applied = link.replica.applied_seq
    assert applied >= 1
    # Re-ship the bootstrap checkpoint as if its ack had been lost.
    records = [(1, "checkpoint", journal.replay())]
    reply = runtime.sim.run_process(
        link._endpoint.request(
            link.replica.address,
            {"op": "ship", "records": records, "meta": {}},
        )
    )
    assert reply["applied_seq"] == applied
    assert len(link.replica.journal) == before
    assert link.replica.applied_seq == applied


def test_takeover_from_standby_skips_replay_cost():
    runtime, manager, journal, __ = build_fleet(instances=2)
    link = ReplicationLink(runtime, manager, "host02", mode="sync")
    v2 = derive_v2(manager)
    manager.set_current_version(v2)
    runtime.sim.run_process(manager.propagate_version(v2))
    runtime.sim.run()
    crash_host(runtime, runtime.host("host00"))
    link.stop()
    standby_journal = link.replica.journal
    promoted = runtime.sim.run_process(
        recover_manager(
            runtime,
            standby_journal,
            host_name="host02",
            resume=False,
            skip_entries=len(standby_journal),
        )
    )
    assert promoted.is_active and promoted.term == 2
    assert promoted.current_version == v2
    # All replay CPU was paid during shipping: takeover charged none.
    hot = runtime.network.metrics.timer("manager.recovery_time_s").max()
    cold_floor = 0.0002 * len(standby_journal)
    assert hot < cold_floor


# ----------------------------------------------------------------------
# Heartbeat failure detection
# ----------------------------------------------------------------------


def test_detector_suspects_dead_manager_and_sees_recovery():
    runtime, manager, journal, __ = build_fleet(instances=1)
    events = []
    detector = HeartbeatFailureDetector(
        runtime,
        runtime.host("host03"),
        interval_s=0.5,
        timeout_s=0.4,
        suspicion_threshold=3,
    )
    loid = manager.loid
    detector.watch(
        "Sorter",
        lambda: runtime.binding_agent.current_address(loid),
        on_suspect=lambda key: events.append(("suspect", runtime.sim.now)),
        on_recover=lambda key: events.append(("recover", runtime.sim.now)),
    )

    def scenario():
        yield runtime.sim.timeout(5.0)
        crash_host(runtime, runtime.host("host00"))
        yield runtime.sim.timeout(10.0)
        runtime.host("host00").restart()
        yield from recover_manager(runtime, journal, host_name="host00")
        yield runtime.sim.timeout(5.0)

    runtime.sim.run_process(scenario())
    assert [kind for kind, __ in events[:1]] == ["suspect"]
    assert ("recover", events[-1][1]) == events[-1]
    suspect_at = events[0][1]
    assert 5.0 < suspect_at < 10.0  # a few missed probes, not minutes
    assert runtime.network.count_value("detector.suspicions") == 1
    assert runtime.network.count_value("detector.recoveries") == 1
    latency = runtime.network.metrics.timer("detector.detection_latency_s")
    assert latency.count == 1 and latency.max() < 5.0
    detector.stop()


def test_detector_refires_while_still_suspected():
    runtime, manager, journal, __ = build_fleet(instances=1)
    fired = []
    detector = HeartbeatFailureDetector(
        runtime,
        runtime.host("host03"),
        interval_s=0.5,
        timeout_s=0.4,
        suspicion_threshold=2,
    )
    loid = manager.loid
    detector.watch(
        "Sorter",
        lambda: runtime.binding_agent.current_address(loid),
        on_suspect=lambda key: fired.append(runtime.sim.now),
    )
    crash_host(runtime, runtime.host("host00"))
    runtime.sim.run(until=10.0)
    # Nobody recovered the manager: the alarm re-fires periodically so
    # a failed promotion gets another chance.
    assert len(fired) >= 3
    detector.stop()


# ----------------------------------------------------------------------
# Supervised failover, end to end
# ----------------------------------------------------------------------


def test_supervisor_promotes_standby_and_converges_mid_wave():
    runtime, manager, journal, loids = build_fleet(
        instances=3,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=("host02", "host03"),
        detector_host_name="host04",
        heartbeat_interval_s=0.5,
        heartbeat_timeout_s=0.4,
        suspicion_threshold=3,
        retry_policy=FAST_RETRY,
    ).start()
    v2 = derive_v2(manager)

    def scenario():
        yield runtime.sim.timeout(0.5)
        manager.set_current_version_async(v2)
        yield runtime.sim.timeout(1.0)  # wave in flight
        crash_host(runtime, runtime.host("host00"))

    runtime.sim.run_process(scenario())
    # Detection and the probe loop run on daemon timers, so drive the
    # clock through the suspicion window explicitly, then drain the
    # promotion/convergence work it spawned.
    runtime.sim.run(until=60.0)
    runtime.sim.run()

    assert supervisor.promotions == 1
    promoted = runtime.class_of("Sorter")
    assert promoted.is_active and not promoted.deposed
    assert promoted.host.name == "host02"
    assert promoted.term == 2
    assert promoted.current_version == v2
    for loid in loids:
        obj = promoted.record(loid).obj
        assert obj.version == v2
        assert obj.applications_by_version.get(v2, 0) <= 1
        # Term-stamped management traffic reached every instance; an
        # instance that only acked before the crash may still hold the
        # old number, but never anything above the promoted term.
        assert 1 <= obj.observed_manager_term <= promoted.term
    # The supervisor re-armed replication to the next standby.
    assert supervisor.link is not None
    assert supervisor.link.replica.host_name == "host03"
    assert runtime.network.metrics.timer("supervisor.takeover_s").count == 1
    supervisor.stop()


def test_supervisor_fences_split_brain_zombie():
    """A *partitioned* (not dead) primary is deposed by its own stale
    term: after heal its retries are rejected everywhere and the first
    rejection fences it permanently."""
    runtime, manager, journal, loids = build_fleet(
        instances=3,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=("host02", "host03"),
        detector_host_name="host04",
        retry_policy=FAST_RETRY,
    ).start()
    v2 = derive_v2(manager)
    # Isolate the primary *mid-wave*: the wave fires at base+0.5, its
    # journal writes ship to the standby within a millisecond, and the
    # instances' acks only return around base+0.55 — cutting at
    # base+0.52 means the standby knows about the wave but the zombie
    # never hears its acks and keeps retrying with its old term.
    # Fault times are absolute, so rebase onto now (setup already ran
    # the sim).
    base = runtime.sim.now
    others = [f"host{i:02d}/" for i in range(1, 6)]
    runtime.network.faults.add_partition(
        PrefixPartition(["host00/"], others, start=base + 0.52, end=base + 40.0)
    )

    def scenario():
        yield runtime.sim.timeout(0.5)
        manager.set_current_version_async(v2)
        # Hold the sim open past heal so the zombie's surviving retry
        # attempts actually reach the fleet and get fenced.
        yield runtime.sim.timeout(90.0)

    runtime.sim.run_process(scenario())
    runtime.sim.run()

    assert supervisor.promotions >= 1
    promoted = runtime.class_of("Sorter")
    assert promoted is not manager
    assert promoted.is_active and promoted.term >= 2
    # The zombie saw a stale-term rejection and stepped down for good.
    assert manager.deposed and not manager.is_active
    assert runtime.network.count_value("manager.stale_term_rejections") > 0
    assert runtime.network.count_value("manager.fenced_stepdowns") >= 1
    for loid in loids:
        obj = promoted.record(loid).obj
        assert obj.version == v2
        assert obj.applications_by_version.get(v2, 0) <= 1
    supervisor.stop()


def test_supervisor_replaces_crashed_standby():
    runtime, manager, journal, __ = build_fleet(instances=1)
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=("host02", "host03"),
        detector_host_name="host04",
    ).start()
    assert supervisor.link.replica.host_name == "host02"
    crash_host(runtime, runtime.host("host02"))

    def tick():
        yield runtime.sim.timeout(10.0)
        journal.append("keepalive")

    runtime.sim.run_process(tick())
    runtime.sim.run()
    assert supervisor.link.replica.host_name == "host03"
    assert supervisor.link.replica.reachable
    assert runtime.network.count_value("supervisor.standby_replacements") == 1
    assert journals_equal(supervisor.link.replica.journal, journal)
    supervisor.stop()


# ----------------------------------------------------------------------
# Schedule determinism for the new fault kinds
# ----------------------------------------------------------------------


def test_manager_fault_kinds_extend_legacy_schedule_deterministically():
    from repro.cluster.chaos import ChaosSchedule

    names = [f"host{i:02d}" for i in range(6)]
    legacy = ChaosSchedule.generate(
        5, names, ico_hosts=("host05",), max_ico_partitions=2, mid_apply_crashes=1
    )
    extended = ChaosSchedule.generate(
        5,
        names,
        ico_hosts=("host05",),
        max_ico_partitions=2,
        mid_apply_crashes=1,
        manager_hosts=("host00", "host02"),
        max_manager_partitions=1,
        max_failovers=2,
    )
    assert extended.crashes[: len(legacy.crashes)] == legacy.crashes
    assert extended.partitions[: len(legacy.partitions)] == legacy.partitions
    assert extended.drops == legacy.drops
    # The new kinds actually produced faults, reproducibly.
    new_partitions = extended.partitions[len(legacy.partitions) :]
    assert all(part[0] == ["host00/"] for part in new_partitions)
    # Failover crashes target the manager hosts (a host the legacy
    # draws already crashed is skipped) and are chained in time.
    new_crashes = extended.crashes[len(legacy.crashes) :]
    assert 1 <= len(new_crashes) <= 2
    assert all(name in ("host00", "host02") for name, __, __ in new_crashes)
    crash_times = [at for __, at, __ in new_crashes]
    assert crash_times == sorted(crash_times)
    again = ChaosSchedule.generate(
        5,
        names,
        ico_hosts=("host05",),
        max_ico_partitions=2,
        mid_apply_crashes=1,
        manager_hosts=("host00", "host02"),
        max_manager_partitions=1,
        max_failovers=2,
    )
    assert (again.crashes, again.partitions, again.drops) == (
        extended.crashes,
        extended.partitions,
        extended.drops,
    )


# ----------------------------------------------------------------------
# Gray failures: phi-accrual vs fixed-threshold detection
# ----------------------------------------------------------------------


def _run_detector_against_slow_manager(mode):
    """One fleet whose manager link turns gray (slow, not dead) for a
    window; returns (detector, runtime) after the window heals."""
    from repro.net import SlowLink

    runtime, manager, journal, __ = build_fleet(instances=1)
    detector = HeartbeatFailureDetector(
        runtime,
        runtime.host("host03"),
        interval_s=0.5,
        timeout_s=0.4,
        suspicion_threshold=3,
        mode=mode,
    )
    loid = manager.loid
    detector.watch(
        "Sorter",
        lambda: runtime.binding_agent.current_address(loid),
        on_suspect=lambda key: None,
    )
    base = runtime.sim.now
    # Probe RTT inflates to ~0.6-0.7 s: over the fixed 0.4 s reply
    # timeout, under phi mode's stretched 1.0 s wait.
    runtime.network.faults.add_delay_rule(
        SlowLink(
            ["host03/"],
            ["host00/"],
            extra_s=0.3,
            jitter_s=0.03,
            seed=1,
            start=base + 2.0,
            end=base + 20.0,
        )
    )
    runtime.sim.run(until=base + 30.0)
    detector.stop()
    return detector, runtime


def test_fixed_threshold_detector_false_positives_on_slow_peer():
    detector, runtime = _run_detector_against_slow_manager("threshold")
    # Every probe in the gray window missed the 0.4 s wait: the alive
    # manager was suspected, then "recovered" when the link healed —
    # a false positive by construction.
    assert detector.false_positives >= 1
    assert runtime.network.count_value("detector.suspicions") >= 1
    assert runtime.network.count_value("detector.false_positives") >= 1


def test_phi_detector_tolerates_slow_but_alive_peer():
    detector, runtime = _run_detector_against_slow_manager("phi")
    # Late replies kept resetting the accrual clock: slow was never
    # declared dead.
    assert detector.false_positives == 0
    assert runtime.network.count_value("detector.suspicions") == 0
    assert detector.phi("Sorter") < detector.phi_threshold


def test_phi_mode_lowers_false_positives_vs_fixed_threshold():
    """Satellite: the same gray window, both modes — phi-accrual must
    strictly lower the suspected-then-recovered count."""
    fixed, __ = _run_detector_against_slow_manager("threshold")
    phi, __ = _run_detector_against_slow_manager("phi")
    assert phi.false_positives < fixed.false_positives


def test_phi_detector_still_suspects_an_actually_dead_manager():
    """Phi tolerance must not cost detection: a crashed manager's phi
    accrues past the threshold in bounded time."""
    runtime, manager, journal, __ = build_fleet(instances=1)
    events = []
    detector = HeartbeatFailureDetector(
        runtime,
        runtime.host("host03"),
        interval_s=0.5,
        timeout_s=0.4,
        suspicion_threshold=3,
        mode="phi",
    )
    loid = manager.loid
    detector.watch(
        "Sorter",
        lambda: runtime.binding_agent.current_address(loid),
        on_suspect=lambda key: events.append(runtime.sim.now),
    )
    base = runtime.sim.now
    runtime.sim.run(until=base + 5.0)  # warm the gap window
    crash_host(runtime, runtime.host("host00"))
    runtime.sim.run(until=base + 60.0)
    assert events, "phi detector never suspected a dead manager"
    # Bounded detection: ~18.4 mean gaps at the 0.5 s interval plus
    # probe overhead, nowhere near the 55 s window end.
    assert events[0] - (base + 5.0) < 30.0
    assert detector.false_positives == 0
    detector.stop()


def test_obs_report_renders_detector_false_positives():
    from repro.obs import collect_system_report, render_report

    detector, runtime = _run_detector_against_slow_manager("threshold")
    report = collect_system_report(runtime)
    assert report.faults.get("detector.false_positives", 0) >= 1
    rendered = render_report(report)
    assert "false positive(s) (suspected then recovered)" in rendered


def _run_supervisor_behind_gray_link(detector_mode):
    """A supervised healthy-but-slow primary; returns the supervisor's
    promotion count after the gray window heals."""
    from repro.net import SlowLink

    runtime, manager, journal, loids = build_fleet(
        instances=1,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=("host02", "host03"),
        detector_host_name="host04",
        heartbeat_interval_s=0.5,
        heartbeat_timeout_s=0.4,
        suspicion_threshold=3,
        detector_mode=detector_mode,
        retry_policy=FAST_RETRY,
    ).start()
    base = runtime.sim.now
    runtime.network.faults.add_delay_rule(
        SlowLink(
            ["host04/"],
            ["host00/"],
            extra_s=0.3,
            jitter_s=0.03,
            seed=2,
            start=base + 2.0,
            end=base + 25.0,
        )
    )
    runtime.sim.run(until=base + 45.0)
    runtime.sim.run()
    promotions = supervisor.promotions
    supervisor.stop()
    return promotions, runtime, manager


def test_fixed_threshold_supervisor_flaps_on_slow_manager():
    promotions, runtime, manager = _run_supervisor_behind_gray_link("threshold")
    # The gray link read as death: a needless failover fired.
    assert promotions >= 1


def test_phi_supervisor_keeps_slow_manager_in_office():
    """Tentpole acceptance: slow is not dead — a phi-supervised fleet
    rides out the gray window with zero promotions and the original
    authority still in office at its original term."""
    promotions, runtime, manager = _run_supervisor_behind_gray_link("phi")
    assert promotions == 0
    current = runtime.class_of("Sorter")
    assert current is manager
    assert current.is_active and not current.deposed
    assert current.term == 1
