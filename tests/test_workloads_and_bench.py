"""Tests for workload generators, traffic loops, and the bench harness."""

import pytest

from repro.bench.harness import ExperimentResult, format_table, micros, millis, seconds
from repro.workloads import (
    ClosedLoopClient,
    build_component_version,
    make_noop_manager,
    run_clients,
    synthetic_components,
)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def test_synthetic_components_shape():
    components = synthetic_components(3, 4, prefix="t")
    assert len(components) == 3
    assert all(len(component.functions) == 4 for component in components)
    # Names are globally unique across components.
    names = [name for component in components for name in component.functions]
    assert len(names) == len(set(names))


def test_synthetic_components_validation():
    with pytest.raises(ValueError):
        synthetic_components(0, 1)
    with pytest.raises(ValueError):
        synthetic_components(1, 0)


def test_make_noop_manager_is_ready(runtime):
    manager, components = make_noop_manager(
        runtime, "Ready", component_count=2, functions_per_component=3
    )
    assert manager.current_version is not None
    assert manager.is_instantiable(manager.current_version)
    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client()
    assert client.call_sync(loid, "ping", 42) == (42,)


def test_build_component_version_enables_everything(runtime):
    manager, __ = make_noop_manager(
        runtime, "Enabler", component_count=1, functions_per_component=2
    )
    extra = synthetic_components(1, 3, prefix="extra")
    version = build_component_version(manager, extra)
    descriptor = manager.version_record(version).descriptor
    for name in extra[0].functions:
        assert descriptor.is_enabled(name, extra[0].component_id)


def test_build_component_version_derives_from_current(runtime):
    manager, __ = make_noop_manager(
        runtime, "Deriver", component_count=1, functions_per_component=1
    )
    current = manager.current_version
    version = build_component_version(manager, synthetic_components(1, 1, prefix="d"))
    assert version.derives_from(current)


# ----------------------------------------------------------------------
# Traffic
# ----------------------------------------------------------------------


def test_closed_loop_client_collects_latencies(runtime):
    manager, __ = make_noop_manager(
        runtime, "Traffic", component_count=1, functions_per_component=1
    )
    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client("host03")
    loop = ClosedLoopClient(client, loid, "ping", calls=10)
    run_clients(runtime, [loop])
    assert loop.completed_calls == 10
    assert loop.errors == []
    assert 0 < loop.mean_latency() < 0.05


def test_closed_loop_client_think_time_spreads_calls(runtime):
    manager, __ = make_noop_manager(
        runtime, "Thinker", component_count=1, functions_per_component=1
    )
    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client("host03")
    loop = ClosedLoopClient(client, loid, "ping", calls=5, think_time_s=1.0)
    start = runtime.sim.now
    run_clients(runtime, [loop])
    assert runtime.sim.now - start >= 5.0


def test_closed_loop_client_records_errors(runtime):
    manager, __ = make_noop_manager(
        runtime, "Erroring", component_count=1, functions_per_component=1
    )
    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client("host03")
    loop = ClosedLoopClient(client, loid, "no_such_fn", calls=2)
    run_clients(runtime, [loop])
    assert loop.completed_calls == 0
    assert len(loop.errors) == 2
    assert loop.mean_latency() is None


def test_closed_loop_client_stop(runtime):
    manager, __ = make_noop_manager(
        runtime, "Stopper", component_count=1, functions_per_component=1
    )
    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client("host03")
    loop = ClosedLoopClient(client, loid, "ping", calls=None, think_time_s=0.1)
    runtime.sim.spawn(loop.run())
    runtime.sim.run(until=runtime.sim.now + 2.0)
    loop.stop()
    runtime.sim.run()
    assert loop.completed_calls > 5


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def test_experiment_result_tracks_failures():
    result = ExperimentResult(experiment_id="X", title="test")
    result.add("good", "1", "1", ok=True)
    result.add("bad", "1", "2", ok=False)
    assert not result.all_ok
    assert [row.label for row in result.failures()] == ["bad"]


def test_format_table_renders_all_rows():
    result = ExperimentResult(experiment_id="X", title="demo")
    result.add("metric-a", "10", "11", "s", ok=True)
    result.add("metric-b", "20", "99", "us", ok=False)
    text = format_table(result)
    assert "X: demo" in text
    assert "metric-a" in text
    assert "NO" in text  # the failed row is flagged


def test_formatters():
    assert seconds(1.23456) == "1.235"
    assert micros(12.5e-6) == "12.5"
    assert millis(0.00331) == "3.31"


# ----------------------------------------------------------------------
# Experiment smoke runs (fast configurations are exercised fully in
# benchmarks/; here we just pin the public contract)
# ----------------------------------------------------------------------


def test_run_e1_returns_consistent_result():
    from repro.bench.experiments import run_e1

    result = run_e1(seed=3)
    assert result.experiment_id == "E1"
    assert result.all_ok, [row.label for row in result.failures()]
    assert result.extra["leaf_cost_s"] < 20e-6


def test_run_e4_seed_changes_samples_not_shape():
    from repro.bench.experiments import run_e4

    first = run_e4(seed=1)
    second = run_e4(seed=2)
    assert first.all_ok and second.all_ok
    assert first.extra["discovery_times_s"] != second.extra["discovery_times_s"]


def test_run_e4_is_deterministic_per_seed():
    from repro.bench.experiments import run_e4

    assert run_e4(seed=5).extra == run_e4(seed=5).extra
