"""Chaos tests for transactional evolution: never half-applied.

Seeded fault schedules crash hosts and partition ICO servers while a
fleet evolves.  The acceptance invariant: at *every* observation point
— mid-chaos, after heal, after convergence — a live instance that is
not mid-transaction is either fully on the old configuration or fully
on the new one.  Prepare failures roll back; commit is all-or-nothing;
aborted waves undo their committed instances.

``CHAOS_EXTRA_SEEDS`` (env) widens the seed sweep — CI runs extra
schedules beyond the default 20.
"""

import os

import pytest

from repro.cluster import build_lan
from repro.cluster.chaos import (
    ChaosCoordinator,
    ChaosSchedule,
    drive_to_convergence,
)
from repro.core import (
    EvolutionPhase,
    ManagerJournal,
    WaveAborted,
    WavePolicy,
    recover_manager,
)
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)
ONE_SHOT = RetryPolicy(base_s=1.0, max_attempts=1)

#: The host serving the component every v1→v2 evolution must fetch.
ICO_HOST = "host05"

CHAOS_SEEDS = 20 + int(os.environ.get("CHAOS_EXTRA_SEEDS", "0"))


def build_fleet(sim_seed=7, hosts=6, instances=4, **manager_kwargs):
    """Runtime + journaled sorter manager with the evolution ICO pinned.

    The manager and the v1 components live on host00; ``compare-desc``
    — the prepare-phase fetch of every v1→v2 evolution — is served
    from :data:`ICO_HOST` so schedules can partition or crash exactly
    that dependency.  Instances land on host01..host04.
    """
    runtime = LegionRuntime(build_lan(hosts, seed=sim_seed))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        component_hosts={
            "sorter": "host00",
            "compare-asc": "host00",
            "compare-desc": ICO_HOST,
        },
        journal=journal,
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    loids = []
    for index in range(instances):
        loid, __ = create_dcdo(runtime, manager, host_name=f"host{index + 1:02d}")
        loids.append(loid)
    return runtime, manager, journal, loids


def derive_v2(manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    return version


V1_COMPONENTS = {"sorter", "compare-asc"}
V2_COMPONENTS = {"sorter", "compare-asc", "compare-desc"}


def assert_never_half_applied(manager, loids, v1, v2, context):
    """Every live, settled instance is fully on v1 or fully on v2."""
    for loid in loids:
        record = manager.record(loid)
        if not record.active:
            continue  # a crashed instance has no live state to be half
        obj = record.obj
        if obj.evolution_phase is not EvolutionPhase.IDLE:
            continue  # mid-transaction: prepare/commit/rollback settles it
        components = obj.dfm.component_ids
        compare = obj.dfm.enabled_components_of("compare")
        if obj.version == v2:
            assert components == V2_COMPONENTS, (
                f"{context}: {loid} at v2 with components {components}"
            )
            assert compare == {"compare-desc"}, (
                f"{context}: {loid} at v2 comparing with {compare}"
            )
        else:
            assert obj.version == v1, (
                f"{context}: {loid} at unexpected version {obj.version}"
            )
            assert components == V1_COMPONENTS, (
                f"{context}: {loid} at v1 with components {components} "
                f"(half-applied evolution)"
            )
            assert compare == {"compare-asc"}, (
                f"{context}: {loid} at v1 comparing with {compare}"
            )
        assert sorted(obj.dfm.exported_interface()) == ["compare", "sort"], (
            f"{context}: {loid} exports {obj.dfm.exported_interface()}"
        )


@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_never_half_applied(seed):
    """Crash hosts mid-apply and partition the ICO server mid-prepare,
    across many seeded schedules: zero half-applied instances, ever."""
    runtime, manager, journal, loids = build_fleet(
        sim_seed=700 + seed,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    v1 = manager.current_version
    coordinator = ChaosCoordinator(runtime, journals={"Sorter": journal})
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        ico_hosts=(ICO_HOST,),
        max_ico_partitions=2,
        mid_apply_crashes=1,
    )
    schedule.install(runtime, coordinator)
    v2 = derive_v2(manager)

    def scenario():
        yield runtime.sim.timeout(0.5)
        manager.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        # Mid-run observation: faults just healed, deliveries may still
        # be retrying — but nothing may be half-applied.
        assert_never_half_applied(
            runtime.class_of("Sorter"), loids, v1, v2, f"seed {seed} at heal"
        )
        tracker = yield from drive_to_convergence(
            runtime, "Sorter", journal=journal, retry_policy=FAST_RETRY
        )
        return tracker

    tracker = runtime.sim.run_process(scenario())
    runtime.sim.run()

    assert tracker is not None and tracker.all_acked, (
        f"seed {seed}: propagation did not converge: {tracker.summary()}"
    )
    manager_now = runtime.class_of("Sorter")
    assert_never_half_applied(
        manager_now, loids, v1, v2, f"seed {seed} converged"
    )
    for loid in loids:
        assert manager_now.instance_version(loid) == v2
        obj = manager_now.record(loid).obj
        assert obj.version == v2, f"seed {seed}: {loid} stuck at {obj.version}"
        assert obj.applications_by_version.get(v2, 0) <= 1


@pytest.mark.parametrize("seed", range(6))
def test_chaos_abortive_wave_keeps_fleet_consistent(seed):
    """An abort-on-first-failure wave under chaos: whether it aborts or
    completes, no instance is ever half-applied, rolled-back instances
    land fully on v1, and the fleet still converges afterwards."""
    runtime, manager, journal, loids = build_fleet(sim_seed=900 + seed)
    v1 = manager.current_version
    coordinator = ChaosCoordinator(runtime, journals={"Sorter": journal})
    # The manager and ICO host are protected: this test aims chaos at
    # the *instances* so wave rollback, not manager recovery, is on
    # trial (the recovery interplay has its own dedicated test).
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        protect=("host00", ICO_HOST),
        ico_hosts=(ICO_HOST,),
        max_ico_partitions=1,
        mid_apply_crashes=2,
    )
    schedule.install(runtime, coordinator)
    v2 = derive_v2(manager)
    manager.set_current_version(v2)  # explicit policy: no auto-propagation

    def scenario():
        yield runtime.sim.timeout(0.5)
        aborted = False
        try:
            yield from manager.propagate_version(
                v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(0)
            )
        except WaveAborted:
            aborted = True
        tracker = manager.propagation(v2)
        assert_never_half_applied(
            manager, loids, v1, v2, f"seed {seed} post-wave"
        )
        if tracker.aborting:
            # The abort decision is durable before any rollback runs.
            kinds = [entry.kind for entry in journal.replay()]
            assert "wave-aborting" in kinds
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        # Convergence: finish any interrupted abort, rebuild crash-lost
        # instances, then re-drive the wave under an explicit converge
        # override of the tracker's abortive policy.
        final = None
        for __ in range(8):
            current = runtime.class_of("Sorter")
            if not current.is_active:
                current = yield from recover_manager(runtime, journal)
            yield from ChaosCoordinator(
                runtime, auto_recover=False
            ).recover_instances()
            final = yield from current.propagate_version(
                v2, retry_policy=FAST_RETRY, wave_policy=WavePolicy.converge()
            )
            if final.all_acked:
                break
        return aborted, tracker, final

    aborted, tracker, final = runtime.sim.run_process(scenario())
    runtime.sim.run()

    if aborted:
        # The raise only happens once every committed instance was
        # rolled back and the terminal state journaled.
        kinds = [entry.kind for entry in journal.replay()]
        assert "wave-aborted" in kinds
        assert runtime.network.count_value("wave.aborts") >= 1
    assert final is not None and final.all_acked, (
        f"seed {seed}: fleet did not converge after the wave: "
        f"{final and final.summary()}"
    )
    manager_now = runtime.class_of("Sorter")
    assert_never_half_applied(
        manager_now, loids, v1, v2, f"seed {seed} converged"
    )
    for loid in loids:
        assert manager_now.instance_version(loid) == v2
        obj = manager_now.record(loid).obj
        assert obj.version == v2
        # Applied at most twice: once before a rollback, once after.
        assert obj.applications_by_version.get(v2, 0) <= 2


def test_new_fault_kinds_extend_legacy_schedule_deterministically():
    """The transactional fault kinds draw strictly after the legacy
    ones: a given seed yields the identical legacy schedule with the
    new kinds off or on — existing seeded tests stay reproducible."""
    names = [f"host{i:02d}" for i in range(6)]
    legacy = ChaosSchedule.generate(5, names)
    extended = ChaosSchedule.generate(
        5,
        names,
        ico_hosts=(ICO_HOST,),
        max_ico_partitions=2,
        mid_apply_crashes=1,
    )
    assert extended.crashes[: len(legacy.crashes)] == legacy.crashes
    assert extended.partitions[: len(legacy.partitions)] == legacy.partitions
    assert extended.drops == legacy.drops
    # The new kinds actually produced faults, and reproducibly so.
    assert len(extended.partitions) > len(legacy.partitions)
    assert len(extended.crashes) == len(legacy.crashes) + 1
    again = ChaosSchedule.generate(
        5,
        names,
        ico_hosts=(ICO_HOST,),
        max_ico_partitions=2,
        mid_apply_crashes=1,
    )
    assert (again.crashes, again.partitions, again.drops) == (
        extended.crashes,
        extended.partitions,
        extended.drops,
    )
    # ICO partitions isolate the component servers from everyone else.
    ico_side = [f"{ICO_HOST}/"]
    new_partitions = extended.partitions[len(legacy.partitions) :]
    assert all(part[0] == ico_side for part in new_partitions)
