"""Integration tests for the DCDO Manager: DFM store, DCDO table,
creation, and evolution mechanics."""

import pytest

from repro.core import (
    ComponentBuilder,
    UnknownVersion,
    VersionId,
    VersionNotConfigurable,
    VersionNotInstantiable,
)
from repro.core.policies import GeneralEvolutionPolicy
from tests.conftest import create_dcdo, make_sorter_manager


# ----------------------------------------------------------------------
# DFM store: versions, derivation, instantiability (§2.4)
# ----------------------------------------------------------------------


def test_new_version_is_configurable(runtime):
    manager = make_sorter_manager(runtime)
    version = manager.new_version()
    assert not manager.is_instantiable(version)
    manager.descriptor_of(version)  # configurable: no error


def test_derive_version_copies_parent_descriptor(runtime):
    manager = make_sorter_manager(runtime)
    child = manager.derive_version(manager.current_version)
    descriptor = manager.descriptor_of(child)
    assert descriptor.component_ids == {"sorter", "compare-asc"}
    assert descriptor.is_enabled("sort", "sorter")


def test_instantiable_version_cannot_be_configured(runtime):
    """§2.4: "the DFM descriptor of an instantiable version cannot be
    changed any further"."""
    manager = make_sorter_manager(runtime)
    with pytest.raises(VersionNotConfigurable):
        manager.descriptor_of(manager.current_version)


def test_configurable_version_cannot_instantiate(runtime):
    """§2.4: a configurable version "cannot be used to create a new
    DCDO, or to evolve an existing DCDO"."""
    manager = make_sorter_manager(runtime)
    loid, __ = create_dcdo(runtime, manager)
    version = manager.derive_version(manager.current_version)
    with pytest.raises(VersionNotInstantiable):
        runtime.sim.run_process(manager.evolve_instance(loid, version))


def test_current_version_must_be_instantiable(runtime):
    manager = make_sorter_manager(runtime)
    version = manager.derive_version(manager.current_version)
    with pytest.raises(VersionNotInstantiable):
        manager.set_current_version(version)


def test_mark_instantiable_validates(runtime):
    from repro.core import MandatoryViolation

    manager = make_sorter_manager(runtime)
    broken = (
        ComponentBuilder("broken")
        .function("lonely", lambda ctx: None)
        .require_mandatory("lonely")
        .build()
    )
    manager.register_component(broken)
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "broken")
    with pytest.raises(MandatoryViolation):
        manager.mark_instantiable(version)
    manager.descriptor_of(version).enable("lonely", "broken")
    manager.mark_instantiable(version)


def test_unknown_version_raises(runtime):
    manager = make_sorter_manager(runtime)
    with pytest.raises(UnknownVersion):
        manager.version_record(VersionId.parse("9.9"))


def test_versions_listing_sorted(runtime):
    manager = make_sorter_manager(runtime)
    child_a = manager.derive_version(manager.current_version)
    child_b = manager.derive_version(manager.current_version)
    assert manager.versions() == [manager.current_version, child_a, child_b]


def test_creation_without_current_version_fails(runtime):
    from repro.core import define_dcdo_type

    manager = define_dcdo_type(runtime, "Empty")
    with pytest.raises(VersionNotInstantiable):
        runtime.sim.run_process(manager.create_instance())


# ----------------------------------------------------------------------
# Component registration (ICOs, §2.3)
# ----------------------------------------------------------------------


def test_registered_components_have_icos_in_namespace(runtime):
    manager = make_sorter_manager(runtime)
    assert manager.registered_components() == ["compare-asc", "compare-desc", "sorter"]
    loid = runtime.context_space.lookup("/components/Sorter/sorter")
    assert loid == manager.component_ico("sorter")


def test_duplicate_component_registration_rejected(runtime):
    manager = make_sorter_manager(runtime)
    duplicate = ComponentBuilder("sorter").function("x", lambda ctx: None).build()
    with pytest.raises(ValueError, match="already registered"):
        manager.register_component(duplicate)


def test_ico_serves_descriptor_remotely(runtime):
    manager = make_sorter_manager(runtime)
    client = runtime.make_client()
    descriptor = client.call_sync(manager.component_ico("sorter"), "getDescriptor")
    assert descriptor["component_id"] == "sorter"
    assert descriptor["functions"]["sort"]["exported"] is True


# ----------------------------------------------------------------------
# The DCDO table (§2.4)
# ----------------------------------------------------------------------


def test_dcdo_table_tracks_version_and_impl_type(runtime):
    manager = make_sorter_manager(runtime)
    loid, __ = create_dcdo(runtime, manager)
    rows = manager.dcdo_table()
    assert len(rows) == 1
    row_loid, version, impl_type, active = rows[0]
    assert row_loid == loid
    assert version == manager.current_version
    assert impl_type.architecture == "x86-linux"
    assert active


def test_dcdo_table_remotely_queryable(runtime):
    manager = make_sorter_manager(runtime)
    create_dcdo(runtime, manager)
    client = runtime.make_client()
    table = client.call_sync(manager.loid, "getDCDOTable")
    assert len(table) == 1
    assert table[0][1] == "1"


# ----------------------------------------------------------------------
# Evolution mechanics
# ----------------------------------------------------------------------


def prepare_descending_version(manager):
    """Derive a version that swaps compare-asc for compare-desc."""
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("compare", "compare-desc", replace_current=True)
    descriptor.remove_component("compare-asc")
    manager.mark_instantiable(version)
    return version


def test_evolve_instance_to_new_version(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client()
    assert client.call_sync(loid, "sort", [2, 3, 1]) == [1, 2, 3]
    version = prepare_descending_version(manager)
    reached = runtime.sim.run_process(manager.evolve_instance(loid, version))
    assert reached == version
    assert client.call_sync(loid, "sort", [2, 3, 1]) == [3, 2, 1]
    assert client.call_sync(loid, "getVersion") == str(version)
    assert client.call_sync(loid, "getComponents") == ["compare-desc", "sorter"]
    assert manager.instance_version(loid) == version


def test_evolution_without_new_components_is_subsecond(runtime):
    """§4: "the cost of evolving a DCDO from one implementation to
    another is less than half a second, except for the case when new
    components need to be incorporated"."""
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    # New version only flips exported/enabled bits: no new components.
    version = manager.derive_version(manager.current_version)
    manager.descriptor_of(version).set_exported("compare", "compare-asc", False)
    manager.mark_instantiable(version)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    assert runtime.sim.now - start < 0.5


def test_evolution_with_cached_component_is_microseconds_per_component(runtime):
    """§4: "approximately 200 microseconds per component" when cached."""
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, obj = create_dcdo(runtime, manager)
    # Seed the host cache with the new component's blob.
    component, __ = manager._components_entry("compare-desc")
    variant = component.variant_for_host(obj.host)
    obj.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = prepare_descending_version(manager)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    elapsed = runtime.sim.now - start
    assert elapsed < 0.5  # one management RPC + ~200 us link


def test_evolution_with_uncached_component_pays_download(runtime):
    """§4: uncached evolution "is dominated by the time needed to
    download the component data" — bigger components take longer."""
    from repro.core import ComponentBuilder

    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    elapsed = {}
    for size in (100_000, 5_000_000):
        big = (
            ComponentBuilder(f"big-{size}")
            .function(f"fn_{size}", lambda ctx: None)
            .variant(size_bytes=size)
            .build()
        )
        manager.register_component(big)
        version = manager.derive_version(manager.instance_version(loid))
        manager.incorporate_into(version, f"big-{size}")
        manager.descriptor_of(version).enable(f"fn_{size}", f"big-{size}")
        manager.mark_instantiable(version)
        start = runtime.sim.now
        runtime.sim.run_process(manager.evolve_instance(loid, version))
        elapsed[size] = runtime.sim.now - start
    assert elapsed[5_000_000] > elapsed[100_000] > 0.1
    assert elapsed[5_000_000] > 2.0  # 5 MB at ~2 MB/s effective


def test_evolve_noop_when_already_at_target(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    before = obj.evolutions_applied
    runtime.sim.run_process(manager.evolve_instance(loid, manager.current_version))
    assert obj.evolutions_applied == before


def test_evolution_survives_state(runtime):
    """Evolving changes the implementation, not the object's state."""
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, obj = create_dcdo(runtime, manager)
    obj.state["memory"] = 123
    version = prepare_descending_version(manager)
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    assert obj.state["memory"] == 123
    assert obj is manager.record(loid).obj  # same live object, no restart


def test_update_all_instances(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loids = [create_dcdo(runtime, manager)[0] for __ in range(3)]
    version = prepare_descending_version(manager)
    manager.set_current_version(version)
    results = runtime.sim.run_process(manager.update_all_instances())
    assert all(results[loid] == version for loid in loids)
    assert all(manager.instance_version(loid) == version for loid in loids)


def test_remote_update_instance_call(runtime):
    """§3.4 explicit update: an external object drives the evolution."""
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    version = prepare_descending_version(manager)
    manager.set_current_version(version)
    client = runtime.make_client()
    reached = client.call_sync(
        manager.loid, "updateInstance", loid, timeout_schedule=(600.0,)
    )
    assert reached == version


def test_dcdo_migration_rebuilds_from_version(runtime):
    """Migration re-creates the DCDO's implementation on the target
    host from its version's descriptor, preserving state."""
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    obj.state["sticky"] = "yes"
    source = manager.record(loid).host.name
    target = next(name for name in runtime.hosts if name != source)
    runtime.sim.run_process(manager.migrate_instance(loid, target))
    record = manager.record(loid)
    assert record.host.name == target
    assert record.obj.state["sticky"] == "yes"
    client = runtime.make_client()
    assert client.call_sync(loid, "sort", [2, 1]) == [1, 2]
    assert manager.instance_version(loid) == manager.current_version
