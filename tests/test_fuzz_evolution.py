"""Randomized end-to-end fuzzing of the evolution machinery.

A seeded fuzzer drives a live runtime through random version
derivations, configurations, cuts, instance creations, evolutions,
migrations, and client calls.  After every step the live DCDOs'
DFMs must be internally consistent and callable functions must match
their version descriptors.

This complements the hypothesis property tests (which cover the pure
descriptor algebra) by exercising the full networked path.
"""

import random

import pytest

from repro.core import DCDOError, UnknownVersion
from repro.core.policies import GeneralEvolutionPolicy
from repro.core.validation import check_state_consistent
from repro.legion.errors import LegionError, MethodNotFound
from repro.workloads import synthetic_components
from tests.conftest import make_sorter_manager

STEPS = 60


class EvolutionFuzzer:
    """One fuzzing session against one runtime."""

    def __init__(self, runtime, seed):
        self.runtime = runtime
        self.rng = random.Random(seed)
        self.manager = make_sorter_manager(
            runtime, evolution_policy=GeneralEvolutionPolicy()
        )
        self.client = runtime.make_client("host03")
        self.loids = []
        self.component_counter = 0
        self.actions = [
            self.act_create_instance,
            self.act_derive_and_cut,
            self.act_evolve_random_instance,
            self.act_call_random_instance,
            self.act_migrate_random_instance,
            self.act_register_component,
        ]

    # ------------------------------------------------------------------
    # Actions (all tolerate model-level rejections)
    # ------------------------------------------------------------------

    def act_create_instance(self):
        if len(self.loids) >= 4:
            return
        loid = self.runtime.sim.run_process(self.manager.create_instance())
        self.loids.append(loid)

    def act_register_component(self):
        self.component_counter += 1
        component = synthetic_components(
            1, self.rng.randint(1, 3), prefix=f"fz{self.component_counter}-"
        )[0]
        self.manager.register_component(component)

    def act_derive_and_cut(self):
        versions = [v for v in self.manager.versions() if self.manager.is_instantiable(v)]
        if not versions:
            return
        parent = self.rng.choice(versions)
        version = self.manager.derive_version(parent)
        descriptor = self.manager.descriptor_of(version)
        # Random configuration edits, each allowed to be rejected.
        for __ in range(self.rng.randint(1, 4)):
            self._random_edit(descriptor)
        try:
            self.manager.mark_instantiable(version)
        except DCDOError:
            return
        if self.rng.random() < 0.7:
            self.manager.set_current_version(version)

    def _random_edit(self, descriptor):
        choice = self.rng.random()
        try:
            if choice < 0.4:
                registered = self.manager.registered_components()
                component_id = self.rng.choice(registered)
                if component_id in descriptor.component_ids:
                    descriptor.remove_component(component_id)
                else:
                    self.manager.incorporate_into(
                        descriptor_version(self.manager, descriptor), component_id
                    )
            elif choice < 0.8:
                entries = [
                    (entry.function, entry.component_id)
                    for component_id in descriptor.component_ids
                    for entry in descriptor.entries_in(component_id)
                ]
                if not entries:
                    return
                function, component_id = self.rng.choice(entries)
                if descriptor.is_enabled(function, component_id):
                    descriptor.disable(function, component_id)
                else:
                    descriptor.enable(function, component_id, replace_current=True)
            else:
                functions = descriptor.function_names()
                if functions:
                    descriptor.mark_mandatory(self.rng.choice(functions))
        except DCDOError:
            pass

    def act_evolve_random_instance(self):
        if not self.loids:
            return
        loid = self.rng.choice(self.loids)
        targets = [v for v in self.manager.versions() if self.manager.is_instantiable(v)]
        if not targets:
            return
        target = self.rng.choice(targets)
        try:
            self.runtime.sim.run_process(self.manager.evolve_instance(loid, target))
        except (DCDOError, LegionError):
            pass

    def act_call_random_instance(self):
        if not self.loids:
            return
        loid = self.rng.choice(self.loids)
        obj = self.manager.record(loid).obj
        interface = obj.dfm.exported_interface()
        name = self.rng.choice(interface) if interface and self.rng.random() < 0.8 else "ghost_fn"
        args = ([3, 1, 2],) if name == "sort" else (1, 2) if name == "compare" else ()
        try:
            self.client.call_sync(loid, name, *args, timeout_schedule=(600.0,))
        except (MethodNotFound, DCDOError, LegionError):
            pass

    def act_migrate_random_instance(self):
        if not self.loids:
            return
        loid = self.rng.choice(self.loids)
        record = self.manager.record(loid)
        others = [name for name in self.runtime.hosts if name != record.host.name]
        try:
            self.runtime.sim.run_process(
                self.manager.migrate_instance(loid, self.rng.choice(others))
            )
        except (DCDOError, LegionError):
            pass

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self):
        for loid in self.loids:
            record = self.manager.record(loid)
            if not record.active:
                continue
            obj = record.obj
            check_state_consistent(obj.dfm)
            version = self.manager.instance_version(loid)
            assert version is not None
            assert self.manager.is_instantiable(version)
            # The live DFM's enabled/exported map matches the version
            # descriptor the manager believes the instance reflects.
            descriptor = self.manager.version_record(version).descriptor
            assert obj.dfm.component_ids == descriptor.component_ids, loid
            for component_id in descriptor.component_ids:
                for entry in descriptor.entries_in(component_id):
                    live = obj.dfm.entry(entry.function, entry.component_id)
                    assert live is not None
                    assert live.enabled == entry.enabled, (loid, entry)
                    assert live.exported == entry.exported, (loid, entry)
            # No leaked thread counts once the system is quiescent.
            for component_id in obj.dfm.component_ids:
                assert obj.dfm.active_threads_in(component_id) == 0

    def run(self, steps):
        for __ in range(steps):
            action = self.rng.choice(self.actions)
            action()
            self.runtime.sim.run()  # quiesce
            self.check_invariants()


def descriptor_version(manager, descriptor):
    """Find the version whose record holds this descriptor object."""
    for version in manager.versions():
        if manager.version_record(version).descriptor is descriptor:
            return version
    raise UnknownVersion("descriptor not in the DFM store")


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
def test_randomized_evolution_history_keeps_invariants(runtime, seed):
    fuzzer = EvolutionFuzzer(runtime, seed)
    fuzzer.run(STEPS)
    # The session must have actually exercised the machinery.
    assert fuzzer.manager.instances_created >= 1
    assert len(fuzzer.manager.versions()) >= 2
