"""Small-unit tests: markings, impl types, function defs, policy bases."""

import pytest

from repro.core import (
    ComponentBuilder,
    ComponentVariant,
    FunctionDef,
    ImplementationType,
    Marking,
    NATIVE,
    content_digest,
)
from repro.core.policies.base import EvolutionPolicy, UpdatePolicy


# ----------------------------------------------------------------------
# Marking
# ----------------------------------------------------------------------


def test_marking_strength_ordering():
    assert Marking.PERMANENT.at_least(Marking.MANDATORY)
    assert Marking.PERMANENT.at_least(Marking.FULLY_DYNAMIC)
    assert Marking.MANDATORY.at_least(Marking.FULLY_DYNAMIC)
    assert not Marking.FULLY_DYNAMIC.at_least(Marking.MANDATORY)
    assert not Marking.MANDATORY.at_least(Marking.PERMANENT)


def test_marking_reflexive():
    for marking in Marking:
        assert marking.at_least(marking)


# ----------------------------------------------------------------------
# ImplementationType
# ----------------------------------------------------------------------


def test_impl_type_equality_and_hash():
    a = ImplementationType(architecture="x86-linux")
    b = ImplementationType(architecture="x86-linux")
    assert a == b
    assert len({a, b}) == 1
    assert a == NATIVE


def test_impl_type_str():
    impl_type = ImplementationType("sparc-solaris", "elf32", "c++")
    assert str(impl_type) == "sparc-solaris/elf32/c++"


def test_impl_type_host_compatibility(runtime):
    host = runtime.host("host00")  # x86-linux
    assert NATIVE.compatible_with_host(host)
    assert not ImplementationType("vax-vms").compatible_with_host(host)


# ----------------------------------------------------------------------
# FunctionDef / ComponentVariant / ComponentBuilder
# ----------------------------------------------------------------------


def test_function_def_requires_callable():
    with pytest.raises(TypeError):
        FunctionDef(name="f", body="not callable")


def test_function_def_visibility():
    exported = FunctionDef(name="f", body=lambda ctx: None)
    internal = FunctionDef(name="g", body=lambda ctx: None, exported=False)
    assert exported.visibility == "exported"
    assert internal.visibility == "internal"


def test_component_variant_rejects_negative_size():
    with pytest.raises(ValueError):
        ComponentVariant(impl_type=NATIVE, size_bytes=-1, blob_id="x")


def test_builder_default_variant_created():
    component = ComponentBuilder("c").function("f", lambda ctx: None).build()
    assert NATIVE in component.variants
    # Content-addressed: same build -> same digest, everywhere.
    assert component.variants[NATIVE].blob_id == content_digest(
        "c", NATIVE, 64_000
    )
    assert component.variants[NATIVE].blob_id.startswith("sha256:")


def test_builder_revision_changes_blob_id():
    v1 = ComponentBuilder("c").function("f", lambda ctx: None).build()
    v2 = (
        ComponentBuilder("c")
        .revision(1)
        .function("f", lambda ctx: None)
        .build()
    )
    same = ComponentBuilder("c").function("f", lambda ctx: None).build()
    assert v1.variants[NATIVE].blob_id == same.variants[NATIVE].blob_id
    assert v1.variants[NATIVE].blob_id != v2.variants[NATIVE].blob_id


def test_builder_exported_and_internal_names():
    component = (
        ComponentBuilder("c")
        .function("pub", lambda ctx: None)
        .internal_function("priv", lambda ctx: None)
        .build()
    )
    assert component.exported_names() == ["pub"]
    assert component.function_names() == ["priv", "pub"]


def test_builder_marking_demands():
    component = (
        ComponentBuilder("c")
        .function("f", lambda ctx: None)
        .require_mandatory("f")
        .build()
    )
    assert component.marking_demand("f") is Marking.MANDATORY
    assert component.marking_demand("other") is Marking.FULLY_DYNAMIC


# ----------------------------------------------------------------------
# Policy base classes
# ----------------------------------------------------------------------


def test_update_policy_base_is_inert(runtime):
    from tests.conftest import make_sorter_manager

    manager = make_sorter_manager(runtime, update_policy=UpdatePolicy())
    assert manager.update_policy.on_new_current_version(manager) is None
    assert manager.update_policy.on_instance_migrated(manager, None) is None
    assert manager.update_policy.make_instance_checker(manager, None) is None


def test_evolution_policy_base_default_target(runtime):
    from tests.conftest import make_sorter_manager

    manager = make_sorter_manager(runtime)
    policy = EvolutionPolicy()
    assert policy.default_target(manager, None) == manager.current_version
    with pytest.raises(NotImplementedError):
        policy.check_transition(manager, None, None)


def test_policy_reprs_name_the_class():
    assert "EvolutionPolicy" in repr(EvolutionPolicy())
    assert "UpdatePolicy" in repr(UpdatePolicy())


# ----------------------------------------------------------------------
# set_current_version_async
# ----------------------------------------------------------------------


def test_set_current_version_async_returns_propagation(runtime):
    from repro.core.policies import ProactiveUpdatePolicy, SingleVersionPolicy
    from tests.conftest import create_dcdo, make_sorter_manager
    from tests.test_core_policies import swap_to_descending

    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=ProactiveUpdatePolicy(),
    )
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    process = manager.set_current_version_async(version)
    assert process is not None
    assert manager.instance_version(loid) != version  # not yet applied
    runtime.sim.run(until=process)
    assert manager.instance_version(loid) == version


def test_set_current_version_async_explicit_returns_none(runtime):
    from tests.conftest import make_sorter_manager
    from tests.test_core_policies import swap_to_descending

    manager = make_sorter_manager(runtime, type_name="AsyncNone")
    version = swap_to_descending(manager)
    assert manager.set_current_version_async(version) is None
    assert manager.current_version == version
