"""Detail-level tests for the network layer: accounting, dedup, timing."""

import pytest

from repro.net import Endpoint, Message, Network
from repro.net.message import HEADER_BYTES, next_message_id
from repro.sim import Simulator


def make_net(**kwargs):
    sim = Simulator()
    return sim, Network(sim, **kwargs)


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------


def test_message_ids_are_unique_and_increasing():
    first = next_message_id()
    second = next_message_id()
    assert second > first


def test_wire_bytes_include_header():
    message = Message(source="a", destination="b", payload=None, size_bytes=100)
    assert message.wire_bytes == 100 + HEADER_BYTES


def test_port_counters_track_traffic():
    sim, net = make_net()
    port_a = net.attach("a")
    port_b = net.attach("b")
    net.send(Message(source="a", destination="b", payload=None, size_bytes=1000))
    sim.run()
    assert port_a.messages_sent == 1
    assert port_a.bytes_sent == 1000 + HEADER_BYTES
    assert port_b.messages_received == 1
    assert port_b.bytes_received == 1000 + HEADER_BYTES


def test_network_bytes_delivered_accumulates():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    for __ in range(3):
        net.send(Message(source="a", destination="b", payload=None, size_bytes=100))
    sim.run()
    assert net.stats.bytes_delivered == 3 * (100 + HEADER_BYTES)


def test_transfer_time_formula():
    __, net = make_net(latency_s=0.001, bandwidth_bps=1_000_000)
    assert net.transfer_time(1_000_000) == pytest.approx(1.001)
    assert net.transfer_time(0) == pytest.approx(0.001)


def test_port_transmission_time():
    sim, net = make_net(bandwidth_bps=2_000_000)
    port = net.attach("a")
    assert port.transmission_time(2_000_000) == pytest.approx(1.0)


def test_invalid_network_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, latency_s=-1)
    net = Network(sim)
    with pytest.raises(ValueError):
        net.attach("x", bandwidth_bps=0)


# ----------------------------------------------------------------------
# Endpoint behaviour
# ----------------------------------------------------------------------


def test_duplicate_request_message_served_once():
    """At-most-once per message id: a duplicated request (same id) is
    not re-executed."""
    sim, net = make_net()
    served = []

    def handler(message):
        served.append(message.message_id)
        return ("ok", 0)
        yield  # pragma: no cover

    client_port = net.attach("client")
    Endpoint(net, "server", request_handler=handler)
    request = Message(
        source="client", destination="server", payload={"x": 1}, kind="request"
    )
    duplicate = Message(
        source="client",
        destination="server",
        payload={"x": 1},
        kind="request",
    )
    object.__setattr__(duplicate, "message_id", request.message_id) if False else None
    # Simulate a duplicate by re-sending an identical message object's
    # content with the same id:
    duplicate.message_id = request.message_id
    net.send(request)
    net.send(duplicate)
    sim.run()
    assert served == [request.message_id]


def test_endpoint_close_is_idempotent():
    __, net = make_net()
    endpoint = Endpoint(net, "solo")
    endpoint.close()
    endpoint.close()
    assert endpoint.is_closed


def test_closed_endpoint_fails_pending_requests():
    sim, net = make_net()
    client = Endpoint(net, "client")
    outcome = {}

    def caller():
        try:
            yield from client.request("nowhere", None, timeout_s=100.0)
        except Exception as error:  # noqa: BLE001
            outcome["error"] = error

    sim.spawn(caller())
    sim.run(until=1.0)
    client.close()
    sim.run()
    assert "error" in outcome


def test_reply_to_abandoned_request_is_dropped():
    """A reply arriving after its request timed out is ignored (no
    crash, no spurious delivery)."""
    sim, net = make_net()

    def slow_handler(message):
        yield sim.timeout(3.0)
        return ("late", 0)

    client = Endpoint(net, "client")
    Endpoint(net, "server", request_handler=slow_handler)
    outcome = {}

    def caller():
        from repro.net import RequestTimeout

        try:
            yield from client.request("server", None, timeout_s=1.0)
        except RequestTimeout as error:
            outcome["timeout"] = error

    sim.spawn(caller())
    sim.run()
    assert "timeout" in outcome  # and the late reply was swallowed


def test_request_handler_replacement_takes_effect():
    sim, net = make_net()

    def v1(message):
        return ("v1", 0)
        yield  # pragma: no cover

    def v2(message):
        return ("v2", 0)
        yield  # pragma: no cover

    client = Endpoint(net, "client")
    server = Endpoint(net, "server", request_handler=v1)

    def scenario():
        first = yield from client.request("server", None)
        server.set_request_handler(v2)
        second = yield from client.request("server", None)
        return (first, second)

    assert sim.run_process(scenario()) == ("v1", "v2")
