"""Unit coverage for the partition-map substrate (PR 9).

The map algebra (tiling validation, split/merge/move derivations), the
replicated object's two apply modes, and the router's bounce-driven
cache refresh.  Plane-level integration lives in
``tests/test_shard_plane.py``; chaos coverage in
``tests/test_chaos_shards.py``.
"""

import pytest

from repro.core.partition import (
    FAST_CONVERGE_S,
    HASH_SPACE,
    PartitionMap,
    PartitionRouter,
    ReplicatedPartitionMap,
    ShardRange,
    StalePartitionMap,
    partition_slot,
)


# ----------------------------------------------------------------------
# Slot hashing
# ----------------------------------------------------------------------


def test_partition_slot_is_deterministic_and_bounded():
    slots = [partition_slot(f"loid-{i}") for i in range(200)]
    assert all(0 <= s < HASH_SPACE for s in slots)
    assert slots == [partition_slot(f"loid-{i}") for i in range(200)]
    # Spread: 200 keys over 2 even shards should not all land on one.
    two = PartitionMap.even(2)
    owners = {two.shard_for_slot(s) for s in slots}
    assert owners == {0, 1}


# ----------------------------------------------------------------------
# Map algebra
# ----------------------------------------------------------------------


def test_even_map_tiles_the_space():
    for count in (1, 2, 3, 5, 8):
        m = PartitionMap.even(count)
        assert m.epoch == 1
        assert m.shard_ids == tuple(range(count))
        assert sum(r.width for r in m.ranges) == HASH_SPACE
        assert m.shard_for_slot(0) == 0
        assert m.shard_for_slot(HASH_SPACE - 1) == count - 1


def test_map_rejects_gaps_overlaps_and_short_coverage():
    with pytest.raises(ValueError):
        PartitionMap([ShardRange(0, 100, 0), ShardRange(200, HASH_SPACE, 1)])
    with pytest.raises(ValueError):
        PartitionMap([ShardRange(0, 300, 0), ShardRange(200, HASH_SPACE, 1)])
    with pytest.raises(ValueError):
        PartitionMap([ShardRange(0, 100, 0)])
    with pytest.raises(ValueError):
        ShardRange(100, 100, 0)


def test_split_halves_widest_range_and_bumps_epoch():
    m = PartitionMap.even(2)
    m2 = m.split(0, 2)
    assert m2.epoch == m.epoch + 1
    assert m.epoch == 1  # immutable: the original is untouched
    half = HASH_SPACE // 4
    assert m2.spans_of(0) == ((0, half),)
    assert m2.spans_of(2) == ((half, HASH_SPACE // 2),)
    assert m2.spans_of(1) == m.spans_of(1)
    with pytest.raises(ValueError):
        m.split(0, 1)  # new id already owns ranges
    with pytest.raises(ValueError):
        m.split(7, 9)  # nothing to split


def test_merge_reassigns_and_coalesces():
    m = PartitionMap.even(3)
    merged = m.merge(1, 0)
    assert merged.epoch == 2
    assert 1 not in merged.shard_ids
    # Shard 0's two spans are adjacent, so they coalesce into one.
    assert merged.spans_of(0) == ((0, m.spans_of(2)[0][0]),)
    with pytest.raises(ValueError):
        m.merge(1, 1)
    with pytest.raises(ValueError):
        m.merge(9, 0)


def test_move_carves_covering_ranges():
    m = PartitionMap.even(2)
    span = (1000, 2000)
    moved = m.move(span, 1)
    assert moved.epoch == 2
    assert moved.shard_for_slot(1500) == 1
    assert moved.shard_for_slot(999) == 0
    assert moved.shard_for_slot(2000) == 0
    assert sum(r.width for r in moved.ranges) == HASH_SPACE
    with pytest.raises(ValueError):
        m.move((5, 5), 1)


# ----------------------------------------------------------------------
# Replicated apply modes
# ----------------------------------------------------------------------


def make_replicated(runtime, replica_hosts=("host01", "host02")):
    return ReplicatedPartitionMap(
        runtime, "T.pmap", PartitionMap.even(2), replica_hosts=replica_hosts
    )


def test_consistent_apply_lands_everywhere_before_returning(runtime):
    replicated = make_replicated(runtime)
    seen = []
    replicated.subscribe(lambda m: seen.append(m.epoch))
    new_map = replicated.current.split(0, 2)
    runtime.sim.run_process(replicated.apply(new_map, mode="consistent"))
    assert replicated.epoch == 2
    assert replicated.view("host01").epoch == 2
    assert replicated.view("host02").epoch == 2
    assert seen == [2]


def test_fast_apply_leaves_replicas_stale_until_convergence(runtime):
    replicated = make_replicated(runtime)
    new_map = replicated.current.split(0, 2)
    runtime.sim.run_process(replicated.apply(new_map, mode="fast"))
    # Primary (and listeners) moved; replica views lag.
    assert replicated.epoch == 2
    assert replicated.view("host01").epoch == 1
    runtime.sim.run()
    assert replicated.view("host01").epoch == 2
    assert replicated.fast_applies == 1


def test_staleness_window_delays_fast_convergence(runtime):
    replicated = make_replicated(runtime)
    replicated.add_staleness_window(3.0, 0.0, 10.0)
    new_map = replicated.current.split(0, 2)
    started = runtime.sim.now

    def scenario():
        yield from replicated.apply(new_map, mode="fast")
        # Normal convergence delay passes; the window holds it stale.
        yield runtime.sim.timeout(FAST_CONVERGE_S * 2)
        assert replicated.view("host01").epoch == 1

    runtime.sim.run_process(scenario())
    runtime.sim.run()
    assert replicated.view("host01").epoch == 2
    assert runtime.sim.now >= started + 3.0


def test_apply_requires_epoch_advance(runtime):
    replicated = make_replicated(runtime)
    with pytest.raises(ValueError):
        runtime.sim.run_process(
            replicated.apply(PartitionMap.even(2), mode="consistent")
        )


# ----------------------------------------------------------------------
# Router cache + bounce loop
# ----------------------------------------------------------------------


class FakeShard:
    """Minimal shard-manager double for router bounce tests."""

    def __init__(self, shard_id, replicated):
        self.shard_id = shard_id
        self.loid = f"shard-{shard_id}"
        self._replicated = replicated
        self.calls = []

    def handle(self, epoch, loid):
        current = self._replicated.current
        if current.shard_for(loid) != self.shard_id:
            raise StalePartitionMap(epoch, current.epoch, snapshot=current)
        self.calls.append(loid)
        return (self.shard_id, loid)


class FakeClient:
    """Dispatches router invocations straight to FakeShard handlers."""

    def __init__(self, shards):
        self._shards = shards

    def invoke(self, target_loid, method, epoch, loid, **kwargs):
        shard = next(
            s for s in self._shards.values() if s.loid == target_loid
        )
        result = shard.handle(epoch, loid)
        return result
        yield  # pragma: no cover - keeps the invocation a generator


def test_router_bounce_adopts_piggybacked_snapshot(runtime):
    replicated = make_replicated(runtime)
    shards = {
        0: FakeShard(0, replicated),
        1: FakeShard(1, replicated),
        2: FakeShard(2, replicated),
    }
    router = PartitionRouter(replicated, shards.get)
    client = FakeClient(shards)
    loid = next(
        f"loid-{i}"
        for i in range(1000)
        if replicated.current.shard_for(f"loid-{i}") == 0
    )
    # Move the loid's whole half-space while the router's cache sleeps.
    runtime.sim.run_process(
        replicated.apply(
            replicated.current.move((0, HASH_SPACE // 2), 2),
            mode="consistent",
        )
    )
    assert router.epoch == 1  # cache is a snapshot, not a live view
    result = runtime.sim.run_process(client_call(router, client, loid))
    assert result == (2, loid)
    assert router.bounces == 1
    assert router.epoch == 2  # refreshed from the bounce's snapshot
    assert shards[2].calls == [loid]


def client_call(router, client, loid):
    result = yield from router.call(client, loid, "routedRead")
    return result


def test_router_gives_up_after_max_bounces(runtime):
    replicated = make_replicated(runtime)
    # Shard 1 exists in the map but has no live manager (retired).
    router = PartitionRouter(replicated, {0: FakeShard(0, replicated)}.get)
    client = FakeClient({})
    loid = next(
        f"loid-{i}"
        for i in range(1000)
        if replicated.current.shard_for(f"loid-{i}") == 1
    )

    def scenario():
        with pytest.raises(StalePartitionMap):
            yield from router.call(client, loid, "routedRead", max_bounces=2)

    runtime.sim.run_process(scenario())
