"""Tests for the monolithic baseline and its evolution pipeline."""

import pytest

from repro.baseline import (
    MODERATE_IMPL_BYTES,
    SMALL_IMPL_BYTES,
    BaselineEvolution,
    make_monolithic_implementation,
)


def behave_v1(ctx):
    return "v1"


def behave_v2(ctx):
    return "v2"


def make_class(runtime, size_bytes=SMALL_IMPL_BYTES, cache=True):
    implementation = make_monolithic_implementation(
        "base-v1",
        function_count=20,
        size_bytes=size_bytes,
        functions={"behave": behave_v1},
        version_tag="1",
    )
    if cache:
        for host in runtime.hosts.values():
            host.cache.insert(implementation.impl_id, implementation.size_bytes)
    return runtime.define_class("BaseType", implementations=[implementation])


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def test_make_monolithic_pads_function_count():
    implementation = make_monolithic_implementation("x", function_count=10)
    assert len(implementation.functions) == 10


def test_make_monolithic_keeps_real_bodies():
    implementation = make_monolithic_implementation(
        "x", function_count=5, functions={"behave": behave_v1}
    )
    assert implementation.functions["behave"] is behave_v1
    assert len(implementation.functions) == 5


def test_make_monolithic_rejects_negative_count():
    with pytest.raises(ValueError):
        make_monolithic_implementation("x", function_count=-1)


# ----------------------------------------------------------------------
# Evolution pipeline
# ----------------------------------------------------------------------


def evolve(runtime, klass, loid, size_bytes=MODERATE_IMPL_BYTES):
    evolution = BaselineEvolution(runtime, klass)
    new_implementation = make_monolithic_implementation(
        "base-v2",
        function_count=20,
        size_bytes=size_bytes,
        functions={"behave": behave_v2},
        version_tag="2",
    )
    evolution.publish_version([new_implementation])
    report = runtime.sim.run_process(evolution.evolve_instance(loid))
    return evolution, report


def test_baseline_evolution_changes_behavior(runtime):
    klass = make_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance(state_bytes=100_000))
    client = runtime.make_client("host03")
    assert client.call_sync(loid, "behave") == "v1"
    evolve(runtime, klass, loid)
    client.binding_cache.invalidate(loid)
    assert client.call_sync(loid, "behave") == "v2"
    assert klass.record(loid).version_tag == "2"


def test_baseline_evolution_preserves_state(runtime):
    klass = make_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    obj.state["counter"] = 17
    evolve(runtime, klass, loid)
    assert klass.record(loid).obj.state["counter"] == 17
    # The old live object was replaced by a new process.
    assert klass.record(loid).obj is not obj


def test_baseline_report_phases_sum_to_total(runtime):
    klass = make_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance(state_bytes=1_000_000))
    __, report = evolve(runtime, klass, loid)
    assert report.total_s == pytest.approx(
        report.capture_s + report.download_s + report.restart_s
    )
    assert report.capture_s > 0
    assert report.download_s > 10.0  # 5.1 MB uncached
    assert report.restart_s > 1.0  # spawn + restore + rebind


def test_baseline_download_skipped_when_cached(runtime):
    klass = make_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    host = klass.record(loid).host
    host.cache.insert("base-v2", MODERATE_IMPL_BYTES)
    __, report = evolve(runtime, klass, loid)
    assert report.download_s == 0.0
    assert report.downloaded_bytes == 0


def test_client_disruption_includes_stale_binding(runtime):
    klass = make_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    client = runtime.make_client("host03")
    client.call_sync(loid, "behave")  # warm the binding
    evolution, __ = evolve(runtime, klass, loid)
    disruption = runtime.sim.run_process(
        evolution.measure_client_disruption(loid, client, method="behave")
    )
    assert 25.0 <= disruption <= 36.0


def test_report_rows_are_labelled():
    from repro.baseline import EvolutionReport

    report = EvolutionReport(capture_s=1, download_s=2, restart_s=3, total_s=6)
    labels = [label for label, __ in report.as_rows()]
    assert "state capture" in labels
    assert any("download" in label for label in labels)
