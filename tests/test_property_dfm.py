"""Property-based tests: DFM / descriptor invariants under random
operation sequences (hypothesis).

Invariants checked after every accepted operation:

- at most one enabled implementation per function name;
- markings are monotone (never weakened);
- a permanent pin always refers to an incorporated component whose
  implementation of the function is enabled (once consistent).

Dependency closure is deliberately NOT a per-operation invariant on
descriptors — they are staging areas (§2.4); it IS guaranteed whenever
``validate_instantiable`` passes, which the last property checks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComponentBuilder,
    DCDOError,
    Dependency,
    DFMDescriptor,
    Marking,
)
from repro.core.dependency import check_dependencies

COMPONENT_IDS = ("ca", "cb", "cc")
FUNCTIONS = ("f1", "f2", "f3")


def build_component(component_id, function_names):
    builder = ComponentBuilder(component_id)
    for name in function_names:
        builder.function(name, lambda ctx: name)
    return builder.build()


# Each operation is a tagged tuple decoded by apply_operation.
operations = st.one_of(
    st.tuples(st.just("incorporate"), st.sampled_from(COMPONENT_IDS)),
    st.tuples(st.just("remove"), st.sampled_from(COMPONENT_IDS)),
    st.tuples(
        st.just("enable"),
        st.sampled_from(FUNCTIONS),
        st.sampled_from(COMPONENT_IDS),
        st.booleans(),  # replace_current
    ),
    st.tuples(
        st.just("disable"), st.sampled_from(FUNCTIONS), st.sampled_from(COMPONENT_IDS)
    ),
    st.tuples(st.just("mark_mandatory"), st.sampled_from(FUNCTIONS)),
    st.tuples(st.just("mark_permanent"), st.sampled_from(FUNCTIONS)),
    st.tuples(
        st.just("add_dependency"),
        st.sampled_from(FUNCTIONS),
        st.sampled_from(FUNCTIONS),
        st.sampled_from((None,) + COMPONENT_IDS),
        st.sampled_from((None,) + COMPONENT_IDS),
    ),
    st.tuples(
        st.just("set_exported"),
        st.sampled_from(FUNCTIONS),
        st.sampled_from(COMPONENT_IDS),
        st.booleans(),
    ),
)


def apply_operation(descriptor, operation):
    """Apply one random operation; DCDO errors mean 'rejected', which
    is fine — the point is that accepted operations keep invariants."""
    kind = operation[0]
    try:
        if kind == "incorporate":
            descriptor.incorporate(
                build_component(operation[1], FUNCTIONS), ico_loid=f"ico:{operation[1]}"
            )
        elif kind == "remove":
            descriptor.remove_component(operation[1])
        elif kind == "enable":
            descriptor.enable(operation[1], operation[2], replace_current=operation[3])
        elif kind == "disable":
            descriptor.disable(operation[1], operation[2])
        elif kind == "mark_mandatory":
            descriptor.mark_mandatory(operation[1])
        elif kind == "mark_permanent":
            descriptor.mark_permanent(operation[1])
        elif kind == "add_dependency":
            descriptor.add_dependency(
                Dependency(
                    dependent_function=operation[1],
                    required_function=operation[2],
                    dependent_component=operation[3],
                    required_component=operation[4],
                )
            )
        elif kind == "set_exported":
            descriptor.set_exported(operation[1], operation[2], operation[3])
    except DCDOError:
        return False
    return True


def assert_invariants(descriptor, marking_history):
    # At most one enabled implementation per function.
    for function in FUNCTIONS:
        assert len(descriptor.enabled_components_of(function)) <= 1, function
    # Markings are monotone.
    for function in FUNCTIONS:
        current = descriptor.marking(function)
        previous = marking_history.get(function, Marking.FULLY_DYNAMIC)
        assert current.at_least(previous), (function, previous, current)
        marking_history[function] = current
    # Permanent pins point at enabled implementations of incorporated
    # components.
    for function, marking in descriptor.markings_items():
        if marking is Marking.PERMANENT:
            pinned = descriptor.pin(function)
            assert pinned is not None
            if pinned in descriptor.component_ids:
                assert descriptor.is_enabled(function, pinned)


@settings(max_examples=120, deadline=None)
@given(st.lists(operations, min_size=1, max_size=40))
def test_random_operation_sequences_preserve_invariants(sequence):
    descriptor = DFMDescriptor()
    marking_history = {}
    for operation in sequence:
        apply_operation(descriptor, operation)
        assert_invariants(descriptor, marking_history)


@settings(max_examples=80, deadline=None)
@given(st.lists(operations, min_size=1, max_size=30))
def test_clone_equals_original_and_diverges_safely(sequence):
    descriptor = DFMDescriptor()
    for operation in sequence:
        apply_operation(descriptor, operation)
    clone = descriptor.clone()
    assert descriptor.functionally_equivalent(clone)
    # Mutating the clone never affects the original.
    apply_operation(clone, ("incorporate", "ca"))
    apply_operation(clone, ("enable", "f1", "ca", True))
    snapshot = {
        function: descriptor.enabled_components_of(function) for function in FUNCTIONS
    }
    for function in FUNCTIONS:
        assert descriptor.enabled_components_of(function) == snapshot[function]


@settings(max_examples=80, deadline=None)
@given(st.lists(operations, min_size=1, max_size=30), st.lists(operations, max_size=30))
def test_diff_apply_reaches_target_state(base_ops, extra_ops):
    """diff(a, b) carries everything needed to reconstruct b's
    enabled/exported map from a (the property evolution relies on)."""
    from repro.core import diff_descriptors

    base = DFMDescriptor()
    for operation in base_ops:
        apply_operation(base, operation)
    target = base.clone()
    for operation in extra_ops:
        apply_operation(target, operation)
    diff = diff_descriptors(base, target)
    # Reconstruct: start from base, apply the diff structurally.
    rebuilt = base.clone()
    for component_id in diff.components_to_remove:
        rebuilt._entries = {
            key: entry
            for key, entry in rebuilt._entries.items()
            if entry.component_id != component_id
        }
        rebuilt._component_refs.pop(component_id, None)
    for ref in diff.components_to_add:
        rebuilt._component_refs[ref.component_id] = ref
        for key, entry in diff.target._entries.items():
            if entry.component_id == ref.component_id:
                rebuilt._entries[key] = entry
    for key, entry in diff.target._entries.items():
        rebuilt._entries[key] = entry
    assert rebuilt.component_ids == target.component_ids
    assert rebuilt._entries == target._entries


@settings(max_examples=60, deadline=None)
@given(st.lists(operations, min_size=1, max_size=30))
def test_validate_instantiable_accepts_only_consistent_states(sequence):
    """If validate_instantiable passes, the §3.2 invariants hold."""
    descriptor = DFMDescriptor()
    for operation in sequence:
        apply_operation(descriptor, operation)
    try:
        descriptor.validate_instantiable()
    except DCDOError:
        return  # rejection is always allowed
    for function, marking in descriptor.markings_items():
        if marking is not Marking.FULLY_DYNAMIC:
            assert descriptor.enabled_components_of(function)
    check_dependencies(
        descriptor.dependencies, descriptor.is_enabled, descriptor.enabled_components_of
    )
