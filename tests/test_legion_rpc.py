"""Unit tests for the RPC layer, binding agent, and binding caches."""

import pytest

from repro.legion import BindingAgent, BindingCache
from repro.legion.binding import Binding, StaleBindingStats
from repro.legion.errors import UnknownObject
from repro.legion.loid import mint_loid
from repro.net import Network
from repro.sim import Simulator


# ----------------------------------------------------------------------
# BindingAgent
# ----------------------------------------------------------------------


def make_agent():
    sim = Simulator()
    network = Network(sim)
    return sim, network, BindingAgent(network)


def test_register_and_resolve():
    __, __, agent = make_agent()
    loid = mint_loid("d", "T")
    binding = agent.register(loid, "hostA/addr")
    assert binding.incarnation == 1
    assert agent.resolve_local(loid) == binding
    assert agent.current_address(loid) == "hostA/addr"


def test_reregistration_bumps_incarnation():
    __, __, agent = make_agent()
    loid = mint_loid("d", "T")
    first = agent.register(loid, "a1")
    second = agent.register(loid, "a2")
    assert second.incarnation == first.incarnation + 1


def test_unregister_forgets():
    __, __, agent = make_agent()
    loid = mint_loid("d", "T")
    agent.register(loid, "a")
    agent.unregister(loid)
    with pytest.raises(UnknownObject):
        agent.resolve_local(loid)
    assert agent.current_address(loid) is None


def test_agent_serves_resolutions_over_the_network():
    sim, network, agent = make_agent()
    loid = mint_loid("d", "T")
    agent.register(loid, "somewhere")
    from repro.net import Endpoint

    client = Endpoint(network, "client")

    def resolve():
        binding = yield from client.request(
            BindingAgent.ADDRESS, {"op": "resolve", "loid": loid}
        )
        return binding

    binding = sim.run_process(resolve())
    assert binding.address == "somewhere"
    assert agent.resolutions_served == 1


# ----------------------------------------------------------------------
# BindingCache
# ----------------------------------------------------------------------


def test_cache_hit_and_miss_counters():
    cache = BindingCache()
    loid = mint_loid("d", "T")
    assert cache.get(loid) is None
    assert cache.misses == 1
    cache.put(Binding(loid, "a", 1))
    assert cache.get(loid).address == "a"
    assert cache.hits == 1


def test_cache_keeps_newest_incarnation():
    cache = BindingCache()
    loid = mint_loid("d", "T")
    cache.put(Binding(loid, "new", 3))
    cache.put(Binding(loid, "old", 2))  # stale write is ignored
    assert cache.get(loid).address == "new"


def test_cache_invalidate():
    cache = BindingCache()
    loid = mint_loid("d", "T")
    cache.put(Binding(loid, "a", 1))
    cache.invalidate(loid)
    assert loid not in cache
    assert len(cache) == 0


def test_stale_stats_mean():
    stats = StaleBindingStats()
    assert stats.mean() is None
    stats.record(10.0)
    stats.record(20.0)
    assert stats.mean() == 15.0
    assert stats.count == 2


# ----------------------------------------------------------------------
# MethodInvoker behaviour (through the runtime fixture)
# ----------------------------------------------------------------------


def test_invoker_counts_invocations_and_rebinds(runtime):
    from tests.conftest import make_counter_class

    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance(host_name="host00"))
    client = runtime.make_client("host03")
    client.call_sync(loid, "inc")
    assert client.invoker.stats.invocations == 1
    assert client.invoker.stats.rebinds == 0
    runtime.sim.run_process(klass.migrate_instance(loid, "host01"))
    client.call_sync(loid, "get")
    assert client.invoker.stats.rebinds == 1
    assert client.invoker.stats.retries >= 3  # walked the schedule


def test_invoker_binding_cache_shared_across_calls(runtime):
    from tests.conftest import make_counter_class

    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    client = runtime.make_client("host03")
    client.call_sync(loid, "inc")
    resolutions_before = runtime.binding_agent.resolutions_served
    for __ in range(5):
        client.call_sync(loid, "get")
    # Warm cache: no further binding-agent traffic.
    assert runtime.binding_agent.resolutions_served == resolutions_before


def test_application_exception_propagates_with_type(runtime):
    from tests.conftest import make_counter_class

    def explode(ctx):
        raise ValueError("application-level failure")

    klass = make_counter_class(runtime, name="Exploder")
    loid = runtime.sim.run_process(klass.create_instance())
    klass.record(loid).obj.register_method("explode", explode)
    client = runtime.make_client()
    with pytest.raises(ValueError, match="application-level failure"):
        client.call_sync(loid, "explode")


def test_custom_timeout_schedule_respected(runtime):
    from repro.legion.errors import ObjectUnreachable
    from tests.conftest import make_counter_class

    klass = make_counter_class(runtime, name="Timeouter")
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    client = runtime.make_client("host03")
    client.call_sync(loid, "inc")
    obj.deactivate()
    start = runtime.sim.now
    with pytest.raises(ObjectUnreachable):
        client.call_sync(loid, "get", timeout_schedule=(0.5, 0.5))
    # Two rounds of a 1 s schedule (plus resolution traffic) is far
    # below the default ~60 s double walk.
    assert runtime.sim.now - start < 10.0
