"""Chaos tests for supervised manager failover: no operator in the loop.

Seeded schedules crash and partition the *manager* — the authority
itself — while a fleet evolves.  Unlike the PR 3 chaos suite, no test
code ever calls :func:`~repro.cluster.chaos.drive_to_convergence` or
:func:`~repro.core.recovery.recover_manager`: a
:class:`~repro.cluster.supervisor.Supervisor` must detect the failure
via heartbeats, promote the hot standby with a bumped fencing term,
and converge the fleet entirely on its own.

Acceptance invariants, every seed:

- the fleet ends fully on v2, exactly-once per instance;
- never-half-applied holds at heal and at the end;
- the supervisor promoted at least once with no help;
- across the sweep, at least one seed observes the fencing mechanism
  in action (``manager.stale_term_rejections`` > 0).

``CHAOS_EXTRA_SEEDS`` (env) widens the seed sweep in CI.
"""

import os

import pytest

from repro.cluster import Supervisor, build_lan, deploy_relays
from repro.cluster.chaos import ChaosCoordinator, ChaosSchedule
from repro.core import ManagerJournal
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager
from tests.test_chaos_transactions import assert_never_half_applied, derive_v2

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)

#: The host serving the component every v1→v2 evolution must fetch.
ICO_HOST = "host05"
MANAGER_HOST = "host00"
STANDBY_HOSTS = ("host02", "host03")
DETECTOR_HOST = "host04"

CHAOS_SEEDS = 20 + int(os.environ.get("CHAOS_EXTRA_SEEDS", "0"))

#: Stale-term rejections observed per seed, checked in aggregate by
#: :func:`test_stale_term_rejections_observed` after the sweep.
STALE_REJECTIONS = {}


def build_fleet(sim_seed=7, hosts=6, instances=4, **manager_kwargs):
    """Runtime + journaled, supervised sorter fleet.

    Primary on host00, standbys preferred on host02/host03, failure
    detector on host04 (never crashed by schedules here), evolution
    ICO on host05.  Instances land on host01..host04.
    """
    runtime = LegionRuntime(build_lan(hosts, seed=sim_seed))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        component_hosts={
            "sorter": MANAGER_HOST,
            "compare-asc": MANAGER_HOST,
            "compare-desc": ICO_HOST,
        },
        journal=journal,
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    loids = []
    for index in range(instances):
        loid, __ = create_dcdo(runtime, manager, host_name=f"host{index + 1:02d}")
        loids.append(loid)
    return runtime, manager, journal, loids


@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_supervised_failover(seed):
    """Crash or partition the manager mid-wave across seeded schedules:
    the supervisor alone converges the fleet, exactly-once, with a
    properly fenced succession of terms."""
    use_relays = seed % 5 == 0
    runtime, manager, journal, loids = build_fleet(
        sim_seed=1100 + seed,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    v1 = manager.current_version
    relays = deploy_relays(runtime) if use_relays else None
    if use_relays:
        manager.use_relays(relays, fanout_k=2)
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        relays=relays,
        relay_fanout_k=2 if use_relays else 0,
        retry_policy=FAST_RETRY,
    ).start()
    # The coordinator auto-recovers relays/ICOs/instances when hosts
    # restart, but with no journals it NEVER recovers the manager:
    # only the supervisor can bring the authority back.
    coordinator = ChaosCoordinator(runtime, journals={}, relays=relays)
    max_failovers = 1 + (seed % 2)
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        protect=(DETECTOR_HOST, ICO_HOST),
        max_drops=1 if seed % 4 == 0 else 0,
        manager_hosts=(MANAGER_HOST,) + STANDBY_HOSTS,
        max_manager_partitions=1 if seed % 3 == 0 else 0,
        max_failovers=max_failovers,
    )
    schedule.install(runtime, coordinator)
    base = schedule.installed_at
    # Fire the wave just before the first manager fault lands, so the
    # crash/partition catches deliveries in flight (acks pending) but
    # the standby already holds the wave's journal prefix.
    fault_offsets = [crash_at for __, crash_at, __ in schedule.crashes]
    fault_offsets += [start for __, __, start, __ in schedule.partitions]
    wave_at = max(0.1, min(fault_offsets) - 0.03) if fault_offsets else 0.5
    v2 = derive_v2(manager)

    def scenario():
        if runtime.sim.now < base + wave_at:
            yield runtime.sim.timeout(base + wave_at - runtime.sim.now)
        manager.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        # Unlike PR 3's suite, the supervisor may be mid-convergence at
        # the heal instant: a just-rebuilt instance that has not yet
        # received its configuration (version None) is not *half*
        # applied, so it is excluded here; the converged check below is
        # strict.
        current = supervisor.manager
        settled = [
            loid
            for loid in loids
            if not current.record(loid).active
            or current.record(loid).obj.version is not None
        ]
        assert_never_half_applied(
            current, settled, v1, v2, f"seed {seed} at heal"
        )
        # No operator call: just wait for the supervisor to converge.
        deadline = runtime.sim.now + 420.0
        while runtime.sim.now < deadline:
            current = supervisor.manager
            if current.is_active and not current.deposed and all(
                current.record(loid).active
                and current.record(loid).obj.version == v2
                for loid in loids
            ):
                break
            yield runtime.sim.timeout(5.0)
        supervisor.stop()

    runtime.sim.run_process(scenario())
    runtime.sim.run()

    manager_now = supervisor.manager
    assert supervisor.promotions >= 1, (
        f"seed {seed}: supervisor never promoted "
        f"(schedule {schedule.crashes} / {schedule.partitions})"
    )
    assert manager_now.is_active and not manager_now.deposed, (
        f"seed {seed}: no live authority after chaos"
    )
    assert manager_now.term >= 1 + supervisor.promotions
    assert_never_half_applied(
        manager_now, loids, v1, v2, f"seed {seed} converged"
    )
    for loid in loids:
        record = manager_now.record(loid)
        assert record.active, f"seed {seed}: {loid} never recovered"
        assert manager_now.instance_version(loid) == v2, (
            f"seed {seed}: manager thinks {loid} is at "
            f"{manager_now.instance_version(loid)}"
        )
        obj = record.obj
        assert obj.version == v2, f"seed {seed}: {loid} stuck at {obj.version}"
        assert obj.applications_by_version.get(v2, 0) <= 1, (
            f"seed {seed}: {loid} applied v2 "
            f"{obj.applications_by_version.get(v2)} times"
        )
    STALE_REJECTIONS[seed] = runtime.network.count_value(
        "manager.stale_term_rejections"
    )


def test_stale_term_rejections_observed():
    """Across the sweep, fencing must actually fire somewhere: at least
    one seed's partitioned zombie had a stale-term RPC rejected."""
    assert STALE_REJECTIONS, "sweep did not run before the aggregate check"
    assert any(count > 0 for count in STALE_REJECTIONS.values()), (
        f"no seed observed a stale-term rejection: {STALE_REJECTIONS}"
    )
