"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.cluster import build_lan
from repro.core import ComponentBuilder, ImplementationType, annotate_component
from repro.core.manager import define_dcdo_type
from repro.core.policies import (
    GeneralEvolutionPolicy,
    LazyUpdatePolicy,
    ProactiveUpdatePolicy,
    SingleVersionPolicy,
)
from repro.legion import LegionRuntime
from repro.workloads import ClosedLoopClient, build_component_version, make_noop_manager


def test_full_system_run_is_deterministic():
    """Two identical runs produce identical simulated traces."""

    def run_once():
        runtime = LegionRuntime(build_lan(6, seed=99))
        manager, __ = make_noop_manager(
            runtime,
            "Determinism",
            component_count=3,
            functions_per_component=5,
            update_policy=ProactiveUpdatePolicy(),
        )
        loids = [runtime.sim.run_process(manager.create_instance()) for __ in range(3)]
        client = runtime.make_client("host05")
        for loid in loids:
            client.call_sync(loid, "ping", 1)
        from repro.workloads import build_component_version, synthetic_components

        version = build_component_version(
            manager, synthetic_components(1, 2, prefix="det-x")
        )
        manager.set_current_version(version)
        return (
            runtime.sim.now,
            runtime.sim.processed_events,
            runtime.network.stats.messages_delivered,
            runtime.network.stats.bytes_delivered,
        )

    assert run_once() == run_once()


def test_sustained_traffic_through_a_version_cut(centurion_runtime):
    """A fleet keeps serving a continuous client load across a
    proactive version cut; no call errors, latencies stay bounded."""
    runtime = centurion_runtime
    manager, __ = make_noop_manager(
        runtime,
        "LiveCut",
        component_count=2,
        functions_per_component=5,
        evolution_policy=SingleVersionPolicy(),
        update_policy=ProactiveUpdatePolicy(),
    )
    loids = [
        runtime.sim.run_process(manager.create_instance(host_name=f"centurion{i:02d}"))
        for i in range(3)
    ]
    loops = []
    for index, loid in enumerate(loids):
        client = runtime.make_client(f"centurion{8 + index:02d}")
        loop = ClosedLoopClient(client, loid, "ping", calls=None, think_time_s=0.02)
        loops.append(loop)
        runtime.sim.spawn(loop.run())
    runtime.sim.run(until=runtime.sim.now + 1.0)

    from repro.workloads import synthetic_components

    extra = synthetic_components(1, 3, prefix="livecut-x")
    for record in manager.active_instances():
        variant = extra[0].variant_for_host(record.host)
        record.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    manager.set_current_version(version)

    runtime.sim.run(until=runtime.sim.now + 1.0)
    for loop in loops:
        loop.stop()
    runtime.sim.run()
    for loop in loops:
        assert loop.errors == []
        assert max(loop.latencies) < 0.1
    assert all(manager.instance_version(loid) == version for loid in loids)


def test_heterogeneous_fleet_with_migration_and_evolution():
    """Architecture variants + migration + lazy updates interplay."""
    x86 = ImplementationType(architecture="x86-linux")
    sparc = ImplementationType(architecture="sparc-solaris")
    runtime = LegionRuntime(
        build_lan(4, seed=13, architectures=("x86-linux", "sparc-solaris"))
    )
    manager = define_dcdo_type(
        runtime,
        "HetType",
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(check_on_migrate=True),
    )
    component = (
        ComponentBuilder("het-core")
        .function("arch_tag", lambda ctx: ctx.obj.host.architecture)
        .variant(size_bytes=50_000, impl_type=x86)
        .variant(size_bytes=55_000, impl_type=sparc)
        .build()
    )
    manager.register_component(component)
    version = manager.new_version()
    manager.incorporate_into(version, "het-core")
    manager.descriptor_of(version).enable("arch_tag", "het-core")
    manager.mark_instantiable(version)
    manager.set_current_version(version)

    loid = runtime.sim.run_process(manager.create_instance(host_name="host00"))
    client = runtime.make_client("host02")
    assert client.call_sync(loid, "arch_tag") == "x86-linux"

    # Cut a new version while the object is up, then migrate: the
    # on-migrate lazy check brings it to the new version on arrival.
    extra = (
        ComponentBuilder("het-extra")
        .function("extra_fn", lambda ctx: "extra")
        .variant(size_bytes=10_000, impl_type=x86)
        .variant(size_bytes=11_000, impl_type=sparc)
        .build()
    )
    manager.register_component(extra)
    v2 = manager.derive_version(version)
    manager.incorporate_into(v2, "het-extra")
    manager.descriptor_of(v2).enable("extra_fn", "het-extra")
    manager.mark_instantiable(v2)
    manager.set_current_version(v2)
    assert manager.instance_version(loid) == version  # lazy: not yet

    runtime.sim.run_process(manager.migrate_instance(loid, "host01"))
    runtime.sim.run()  # drain the post-migrate check
    assert manager.instance_version(loid) == v2
    client.binding_cache.invalidate(loid)
    assert client.call_sync(loid, "arch_tag") == "sparc-solaris"
    assert client.call_sync(loid, "extra_fn") == "extra"


def test_dependency_chain_survives_multi_step_evolution(runtime):
    """A three-function call chain, analyzer-annotated, evolves its
    tail implementation twice without ever breaking mid-chain."""

    def front(ctx):
        middle_result = yield from ctx.call("middle")
        return f"front({middle_result})"

    def middle(ctx):
        tail_result = yield from ctx.call("tail")
        return f"middle({tail_result})"

    chain = (
        ComponentBuilder("chain")
        .function("front", front)
        .function("middle", middle)
        .variant(size_bytes=30_000)
        .build()
    )
    annotate_component(chain)
    tail_v1 = (
        ComponentBuilder("tail-v1")
        .function("tail", lambda ctx: "t1")
        .variant(size_bytes=10_000)
        .build()
    )
    tail_v2 = (
        ComponentBuilder("tail-v2")
        .function("tail", lambda ctx: "t2")
        .variant(size_bytes=10_000)
        .build()
    )
    manager = define_dcdo_type(
        runtime, "Chain", evolution_policy=GeneralEvolutionPolicy()
    )
    for component in (chain, tail_v1, tail_v2):
        manager.register_component(component)
    v1 = manager.new_version()
    manager.incorporate_into(v1, "chain")
    manager.incorporate_into(v1, "tail-v1")
    descriptor = manager.descriptor_of(v1)
    for name, comp in (("front", "chain"), ("middle", "chain"), ("tail", "tail-v1")):
        descriptor.enable(name, comp)
    manager.mark_instantiable(v1)
    manager.set_current_version(v1)

    loid = runtime.sim.run_process(manager.create_instance())
    client = runtime.make_client()
    assert client.call_sync(loid, "front") == "front(middle(t1))"

    v2 = manager.derive_version(v1)
    manager.incorporate_into(v2, "tail-v2")
    descriptor = manager.descriptor_of(v2)
    descriptor.enable("tail", "tail-v2", replace_current=True)
    descriptor.remove_component("tail-v1")
    manager.mark_instantiable(v2)
    runtime.sim.run_process(manager.evolve_instance(loid, v2))
    assert client.call_sync(loid, "front") == "front(middle(t2))"

    # Direct disable of the (depended-on) tail is still vetoed.
    from repro.core import DependencyViolation

    with pytest.raises(DependencyViolation):
        client.call_sync(loid, "disableFunction", "tail", "tail-v2")


def test_many_instances_many_hosts_scales(centurion_runtime):
    """A 16-node fleet of 16 instances all create, serve, and evolve."""
    runtime = centurion_runtime
    manager, __ = make_noop_manager(
        runtime,
        "Fleet16",
        component_count=2,
        functions_per_component=4,
        evolution_policy=SingleVersionPolicy(),
        update_policy=ProactiveUpdatePolicy(),
    )
    loids = [
        runtime.sim.run_process(manager.create_instance(host_name=f"centurion{i:02d}"))
        for i in range(16)
    ]
    client = runtime.make_client("centurion00")
    for loid in loids:
        assert client.call_sync(loid, "ping", 7) == (7,)
    from repro.workloads import synthetic_components

    extra = synthetic_components(1, 2, prefix="fleet16-x")
    for record in manager.active_instances():
        variant = extra[0].variant_for_host(record.host)
        record.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    manager.set_current_version(version)
    assert all(manager.instance_version(loid) == version for loid in loids)
    rows = manager.dcdo_table()
    assert len(rows) == 16
    assert all(row[3] for row in rows)  # all active
