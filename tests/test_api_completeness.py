"""Tests for public API surface not covered elsewhere."""

import pytest

from repro.core import Dependency, RemovePolicy
from repro.legion.errors import ObjectDeactivated, UnknownObject
from tests.conftest import create_dcdo, make_counter_class, make_sorter_manager


def test_runtime_class_of(runtime):
    klass = make_counter_class(runtime)
    assert runtime.class_of("Counter") is klass
    with pytest.raises(UnknownObject):
        runtime.class_of("Nope")


def test_testbed_host_names(runtime):
    assert runtime.testbed.host_names() == ["host00", "host01", "host02", "host03"]


def test_version_tree_known_versions(runtime):
    manager = make_sorter_manager(runtime)
    manager.derive_version(manager.current_version)
    known = manager._version_tree.known_versions
    assert manager.current_version in known
    assert len(known) == 2


def test_object_moved_to_rebases_host(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance(host_name="host00"))
    obj = klass.record(loid).obj
    obj.moved_to(runtime.host("host02"))
    assert obj.host.name == "host02"


def test_descriptor_remove_dependency(runtime):
    manager = make_sorter_manager(runtime)
    version = manager.derive_version(manager.current_version)
    descriptor = manager.descriptor_of(version)
    dependency = Dependency("sort", "compare", dependent_component="sorter")
    descriptor.add_dependency(dependency)
    assert dependency in descriptor.dependencies
    descriptor.remove_dependency(dependency)
    assert dependency not in descriptor.dependencies
    descriptor.remove_dependency(dependency)  # idempotent


def test_dfm_remove_dependency(runtime):
    manager = make_sorter_manager(runtime)
    __, obj = create_dcdo(runtime, manager)
    dependency = Dependency("sort", "compare", dependent_component="sorter")
    obj.dfm.add_dependency(dependency)
    obj.dfm.remove_dependency(dependency)
    assert dependency not in obj.dfm.dependencies


def test_require_active(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    assert klass.require_active(loid) is klass.record(loid).obj
    runtime.sim.run_process(klass.deactivate_instance(loid))
    with pytest.raises(ObjectDeactivated):
        klass.require_active(loid)


def test_invoke_stats_reset(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    client = runtime.make_client()
    client.call_sync(loid, "inc")
    assert client.invoker.stats.invocations == 1
    client.invoker.stats.reset()
    assert client.invoker.stats.invocations == 0
    assert client.invoker.stats.rebinds == 0


def test_set_oneway_handler(runtime):
    received = []
    client = runtime.make_client("host01")
    peer = runtime.make_client("host02")
    peer.endpoint.set_oneway_handler(lambda message: received.append(message.payload))
    client.endpoint.send(peer.endpoint.address, "fire-and-forget")
    runtime.sim.run()
    assert received == ["fire-and-forget"]


def test_set_remove_policy(runtime):
    manager = make_sorter_manager(runtime)
    __, obj = create_dcdo(runtime, manager)
    assert obj.remove_policy.mode.value == "error"
    obj.set_remove_policy(RemovePolicy.timeout(2.5))
    assert obj.remove_policy.mode.value == "timeout"
    assert obj.remove_policy.grace_s == 2.5


def test_row_as_tuple():
    from repro.bench.harness import Row

    row = Row(label="x", paper="1", measured="2", unit="s", ok=False)
    assert row.as_tuple() == ("x", "1", "2", "s", False)
