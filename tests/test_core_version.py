"""Unit + property tests for version identifiers and version trees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import VersionId, VersionTree

version_parts = st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=6).map(
    tuple
)


def test_parse_and_str_roundtrip():
    version = VersionId.parse("3.2.1")
    assert version.parts == (3, 2, 1)
    assert str(version) == "3.2.1"


def test_root_is_one():
    assert VersionId.root() == VersionId((1,))


def test_empty_version_rejected():
    with pytest.raises(ValueError):
        VersionId(())


def test_non_positive_parts_rejected():
    with pytest.raises(ValueError):
        VersionId((1, 0))
    with pytest.raises(ValueError):
        VersionId((-1,))


def test_parse_garbage_rejected():
    with pytest.raises(ValueError):
        VersionId.parse("1.x.3")


def test_paper_derivation_examples():
    """§3.5: 3.2 -> 3.2.1 and 3.2.0.4 allowed; 3.2 -> 3.3 not.

    (0 parts are not representable here, so the paper's 3.2.0.4 maps
    to any deeper descendant like 3.2.1.4.)
    """
    v32 = VersionId.parse("3.2")
    assert VersionId.parse("3.2.1").derives_from(v32)
    assert VersionId.parse("3.2.1.4").derives_from(v32)
    assert not VersionId.parse("3.3").derives_from(v32)


def test_derives_from_self():
    version = VersionId.parse("1.2")
    assert version.derives_from(version)


def test_parent_chain():
    version = VersionId.parse("1.2.3")
    assert version.parent == VersionId.parse("1.2")
    assert version.parent.parent == VersionId.parse("1")
    assert version.parent.parent.parent is None


def test_child_indexing():
    assert VersionId.parse("2").child(3) == VersionId.parse("2.3")
    with pytest.raises(ValueError):
        VersionId.parse("2").child(0)


def test_ordering_is_lexicographic():
    assert VersionId.parse("1.2") < VersionId.parse("1.10")
    assert VersionId.parse("1") < VersionId.parse("1.1")


@given(version_parts)
def test_property_derives_from_every_ancestor(parts):
    version = VersionId(parts)
    ancestor = version
    while ancestor is not None:
        assert version.derives_from(ancestor)
        ancestor = ancestor.parent


@given(version_parts, version_parts)
def test_property_derivation_is_prefix_relation(a_parts, b_parts):
    a, b = VersionId(a_parts), VersionId(b_parts)
    assert a.derives_from(b) == (a_parts[: len(b_parts)] == b_parts)


@given(version_parts, version_parts, version_parts)
def test_property_derivation_transitive(a_parts, b_parts, c_parts):
    a, b, c = VersionId(a_parts), VersionId(b_parts), VersionId(c_parts)
    if a.derives_from(b) and b.derives_from(c):
        assert a.derives_from(c)


@given(version_parts, version_parts)
def test_property_derivation_antisymmetric(a_parts, b_parts):
    a, b = VersionId(a_parts), VersionId(b_parts)
    if a.derives_from(b) and b.derives_from(a):
        assert a == b


# ----------------------------------------------------------------------
# VersionTree
# ----------------------------------------------------------------------


def test_tree_roots_increment():
    tree = VersionTree()
    assert tree.new_root() == VersionId.parse("1")
    assert tree.new_root() == VersionId.parse("2")


def test_tree_derive_children_in_order():
    tree = VersionTree()
    root = tree.new_root()
    assert tree.derive(root) == VersionId.parse("1.1")
    assert tree.derive(root) == VersionId.parse("1.2")
    assert tree.derive(VersionId.parse("1.1")) == VersionId.parse("1.1.1")


def test_tree_derive_unknown_raises():
    tree = VersionTree()
    with pytest.raises(KeyError):
        tree.derive(VersionId.parse("9"))


def test_tree_contains_and_descendants():
    tree = VersionTree()
    root = tree.new_root()
    child = tree.derive(root)
    grandchild = tree.derive(child)
    other_root = tree.new_root()
    assert child in tree
    assert tree.descendants(root) == {root, child, grandchild}
    assert tree.descendants(other_root) == {other_root}


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30))
def test_property_tree_versions_unique(choices):
    """Deriving in any pattern never produces duplicate identifiers."""
    tree = VersionTree()
    known = [tree.new_root()]
    for choice in choices:
        if choice == 0:
            known.append(tree.new_root())
        else:
            known.append(tree.derive(known[choice % len(known)]))
    assert len(known) == len(set(known))
