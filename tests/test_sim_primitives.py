"""Unit tests for queues, semaphores, signals, and the RNG."""

import pytest

from repro.sim import (
    DeterministicRNG,
    Queue,
    QueueEmpty,
    QueueFull,
    Semaphore,
    Signal,
    Simulator,
)
from repro.sim.errors import SimulationError


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------


def test_queue_fifo_order():
    sim = Simulator()
    queue = Queue(sim)
    queue.put_nowait("a")
    queue.put_nowait("b")
    assert queue.get_nowait() == "a"
    assert queue.get_nowait() == "b"


def test_queue_get_blocks_until_put():
    sim = Simulator()
    queue = Queue(sim)

    def consumer():
        item = yield queue.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(5)
        queue.put_nowait("late")

    sim.spawn(producer())
    assert sim.run_process(consumer()) == (5.0, "late")


def test_queue_blocked_getters_fifo():
    sim = Simulator()
    queue = Queue(sim)
    got = []

    def consumer(tag):
        item = yield queue.get()
        got.append((tag, item))

    def producer():
        yield sim.timeout(1)
        queue.put_nowait(1)
        queue.put_nowait(2)

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))
    sim.spawn(producer())
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_queue_capacity_put_nowait_raises():
    sim = Simulator()
    queue = Queue(sim, capacity=1)
    queue.put_nowait("x")
    assert queue.is_full
    with pytest.raises(QueueFull):
        queue.put_nowait("y")


def test_queue_get_nowait_empty_raises():
    sim = Simulator()
    with pytest.raises(QueueEmpty):
        Queue(sim).get_nowait()


def test_queue_put_blocks_until_space():
    sim = Simulator()
    queue = Queue(sim, capacity=1)
    queue.put_nowait("first")

    def producer():
        yield queue.put("second")
        return sim.now

    def consumer():
        yield sim.timeout(3)
        queue.get_nowait()

    sim.spawn(consumer())
    assert sim.run_process(producer()) == 3.0
    assert queue.get_nowait() == "second"


def test_queue_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Queue(sim, capacity=0)


def test_queue_len_tracks_items():
    sim = Simulator()
    queue = Queue(sim)
    assert len(queue) == 0
    queue.put_nowait(1)
    assert len(queue) == 1


# ----------------------------------------------------------------------
# Semaphore
# ----------------------------------------------------------------------


def test_semaphore_serializes_critical_section():
    sim = Simulator()
    semaphore = Semaphore(sim, permits=1)
    trace = []

    def worker(tag):
        yield semaphore.acquire()
        trace.append((tag, "in", sim.now))
        yield sim.timeout(2)
        trace.append((tag, "out", sim.now))
        semaphore.release()

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert trace == [("a", "in", 0.0), ("a", "out", 2.0), ("b", "in", 2.0), ("b", "out", 4.0)]


def test_semaphore_counts_permits():
    sim = Simulator()
    semaphore = Semaphore(sim, permits=2)
    entered = []

    def worker(tag):
        yield semaphore.acquire()
        entered.append((tag, sim.now))
        yield sim.timeout(1)
        semaphore.release()

    for tag in ("a", "b", "c"):
        sim.spawn(worker(tag))
    sim.run()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_semaphore_over_release_raises():
    sim = Simulator()
    semaphore = Semaphore(sim, permits=1)
    with pytest.raises(SimulationError, match="released more"):
        semaphore.release()


def test_semaphore_invalid_permits():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, permits=0)


def test_semaphore_held_releases_on_exception():
    sim = Simulator()
    semaphore = Semaphore(sim, permits=1)

    def failing_body():
        yield sim.timeout(1)
        raise RuntimeError("body failed")

    def proc():
        try:
            yield from semaphore.held()(failing_body())
        except RuntimeError:
            pass
        return semaphore.available

    assert sim.run_process(proc()) == 1


# ----------------------------------------------------------------------
# Signal
# ----------------------------------------------------------------------


def test_signal_broadcasts_to_all_waiters():
    sim = Simulator()
    signal = Signal(sim)
    woken = []

    def waiter(tag):
        value = yield signal.wait()
        woken.append((tag, value))

    def firer():
        yield sim.timeout(1)
        signal.fire("go")

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(firer())
    sim.run()
    assert sorted(woken) == [("a", "go"), ("b", "go")]


def test_signal_rearms_after_fire():
    sim = Simulator()
    signal = Signal(sim)
    values = []

    def waiter():
        values.append((yield signal.wait()))
        values.append((yield signal.wait()))

    def firer():
        yield sim.timeout(1)
        signal.fire(1)
        yield sim.timeout(1)
        signal.fire(2)

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert values == [1, 2]
    assert signal.fire_count == 2


# ----------------------------------------------------------------------
# DeterministicRNG
# ----------------------------------------------------------------------


def test_rng_same_seed_same_sequence():
    a = DeterministicRNG(seed=42)
    b = DeterministicRNG(seed=42)
    assert [a.uniform("x", 0, 1) for _ in range(5)] == [b.uniform("x", 0, 1) for _ in range(5)]


def test_rng_streams_are_independent_of_creation_order():
    a = DeterministicRNG(seed=1)
    b = DeterministicRNG(seed=1)
    a.stream("first")
    value_a = a.uniform("second", 0, 1)
    value_b = b.uniform("second", 0, 1)
    assert value_a == value_b


def test_rng_different_seeds_differ():
    a = DeterministicRNG(seed=1)
    b = DeterministicRNG(seed=2)
    assert a.uniform("x", 0, 1) != b.uniform("x", 0, 1)


def test_rng_stream_identity():
    rng = DeterministicRNG(seed=3)
    assert rng.stream("net") is rng.stream("net")


def test_rng_jitter_within_bounds():
    rng = DeterministicRNG(seed=4)
    for _ in range(100):
        value = rng.jitter("j", 100.0, 0.25)
        assert 75.0 <= value <= 125.0


def test_rng_jitter_fraction_validation():
    rng = DeterministicRNG(seed=5)
    with pytest.raises(ValueError):
        rng.jitter("j", 1.0, 1.5)
