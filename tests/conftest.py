"""Shared fixtures and builders for the test suite."""

import pytest

from repro.cluster import build_lan
from repro.core import ComponentBuilder, define_dcdo_type
from repro.legion import Implementation, LegionRuntime


@pytest.fixture
def runtime():
    """A 4-host LAN runtime with default calibration."""
    return LegionRuntime(build_lan(4, seed=7))


@pytest.fixture
def centurion_runtime():
    """The paper's 16-node testbed."""
    from repro.cluster import build_centurion

    return LegionRuntime(build_centurion(seed=7))


def counter_functions():
    """A tiny member-function set used across tests.

    Functions follow the ``body(ctx, *args)`` convention: ``inc`` and
    ``get`` manipulate the object's state dict; ``slow`` charges CPU.
    """

    def inc(ctx, amount=1):
        ctx.state["count"] = ctx.state.get("count", 0) + amount
        return ctx.state["count"]

    def get(ctx):
        return ctx.state.get("count", 0)

    def slow(ctx, seconds):
        yield ctx.work(seconds)
        return "done"

    def add_twice(ctx, amount):
        first = yield from ctx.call("inc", amount)
        second = yield from ctx.call("inc", amount)
        return (first, second)

    return {"inc": inc, "get": get, "slow": slow, "add_twice": add_twice}


def make_counter_class(runtime, name="Counter", function_count=None, size_bytes=550_000):
    """Define a class with the counter functions, optionally padded.

    ``function_count`` pads the implementation with no-op functions so
    creation-cost experiments can sweep the method-table size.
    """
    functions = counter_functions()
    if function_count is not None:
        for index in range(max(0, function_count - len(functions))):
            functions[f"pad_{index}"] = lambda ctx: None
    implementation = Implementation(
        impl_id=f"{name}-v1",
        size_bytes=size_bytes,
        functions=functions,
        version_tag="1",
    )
    # Pre-seed every host cache so creation tests measure spawn +
    # registration, not downloads (matching the paper's 2.2 s setup).
    for host in runtime.hosts.values():
        host.cache.insert(implementation.impl_id, implementation.size_bytes)
    return runtime.define_class(name, implementations=[implementation])


# ----------------------------------------------------------------------
# DCDO builders: the paper's sort/compare behavioral-dependency example
# ----------------------------------------------------------------------


def sort_body(ctx, values):
    """Insertion sort built on the object's ``compare`` function.

    The §3.2 example: swapping the ``compare`` implementation changes
    ``sort``'s output without breaking any structural dependency.
    """
    result = list(values)
    for i in range(1, len(result)):
        j = i
        while j > 0:
            smaller = yield from ctx.call("compare", result[j - 1], result[j])
            if smaller == result[j] and result[j - 1] != result[j]:
                result[j - 1], result[j] = result[j], result[j - 1]
                j -= 1
            else:
                break
    return result


def compare_asc_body(ctx, a, b):
    """Returns the smaller of two integers (ascending sorts)."""
    return min(a, b)


def compare_desc_body(ctx, a, b):
    """Returns the larger of two integers (descending sorts)."""
    return max(a, b)


def make_sorter_components(size_bytes=64_000):
    """(sorter, compare-asc, compare-desc) components."""
    sorter = (
        ComponentBuilder("sorter")
        .function("sort", sort_body, signature="Integer[] sort(Integer[])")
        .variant(size_bytes=size_bytes)
        .build()
    )
    compare_asc = (
        ComponentBuilder("compare-asc")
        .function("compare", compare_asc_body, signature="Integer compare(Integer, Integer)")
        .variant(size_bytes=size_bytes)
        .build()
    )
    compare_desc = (
        ComponentBuilder("compare-desc")
        .function("compare", compare_desc_body, signature="Integer compare(Integer, Integer)")
        .variant(size_bytes=size_bytes)
        .build()
    )
    return sorter, compare_asc, compare_desc


def make_sorter_manager(runtime, type_name="Sorter", component_hosts=None, **policy_kwargs):
    """A DCDO manager with the sorter components and version 1 current.

    Version 1 incorporates ``sorter`` + ``compare-asc`` with both
    functions enabled; ``compare-desc`` is registered but unused, ready
    for evolution tests.  Component blobs are left uncached so creation
    pays the fetch path (callers can pre-seed caches when they need
    the cached numbers).  ``component_hosts`` pins ICO placement
    (``component_id -> host_name``) for tests that partition or crash a
    specific component server.
    """
    manager = define_dcdo_type(runtime, type_name, **policy_kwargs)
    sorter, compare_asc, compare_desc = make_sorter_components()
    component_hosts = component_hosts or {}
    for component in (sorter, compare_asc, compare_desc):
        manager.register_component(
            component, host_name=component_hosts.get(component.component_id)
        )
    version = manager.new_version()
    manager.incorporate_into(version, "sorter")
    manager.incorporate_into(version, "compare-asc")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("sort", "sorter")
    descriptor.enable("compare", "compare-asc")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    return manager


def make_sorter_plane(
    runtime,
    type_name="Sorter",
    shard_count=2,
    shard_hosts=None,
    component_hosts=None,
    journals=None,
    **policy_kwargs,
):
    """A sharded manager plane mirroring :func:`make_sorter_manager`.

    Same components, same version-1 configuration, applied plane-wide
    (every shard ends byte-equivalent); ``compare-desc`` is registered
    but unused, ready for evolution tests.
    """
    from repro.core import ShardedManagerPlane

    plane = ShardedManagerPlane(
        runtime,
        type_name,
        shard_count=shard_count,
        shard_hosts=shard_hosts,
        journals=journals,
        **policy_kwargs,
    )
    sorter, compare_asc, compare_desc = make_sorter_components()
    component_hosts = component_hosts or {}
    for component in (sorter, compare_asc, compare_desc):
        plane.register_component(
            component, host_name=component_hosts.get(component.component_id)
        )
    version = plane.new_version()
    plane.incorporate_into(version, "sorter")
    plane.incorporate_into(version, "compare-asc")
    plane.enable_function(version, "sort", "sorter")
    plane.enable_function(version, "compare", "compare-asc")
    plane.mark_instantiable(version)
    plane.set_current_version(version)
    return plane


def create_dcdo(runtime, manager, host_name=None):
    """Create one DCDO instance and return (loid, live object)."""
    loid = runtime.sim.run_process(manager.create_instance(host_name=host_name))
    return loid, manager.record(loid).obj
