"""Unit tests for the live DynamicFunctionMapper (no simulation)."""

import pytest

from repro.core import (
    ComponentBuilder,
    ComponentNotIncorporated,
    Dependency,
    FunctionNotEnabled,
    FunctionNotExported,
    Marking,
)
from repro.core.dfm import DynamicFunctionMapper
from repro.core.impltype import NATIVE


def component(component_id, functions=("f",), internal=()):
    builder = ComponentBuilder(component_id)
    for name in functions:
        builder.function(name, lambda ctx: name)
    for name in internal:
        builder.internal_function(name, lambda ctx: name)
    return builder.build()


def add(dfm, comp):
    dfm.add_component(comp, comp.variants[NATIVE])
    return comp


def make_dfm(*components):
    dfm = DynamicFunctionMapper()
    for comp in components:
        add(dfm, comp)
    return dfm


def test_add_component_creates_disabled_entries():
    dfm = make_dfm(component("c1", functions=("f", "g")))
    assert dfm.entry_count() == 2
    assert dfm.function_names() == ["f", "g"]
    assert dfm.exported_interface() == []


def test_lookup_disabled_raises():
    dfm = make_dfm(component("c1"))
    with pytest.raises(FunctionNotEnabled):
        dfm.lookup("f")


def test_lookup_unknown_function_raises():
    dfm = make_dfm(component("c1"))
    with pytest.raises(FunctionNotEnabled):
        dfm.lookup("missing")


def test_lookup_enabled_returns_entry():
    dfm = make_dfm(component("c1"))
    dfm.enable("f", "c1")
    entry = dfm.lookup("f")
    assert entry.component_id == "c1"
    assert entry.function == "f"


def test_external_lookup_requires_exported():
    dfm = make_dfm(component("c1", functions=(), internal=("secret",)))
    dfm.enable("secret", "c1")
    assert dfm.lookup("secret").function == "secret"  # internal call fine
    with pytest.raises(FunctionNotExported):
        dfm.lookup("secret", external=True)


def test_enter_leave_tracks_active_threads():
    dfm = make_dfm(component("c1"))
    dfm.enable("f", "c1")
    entry = dfm.lookup("f")
    dfm.enter(entry)
    dfm.enter(entry)
    assert entry.active_threads == 2
    assert dfm.active_threads_in("c1") == 2
    dfm.leave(entry)
    assert entry.active_threads == 1
    assert entry.calls == 2
    assert dfm.total_calls == 2


def test_leave_underflow_raises():
    dfm = make_dfm(component("c1"))
    dfm.enable("f", "c1")
    entry = dfm.lookup("f")
    with pytest.raises(RuntimeError, match="underflow"):
        dfm.leave(entry)


def test_remove_component_drops_entries():
    dfm = make_dfm(component("c1"), component("c2", functions=("g",)))
    dfm.remove_component("c1")
    assert dfm.component_ids == {"c2"}
    assert dfm.function_names() == ["g"]


def test_remove_unknown_component_raises():
    dfm = make_dfm(component("c1"))
    with pytest.raises(ComponentNotIncorporated):
        dfm.remove_component("ghost")


def test_remove_unvalidated_still_requires_presence():
    dfm = make_dfm(component("c1"))
    with pytest.raises(ComponentNotIncorporated):
        dfm.remove_component("ghost", validate=False)


def test_component_private_state_is_per_component():
    dfm = make_dfm(component("c1"), component("c2", functions=("g",)))
    dfm.component("c1").private_state["x"] = 1
    assert dfm.component("c2").private_state == {}


def test_component_required_markings_adopted():
    comp = (
        ComponentBuilder("c1")
        .function("f", lambda ctx: None)
        .require_mandatory("f")
        .build()
    )
    dfm = make_dfm(comp)
    assert dfm.marking("f") is Marking.MANDATORY


def test_functions_depending_on():
    dfm = make_dfm(component("c1", functions=("f1", "f2", "f3")))
    dfm.add_dependency(Dependency("f1", "f2"))
    dfm.add_dependency(Dependency("f3", "f2", required_component="c1"))
    assert dfm.functions_depending_on("f2") == {"f1", "f3"}
    assert dfm.functions_depending_on("f2", component_id="c1") == {"f1", "f3"}
    assert dfm.functions_depending_on("f2", component_id="other") == {"f1"}


def test_to_descriptor_snapshot_matches():
    dfm = make_dfm(component("c1", functions=("f", "g")))
    dfm.enable("f", "c1")
    dfm.mark_mandatory("f")
    snapshot = dfm.to_descriptor()
    assert snapshot.is_enabled("f", "c1")
    assert not snapshot.is_enabled("g", "c1")
    assert snapshot.marking("f") is Marking.MANDATORY


def test_apply_entry_states_syncs_enabled_bits():
    dfm = make_dfm(component("c1", functions=("f", "g")))
    target = dfm.to_descriptor()
    target.enable("f", "c1")
    changes = dfm.apply_entry_states(target)
    assert changes == 1
    assert dfm.is_enabled("f", "c1")
    # Applying again is a no-op.
    assert dfm.apply_entry_states(target) == 0


def test_mark_permanent_conflict_raises():
    from repro.core import PermanenceViolation

    dfm = make_dfm(component("c1"), component("c2"))
    dfm.mark_permanent("f", "c1")
    with pytest.raises(PermanenceViolation):
        dfm.mark_permanent("f", "c2")
