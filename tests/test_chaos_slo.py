"""Chaos sweep: SLO-gated canary waves under crashes and failover.

Every seed stages a *degraded* build — a version that installs
perfectly and then ruins the service (seeded added latency or error
injection, drawn from the schedule's ``degradations``) — and rolls it
out through an SLO-gated canary while the same schedule crashes hosts,
partitions the network, and (on some seeds) kills the manager so a
supervisor must promote a standby mid-rollout.

Acceptance invariants, every seed:

- the gate breaches and the breach-triggered abort *completes* — on
  the original manager or on whichever standby was promoted — with the
  whole fleet back on the prior version, exactly-once per instance;
- never-half-applied holds for every settled instance;
- blast radius stays within the stages the gate admitted (canary +
  first ramp) — the unvetted version never reaches the full fleet.

``CHAOS_EXTRA_SEEDS`` (env) widens the sweep in CI.
"""

import os

import pytest

from repro.cluster import Supervisor, build_lan
from repro.cluster.chaos import ChaosCoordinator, ChaosSchedule
from repro.core import EvolutionPhase, ManagerJournal, RemovePolicy
from repro.core.policies import (
    CanaryWavePolicy,
    IncreasingVersionPolicy,
    run_canary_wave,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.obs import SLO
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)

MANAGER_HOST = "host00"
STANDBY_HOSTS = ("host02", "host03")
DETECTOR_HOST = "host04"
#: The traffic client's host: protected, so the SLO gate always has a
#: vantage point (a blinded gate is a different experiment).
CLIENT_HOST = "host05"

INSTANCES = 8
RAMP = CanaryWavePolicy(
    stages=(0.125, 0.5, 1.0), bake_s=8.0, check_interval_s=1.0
)
#: Largest subset the gate may touch before a breach can possibly land:
#: the canary (1 of 8) plus the first ramp (4 of 8).
MAX_BLAST = 5

CHAOS_SEEDS = 20 + int(os.environ.get("CHAOS_EXTRA_SEEDS", "0"))

#: Supervisor promotions per seed, checked in aggregate after the sweep.
PROMOTIONS = {}


def assert_never_half_applied(manager, loids, context):
    """Every live, settled instance's DFM matches the full component
    set of the version it reports — fully one version, never a blend."""
    for loid in loids:
        record = manager.record(loid)
        if not record.active:
            continue  # crashed: no live state to be half of anything
        obj = record.obj
        if obj.evolution_phase is not EvolutionPhase.IDLE:
            continue  # mid-transaction; prepare/commit/rollback settles it
        if obj.version is None:
            continue  # just rebuilt, configuration not yet delivered
        expected = set(
            manager.descriptor_of(
                obj.version, allow_instantiable=True
            ).component_ids
        )
        assert set(obj.dfm.component_ids) == expected, (
            f"{context}: {loid} at {obj.version} with components "
            f"{sorted(obj.dfm.component_ids)} (half-applied evolution)"
        )


def build_fleet(sim_seed):
    runtime = LegionRuntime(build_lan(6, seed=sim_seed))
    journal = ManagerJournal(name="Svc")
    manager, __ = make_noop_manager(
        runtime,
        "Svc",
        2,
        3,
        evolution_policy=IncreasingVersionPolicy(),
        remove_policy=RemovePolicy.timeout(2.0),
        journal=journal,
        host_name=MANAGER_HOST,
        propagation_retry_policy=FAST_RETRY,
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{(index % 4) + 1:02d}")
        )
        for index in range(INSTANCES)
    ]
    return runtime, manager, journal, loids


@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_slo_gated_canary(seed):
    """Seeded degraded rollout + seeded chaos: the gate must catch the
    regression, bound the blast radius, and finish the rollback no
    matter which manager ends up holding the journal."""
    runtime, manager, journal, loids = build_fleet(sim_seed=2300 + seed)
    v1 = manager.current_version
    sim = runtime.sim

    supervisor = Supervisor(
        runtime,
        "Svc",
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        retry_policy=FAST_RETRY,
    ).start()
    coordinator = ChaosCoordinator(runtime, journals={})
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=90.0,
        max_crashes=1 if seed % 4 == 2 else 0,
        max_partitions=1 if seed % 5 == 3 else 0,
        max_drops=1 if seed % 4 == 0 else 0,
        protect=(DETECTOR_HOST, CLIENT_HOST),
        manager_hosts=(MANAGER_HOST,) + STANDBY_HOSTS,
        max_manager_partitions=1 if seed % 3 == 0 else 0,
        max_failovers=seed % 2,
        max_degradations=1,
    )
    assert schedule.degradations, "every seed must roll a degraded build"
    kind, amount = schedule.degradations[0]
    v2 = build_degraded_version(
        manager,
        added_latency_s=amount if kind == "latency" else 0.0,
        error_every=amount if kind == "errors" else 0,
    )
    schedule.install(runtime, coordinator)

    slo = SLO(
        name="svc",
        latency_targets={0.99: 0.050},
        max_error_rate=0.02,
        min_samples=30,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=6.0)
    load = OpenLoopLoad(
        runtime.make_client(host_name=CLIENT_HOST),
        loids,
        PoissonArrivals(30.0),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=600.0,
    )
    load.start()

    result = {}

    def runner():
        yield sim.timeout(3.0)
        result["outcome"] = yield from run_canary_wave(
            runtime,
            "Svc",
            v2,
            RAMP,
            monitor=monitor,
            retry_policy=FAST_RETRY,
            deadline_s=400.0,
        )
        # The rollout is decided; let chaos heal and recovery settle.
        heal = schedule.heal_time + 1.0
        if sim.now < heal:
            yield sim.timeout(heal - sim.now)
        current = supervisor.manager
        assert_never_half_applied(current, loids, f"seed {seed} at heal")
        deadline = sim.now + 200.0
        while sim.now < deadline:
            current = supervisor.manager
            if (
                current.is_active
                and not current.deposed
                and all(
                    current.record(loid).active
                    and current.instance_version(loid) == v1
                    for loid in loids
                )
            ):
                break
            yield sim.timeout(5.0)
        load.stop()
        supervisor.stop()

    sim.run_process(runner())
    sim.run()

    outcome = result["outcome"]
    current = supervisor.manager
    assert current.is_active and not current.deposed, (
        f"seed {seed}: no live authority after chaos ({schedule!r})"
    )

    # The gate caught the regression and the abort completed — possibly
    # on a promoted standby — leaving the fleet on the prior version.
    assert outcome.breached and not outcome.completed, (
        f"seed {seed}: degraded build survived the gate ({outcome})"
    )
    assert not outcome.stalled, f"seed {seed}: runner stalled ({outcome})"
    state = current.canary_state(v2)
    assert state is not None and state.breached
    tracker = current.propagation(v2)
    assert tracker is not None and tracker.aborted, (
        f"seed {seed}: breach-abort never completed ({tracker.summary()})"
    )
    assert current.current_version == v1

    # Blast radius: the unvetted version never spread past the stages
    # the gate explicitly admitted.
    assert len(state.admitted) <= MAX_BLAST, (
        f"seed {seed}: blast radius {len(state.admitted)}/{INSTANCES}"
    )

    assert_never_half_applied(current, loids, f"seed {seed} converged")
    for loid in loids:
        record = current.record(loid)
        assert record.active, f"seed {seed}: {loid} never recovered"
        assert current.instance_version(loid) == v1, (
            f"seed {seed}: {loid} left at "
            f"{current.instance_version(loid)} after rollback"
        )
        obj = record.obj
        assert obj.version == v1, f"seed {seed}: {loid} serving {obj.version}"
        assert obj.applications_by_version.get(v2, 0) <= 1, (
            f"seed {seed}: {loid} applied v2 "
            f"{obj.applications_by_version.get(v2)} times"
        )
    assert len(monitor.breach_log) >= 1, f"seed {seed}: gate never fired"
    PROMOTIONS[seed] = supervisor.promotions


def test_failover_observed_somewhere_in_sweep():
    """The sweep must actually exercise the failover-during-rollout
    path: at least one seed's supervisor promoted a standby."""
    assert PROMOTIONS, "sweep did not run before the aggregate check"
    assert any(count > 0 for count in PROMOTIONS.values()), (
        f"no seed promoted a standby mid-rollout: {PROMOTIONS}"
    )
