"""Integration tests for live DCDOs: dispatch, evolution, §3.1 hazards,
thread activity monitoring, and removal policies."""

import pytest

from repro.core import (
    ComponentBuilder,
    ComponentBusy,
    Dependency,
    FunctionNotEnabled,
    RemovePolicy,
)
from repro.legion.errors import MethodNotFound
from tests.conftest import create_dcdo, make_sorter_manager


@pytest.fixture
def sorter(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client("host03")
    return manager, loid, obj, client


# ----------------------------------------------------------------------
# Basic dispatch through the DFM
# ----------------------------------------------------------------------


def test_dynamic_function_roundtrip(sorter):
    __, loid, __, client = sorter
    assert client.call_sync(loid, "sort", [3, 1, 2]) == [1, 2, 3]


def test_intra_object_call_goes_through_dfm(sorter):
    __, loid, obj, client = sorter
    client.call_sync(loid, "sort", [2, 1])
    # sort called compare through the DFM: both have call counts.
    status = client.call_sync(loid, "getFunctionStatus", "compare")
    assert status[0]["calls"] >= 1
    assert obj.dfm.total_calls >= 2


def test_dynamic_call_overhead_is_10_to_15_microseconds(sorter):
    """§4 Overhead, measured at the DFM boundary."""
    __, __, obj, __ = sorter
    sim = obj.sim
    samples = []
    for __ in range(200):
        start = sim.now
        sim.run_process(obj._dispatch_local("compare", (1, 2)))
        samples.append(sim.now - start)
    assert all(10e-6 <= sample <= 15e-6 for sample in samples)


def test_status_reporting_functions(sorter):
    __, loid, __, client = sorter
    assert client.call_sync(loid, "getInterface") == ["compare", "sort"]
    assert client.call_sync(loid, "getVersion") == "1"
    assert client.call_sync(loid, "getComponents") == ["compare-asc", "sorter"]
    impl_type = client.call_sync(loid, "getImplementationType")
    assert impl_type.architecture == "x86-linux"


def test_internal_functions_hidden_from_interface(runtime):
    manager = make_sorter_manager(runtime, type_name="Hidden")
    helper = (
        ComponentBuilder("helper")
        .internal_function("helper_fn", lambda ctx: "secret")
        .build()
    )
    manager.register_component(helper)
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "helper")
    manager.descriptor_of(version).enable("helper_fn", "helper")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    assert "helper_fn" not in client.call_sync(loid, "getInterface")
    with pytest.raises(MethodNotFound):
        client.call_sync(loid, "helper_fn")


# ----------------------------------------------------------------------
# Direct configuration functions
# ----------------------------------------------------------------------


def test_enable_disable_via_remote_config_calls(sorter):
    __, loid, __, client = sorter
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    with pytest.raises(MethodNotFound):
        client.call_sync(loid, "sort", [1])
    client.call_sync(loid, "enableFunction", "sort", "sorter")
    assert client.call_sync(loid, "sort", [2, 1]) == [1, 2]


def test_incorporate_component_via_remote_call(sorter):
    manager, loid, obj, client = sorter
    ico = manager.component_ico("compare-desc")
    client.call_sync(loid, "incorporateComponent", ico, timeout_schedule=(120.0,))
    assert "compare-desc" in client.call_sync(loid, "getComponents")
    # New component's functions arrive disabled.
    assert obj.dfm.enabled_components_of("compare") == {"compare-asc"}


def test_swap_compare_implementation_changes_sort_order(runtime):
    """The paper's behavioral-dependency motivating example: replacing
    compare() flips sort()'s output order without breaking anything."""
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client()
    ico = manager.component_ico("compare-desc")
    client.call_sync(loid, "incorporateComponent", ico, timeout_schedule=(120.0,))
    client.call_sync(loid, "disableFunction", "compare", "compare-asc")
    client.call_sync(loid, "enableFunction", "compare", "compare-desc")
    assert client.call_sync(loid, "sort", [3, 1, 2]) == [3, 2, 1]


def test_remove_component_via_remote_call(sorter):
    __, loid, obj, client = sorter
    client.call_sync(loid, "disableFunction", "compare", "compare-asc")
    client.call_sync(loid, "removeComponent", "compare-asc")
    assert client.call_sync(loid, "getComponents") == ["sorter"]


def test_set_exported_moves_function_private(sorter):
    __, loid, __, client = sorter
    client.call_sync(loid, "setExported", "compare", "compare-asc", False)
    assert client.call_sync(loid, "getInterface") == ["sort"]
    with pytest.raises(MethodNotFound):
        client.call_sync(loid, "compare", 1, 2)
    # sort still works: internal calls may use internal functions.
    assert client.call_sync(loid, "sort", [2, 1]) == [1, 2]


# ----------------------------------------------------------------------
# §3.1 hazards, reproduced and then prevented
# ----------------------------------------------------------------------


def test_disappearing_exported_function_problem(sorter):
    """A client builds an invocation against the interface it fetched;
    the function disappears before the call arrives."""
    __, loid, __, client = sorter
    interface = client.call_sync(loid, "getInterface")
    assert "sort" in interface
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    with pytest.raises(MethodNotFound):
        client.call_sync(loid, "sort", [1, 2])


def test_missing_internal_function_problem(sorter):
    """sort calls compare through the DFM; with compare disabled the
    call fails inside the object."""
    __, loid, __, client = sorter
    client.call_sync(loid, "disableFunction", "compare", "compare-asc")
    with pytest.raises(FunctionNotEnabled):
        client.call_sync(loid, "sort", [2, 1])


def test_disappearing_internal_function_problem(runtime):
    """A thread blocked on an outcall resumes to find the function it
    needs was disabled while it slept (§3.1)."""
    manager = make_sorter_manager(runtime, type_name="Sleepy")
    worker = (
        ComponentBuilder("worker")
        .function(
            "outer",
            lambda ctx: (yield from _outer_body(ctx)),
        )
        .function("inner", lambda ctx: "inner-result")
        .build()
    )

    def _outer_body(ctx):
        yield ctx.work(5.0)  # the thread is inactive (blocked) here
        result = yield from ctx.call("inner")
        return result

    manager.register_component(worker)
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "worker")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("outer", "worker")
    descriptor.enable("inner", "worker")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, __ = create_dcdo(runtime, manager)
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    outcomes = {}

    def slow_caller():
        try:
            outcomes["outer"] = yield from client_a.invoke(
                loid, "outer", timeout_schedule=(60.0,)
            )
        except FunctionNotEnabled as error:
            outcomes["outer"] = error

    def config_caller():
        yield runtime.sim.timeout(1.0)  # while outer's thread sleeps
        yield from client_b.invoke(loid, "disableFunction", "inner", "worker")

    runtime.sim.spawn(slow_caller())
    runtime.sim.spawn(config_caller())
    runtime.sim.run()
    assert isinstance(outcomes["outer"], FunctionNotEnabled)


def test_mandatory_marking_prevents_missing_internal_function(sorter):
    """§3.2: marking compare mandatory makes the disable fail instead
    of breaking sort later."""
    from repro.core import MandatoryViolation

    __, loid, obj, client = sorter
    obj.dfm.mark_mandatory("compare")
    with pytest.raises(MandatoryViolation):
        client.call_sync(loid, "disableFunction", "compare", "compare-asc")
    assert client.call_sync(loid, "sort", [2, 1]) == [1, 2]


def test_dependency_prevents_missing_internal_function(sorter):
    """§3.2 Type A: [sort, sorter] -> [compare] guards the call chain
    while still allowing compare upgrades."""
    from repro.core import DependencyViolation

    manager, loid, obj, client = sorter
    obj.dfm.add_dependency(Dependency("sort", "compare", dependent_component="sorter"))
    with pytest.raises(DependencyViolation):
        client.call_sync(loid, "disableFunction", "compare", "compare-asc")
    # But *replacing* compare with another implementation stays legal —
    # "this dependency alone does not preclude the possibility of
    # replacing the implementation of F2" (§3.2 Type A):
    ico = manager.component_ico("compare-desc")
    client.call_sync(loid, "incorporateComponent", ico, timeout_schedule=(120.0,))
    client.call_sync(loid, "enableFunction", "compare", "compare-desc", True)
    assert client.call_sync(loid, "sort", [1, 3, 2]) == [3, 2, 1]


def test_type_b_dependency_freezes_behavior(sorter):
    """§3.2 Type B: sort depends behaviorally on compare-asc's
    implementation, so the ascending order cannot be flipped."""
    from repro.core import DependencyViolation

    manager, loid, obj, client = sorter
    obj.dfm.add_dependency(
        Dependency(
            "sort",
            "compare",
            dependent_component="sorter",
            required_component="compare-asc",
        )
    )
    ico = manager.component_ico("compare-desc")
    client.call_sync(loid, "incorporateComponent", ico, timeout_schedule=(120.0,))
    with pytest.raises(DependencyViolation):
        client.call_sync(loid, "disableFunction", "compare", "compare-asc")


# ----------------------------------------------------------------------
# Thread activity monitoring and removal policies (§3.2)
# ----------------------------------------------------------------------


def make_slow_component():
    def slow_fn(ctx, seconds):
        yield ctx.work(seconds)
        return "done"

    return ComponentBuilder("slow").function("slow_fn", slow_fn).build()


def make_slow_dcdo(runtime, remove_policy, type_name="SlowType"):
    manager = make_sorter_manager(runtime, type_name=type_name, remove_policy=remove_policy)
    manager.register_component(make_slow_component())
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "slow")
    manager.descriptor_of(version).enable("slow_fn", "slow")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, obj = create_dcdo(runtime, manager)
    return manager, loid, obj


def test_active_threads_visible_in_status(runtime):
    __, loid, obj = make_slow_dcdo(runtime, RemovePolicy.error())
    client = runtime.make_client()

    def caller():
        yield from client.invoke(loid, "slow_fn", 5.0, timeout_schedule=(60.0,))

    runtime.sim.spawn(caller())
    runtime.sim.run(until=runtime.sim.now + 1.0)
    assert obj.dfm.active_threads_in("slow") == 1
    runtime.sim.run()
    assert obj.dfm.active_threads_in("slow") == 0


def test_remove_policy_error_raises_component_busy(runtime):
    __, loid, obj = make_slow_dcdo(runtime, RemovePolicy.error())
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    outcomes = {}

    def worker():
        outcomes["work"] = yield from client_a.invoke(
            loid, "slow_fn", 5.0, timeout_schedule=(60.0,)
        )

    def remover():
        yield runtime.sim.timeout(1.0)
        try:
            yield from client_b.invoke(loid, "removeComponent", "slow")
        except ComponentBusy as error:
            outcomes["remove"] = error

    runtime.sim.spawn(worker())
    runtime.sim.spawn(remover())
    runtime.sim.run()
    assert isinstance(outcomes["remove"], ComponentBusy)
    assert outcomes["work"] == "done"  # the thread was never yanked


def test_remove_policy_delay_waits_for_threads(runtime):
    __, loid, obj = make_slow_dcdo(runtime, RemovePolicy.delay())
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    times = {}

    def worker():
        yield from client_a.invoke(loid, "slow_fn", 5.0, timeout_schedule=(60.0,))
        times["work_done"] = runtime.sim.now

    def remover():
        yield runtime.sim.timeout(1.0)
        yield from client_b.invoke(loid, "removeComponent", "slow", timeout_schedule=(60.0,))
        times["removed"] = runtime.sim.now

    runtime.sim.spawn(worker())
    runtime.sim.spawn(remover())
    runtime.sim.run()
    # Removal completed only after the worker thread drained.
    assert times["removed"] >= times["work_done"]
    assert "slow" not in obj.dfm.component_ids


def test_remove_policy_timeout_proceeds_after_grace(runtime):
    __, loid, obj = make_slow_dcdo(runtime, RemovePolicy.timeout(2.0))
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    times = {}

    def worker():
        try:
            yield from client_a.invoke(loid, "slow_fn", 30.0, timeout_schedule=(90.0,))
        except Exception as error:  # noqa: BLE001 - hazard is the point
            times["work_error"] = error

    def remover():
        yield runtime.sim.timeout(1.0)
        yield from client_b.invoke(loid, "removeComponent", "slow", timeout_schedule=(60.0,))
        times["removed"] = runtime.sim.now

    start = runtime.sim.now
    runtime.sim.spawn(worker())
    runtime.sim.spawn(remover())
    runtime.sim.run(until=start + 10.0)
    # Removal went ahead ~3s in (1s delay + 2s grace), long before the
    # 30s worker finished: the disappearing-component hazard, accepted.
    assert times["removed"] == pytest.approx(start + 3.0, abs=0.5)
    assert "slow" not in obj.dfm.component_ids


def test_disable_wait_for_dependents_postpones(runtime):
    """§3.2: disable of a depended-on function waits for dependents'
    threads to drain when asked to."""
    manager = make_sorter_manager(runtime, type_name="DepWait")
    loid, obj = create_dcdo(runtime, manager)
    obj.dfm.add_dependency(Dependency("sort", "compare", dependent_component="sorter"))
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    times = {}

    def sorter_caller():
        yield from client_a.invoke(
            loid, "sort", list(range(40, 0, -1)), timeout_schedule=(60.0,)
        )
        times["sort_done"] = runtime.sim.now

    def disabler():
        yield runtime.sim.timeout(0.001)
        # With wait_for_dependents the disable is postponed until
        # sort's active thread count drains, then proceeds (the
        # runtime guard replaces the static dependency veto).
        yield from client_b.invoke(
            loid,
            "disableFunction",
            "compare",
            "compare-asc",
            True,
            timeout_schedule=(60.0,),
        )
        times["disabled"] = runtime.sim.now

    runtime.sim.spawn(sorter_caller())
    runtime.sim.spawn(disabler())
    runtime.sim.run()
    assert times["disabled"] >= times["sort_done"]
