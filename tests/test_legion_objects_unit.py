"""Unit-level tests for LegionObject details and the DCDO method table."""

import pytest

from repro.legion.errors import MethodNotFound
from tests.conftest import create_dcdo, make_counter_class, make_sorter_manager


# ----------------------------------------------------------------------
# LegionObject details
# ----------------------------------------------------------------------


def test_register_method_requires_callable(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    with pytest.raises(TypeError):
        obj.register_method("bad", "not-callable")


def test_has_method_and_unregister(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    assert obj.has_method("inc")
    obj.unregister_method("inc")
    assert not obj.has_method("inc")
    client = runtime.make_client()
    with pytest.raises(MethodNotFound):
        client.call_sync(loid, "inc")


def test_capture_state_returns_copy(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    obj.state["x"] = 1
    state, size = obj.capture_state()
    state["x"] = 999
    assert obj.state["x"] == 1
    assert size == obj.state_bytes


def test_deactivate_is_idempotent(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    obj.deactivate()
    obj.deactivate()  # must not raise
    assert not obj.is_active
    assert obj.address is None


def test_invoker_unavailable_when_inactive(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    obj.deactivate()
    with pytest.raises(RuntimeError, match="not active"):
        obj.invoker


def test_method_names_sorted(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    names = obj.method_names
    assert names == sorted(names)
    assert "inc" in names


def test_reply_size_charges_wire_time(runtime):
    """A method that sets a large reply size makes its reply slower."""
    klass = make_counter_class(runtime, name="BigReply")
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj

    def small(ctx):
        return "x"

    def big(ctx):
        ctx.set_reply_size(2_000_000)
        return "x"

    obj.register_method("small", small)
    obj.register_method("big", big)
    client = runtime.make_client("host03")
    client.call_sync(loid, "small")  # warm binding

    start = runtime.sim.now
    client.call_sync(loid, "small")
    small_time = runtime.sim.now - start
    start = runtime.sim.now
    client.call_sync(loid, "big")
    big_time = runtime.sim.now - start
    # 2 MB at 12.5 MB/s adds ~160 ms to the reply leg.
    assert big_time > small_time + 0.1


def test_requests_completed_counter(runtime):
    klass = make_counter_class(runtime)
    loid = runtime.sim.run_process(klass.create_instance())
    obj = klass.record(loid).obj
    client = runtime.make_client()
    for __ in range(3):
        client.call_sync(loid, "get")
    assert obj.requests_completed == 3
    assert obj.active_requests == 0


# ----------------------------------------------------------------------
# DCDO method-table interactions
# ----------------------------------------------------------------------


def test_config_functions_shadow_user_functions(runtime):
    """A dynamic function named like a core config function is
    unreachable — the DCDO core interface wins.  This mirrors the
    model: configuration functions are part of every DCDO's fixed
    interface (§2.2)."""
    from repro.core import ComponentBuilder
    from repro.core.manager import define_dcdo_type

    shady = (
        ComponentBuilder("shady")
        .function("getVersion", lambda ctx: "fake-version")
        .function("honest", lambda ctx: "ok")
        .build()
    )
    manager = define_dcdo_type(runtime, "Shadow")
    manager.register_component(shady)
    version = manager.new_version()
    manager.incorporate_into(version, "shady")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("getVersion", "shady")
    descriptor.enable("honest", "shady")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    # The core status function answers, not the user function.
    assert client.call_sync(loid, "getVersion") == str(version)
    assert client.call_sync(loid, "honest") == "ok"


def test_remove_then_reincorporate_uses_cache(runtime):
    """Removing a component leaves its blob cached, so putting it back
    costs the ~200 us cached path — the round-trip evolution case."""
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client()
    client.call_sync(loid, "disableFunction", "compare", "compare-asc")
    client.call_sync(loid, "removeComponent", "compare-asc")
    ico = manager.component_ico("compare-asc")
    start = runtime.sim.now
    client.call_sync(loid, "incorporateComponent", ico, timeout_schedule=(120.0,))
    elapsed = runtime.sim.now - start
    # Metadata RPC + cached link: well under the uncached ~100 ms.
    assert elapsed < 0.05
    assert "compare-asc" in obj.dfm.component_ids


def test_dynamic_calls_counted_per_entry(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager)
    client = runtime.make_client()
    client.call_sync(loid, "sort", [3, 1, 2])
    sort_entry = obj.dfm.entry("sort", "sorter")
    compare_entry = obj.dfm.entry("compare", "compare-asc")
    assert sort_entry.calls == 1
    assert compare_entry.calls >= 2
    assert obj.dfm.total_calls == sort_entry.calls + compare_entry.calls


def test_evolving_deactivated_instance_rejected(runtime):
    from repro.core.policies import GeneralEvolutionPolicy
    from repro.legion.errors import ObjectDeactivated

    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    runtime.sim.run_process(manager.deactivate_instance(loid))
    version = manager.derive_version(manager.current_version)
    manager.descriptor_of(version).set_exported("compare", "compare-asc", False)
    manager.mark_instantiable(version)
    with pytest.raises(ObjectDeactivated):
        runtime.sim.run_process(manager.evolve_instance(loid, version))


def test_reactivated_instance_rebuilds_at_its_version(runtime):
    from repro.core.policies import GeneralEvolutionPolicy

    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    # Cut a new current version while the instance sleeps.
    runtime.sim.run_process(manager.deactivate_instance(loid))
    version = manager.derive_version(v1)
    manager.descriptor_of(version).set_exported("compare", "compare-asc", False)
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    runtime.sim.run_process(manager.activate_instance(loid))
    # The explicit-update default: the instance comes back at ITS
    # version, not silently at the new current one.
    assert manager.instance_version(loid) == v1
    client = runtime.make_client()
    assert client.call_sync(loid, "compare", 2, 1) == 1
