"""Property-based tests for the simulation kernel and primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DeterministicRNG, Queue, Semaphore, Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


@settings(max_examples=100, deadline=None)
@given(delays)
def test_timeouts_fire_in_nondecreasing_time_order(delay_list):
    sim = Simulator()
    fired = []

    def proc(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delay_list:
        sim.spawn(proc(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert sim.now == max(delay_list)


@settings(max_examples=60, deadline=None)
@given(delays)
def test_same_schedule_is_deterministic(delay_list):
    def run_once():
        sim = Simulator()
        trace = []

        def proc(tag, delay):
            yield sim.timeout(delay)
            trace.append((tag, sim.now))

        for index, delay in enumerate(delay_list):
            sim.spawn(proc(index, delay))
        sim.run()
        return trace

    assert run_once() == run_once()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=50))
def test_queue_preserves_fifo_under_any_put_pattern(items):
    sim = Simulator()
    queue = Queue(sim)
    received = []

    def producer():
        for item in items:
            queue.put_nowait(item)
            yield sim.timeout(0.5)

    def consumer():
        for __ in items:
            received.append((yield queue.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == items


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=1, max_size=12),
)
def test_semaphore_never_exceeds_capacity(permits, work_times):
    sim = Simulator()
    semaphore = Semaphore(sim, permits=permits)
    concurrent = {"now": 0, "max": 0}

    def worker(work):
        yield semaphore.acquire()
        concurrent["now"] += 1
        concurrent["max"] = max(concurrent["max"], concurrent["now"])
        yield sim.timeout(work)
        concurrent["now"] -= 1
        semaphore.release()

    for work in work_times:
        sim.spawn(worker(work))
    sim.run()
    assert concurrent["max"] <= permits
    assert concurrent["now"] == 0
    assert semaphore.available == permits


@settings(max_examples=40, deadline=None)
@given(st.integers(), st.text(min_size=1, max_size=10))
def test_rng_streams_reproducible_for_any_seed_and_name(seed, name):
    a = DeterministicRNG(seed=seed)
    b = DeterministicRNG(seed=seed)
    assert [a.uniform(name, 0, 1) for __ in range(3)] == [
        b.uniform(name, 0, 1) for __ in range(3)
    ]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000_000))
def test_download_time_model_is_monotone_in_size(size):
    from repro.cluster import Calibration

    calibration = Calibration()
    smaller = calibration.download_time(size)
    larger = calibration.download_time(size + calibration.download_chunk_bytes)
    assert larger > smaller
    assert smaller >= calibration.download_setup_s
