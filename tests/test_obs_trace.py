"""Tests for the tracing subsystem and its runtime hooks."""

import pytest

from repro.obs import Tracer
from repro.sim import Simulator
from tests.conftest import create_dcdo, make_sorter_manager


# ----------------------------------------------------------------------
# Tracer primitives
# ----------------------------------------------------------------------


def test_record_and_query():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record("cat-a", "subject-1", key="v1")

    def advance():
        yield sim.timeout(5.0)
        tracer.record("cat-b", "subject-1", key="v2")

    sim.run_process(advance())
    assert len(tracer) == 2
    assert [event.at for event in tracer.events] == [0.0, 5.0]
    assert len(tracer.in_category("cat-a")) == 1
    assert len(tracer.about("subject-1")) == 2
    assert tracer.between(1.0, 10.0)[0].detail("key") == "v2"


def test_capacity_drops_and_counts():
    tracer = Tracer(Simulator(), capacity=2)
    for index in range(5):
        tracer.record("cat", f"s{index}")
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(Simulator(), capacity=0)


def test_event_rendering():
    tracer = Tracer(Simulator())
    tracer.record("evolved", "obj#1", to_version="1.1")
    text = tracer.render_timeline()
    assert "evolved" in text
    assert "to_version=1.1" in text


# ----------------------------------------------------------------------
# Runtime hooks
# ----------------------------------------------------------------------


def test_untraced_runtime_records_nothing(runtime):
    manager = make_sorter_manager(runtime)
    create_dcdo(runtime, manager)  # must not blow up without a tracer
    assert runtime.tracer is None


def test_full_lifecycle_is_traced(runtime):
    from repro.core.policies import GeneralEvolutionPolicy

    runtime.tracer = Tracer(runtime.sim)
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, obj = create_dcdo(runtime, manager)

    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("compare", "compare-desc", replace_current=True)
    descriptor.remove_component("compare-asc")
    manager.mark_instantiable(version)
    runtime.sim.run_process(manager.evolve_instance(loid, version))

    tracer = runtime.tracer
    assert len(tracer.in_category("version-instantiable")) >= 2  # v1 + v1.1
    assert len(tracer.in_category("current-version-set")) == 1
    assert len(tracer.in_category("instance-created")) == 1

    evolved = tracer.in_category("evolved")
    assert len(evolved) == 1
    assert evolved[0].detail("from_version") == "1"
    assert evolved[0].detail("to_version") == str(version)
    assert evolved[0].detail("added") == 1
    assert evolved[0].detail("removed") == 1

    incorporations = tracer.in_category("component-incorporated")
    # Two at creation (bootstrap) + one during evolution.
    assert len(incorporations) == 3
    assert sum(1 for event in incorporations if event.detail("bootstrap")) == 2

    removed = tracer.in_category("component-removed")
    assert [event.detail("component") for event in removed] == ["compare-asc"]


def test_migration_is_traced(runtime):
    runtime.tracer = Tracer(runtime.sim)
    manager = make_sorter_manager(runtime)
    loid, __ = create_dcdo(runtime, manager)
    source = manager.record(loid).host.name
    target = next(name for name in runtime.hosts if name != source)
    runtime.sim.run_process(manager.migrate_instance(loid, target))
    migrations = runtime.tracer.in_category("instance-migrated")
    assert len(migrations) == 1
    assert migrations[0].detail("source") == source
    assert migrations[0].detail("target") == target
    assert migrations[0].subject == str(loid)


def test_trace_timestamps_are_simulated_time(runtime):
    runtime.tracer = Tracer(runtime.sim)
    manager = make_sorter_manager(runtime)
    before = runtime.sim.now
    create_dcdo(runtime, manager)
    created = runtime.tracer.in_category("instance-created")[0]
    # Creation takes >1 simulated second (process spawn).
    assert created.at >= before + 1.0
