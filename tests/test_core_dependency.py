"""Unit tests for the four dependency types and the checker."""

import pytest

from repro.core import Dependency, DependencyViolation
from repro.core.dependency import check_dependencies


def test_type_classification_matches_paper():
    assert Dependency("F1", "F2", dependent_component="C1").type_letter == "A"
    assert (
        Dependency("F1", "F2", dependent_component="C1", required_component="C2").type_letter
        == "B"
    )
    assert Dependency("F1", "F2", required_component="C2").type_letter == "C"
    assert Dependency("F1", "F2").type_letter == "D"


def test_structural_vs_behavioral():
    assert Dependency("F1", "F2", dependent_component="C1").is_structural
    assert Dependency("F1", "F2").is_structural
    assert Dependency("F1", "F2", required_component="C2").is_behavioral
    assert Dependency(
        "F1", "F2", dependent_component="C1", required_component="C2"
    ).is_behavioral


def test_str_uses_paper_notation():
    dep = Dependency("F1", "F2", dependent_component="C1", required_component="C2")
    assert str(dep) == "Type B: [F1, C1] -> [F2, C2]"
    dep_d = Dependency("F1", "F2")
    assert str(dep_d) == "Type D: [F1] -> [F2]"


class FakeState:
    """Minimal enabled-state stand-in for exercising the checker."""

    def __init__(self, enabled_pairs):
        self._enabled = set(enabled_pairs)

    def is_enabled(self, function, component):
        return (function, component) in self._enabled

    def enabled_components_of(self, function):
        return {comp for fn, comp in self._enabled if fn == function}


def run_check(dependencies, enabled_pairs):
    state = FakeState(enabled_pairs)
    check_dependencies(dependencies, state.is_enabled, state.enabled_components_of)


def test_type_a_satisfied_by_any_implementation():
    dep = Dependency("F1", "F2", dependent_component="C1")
    run_check([dep], [("F1", "C1"), ("F2", "anything")])


def test_type_a_violated_when_no_implementation():
    dep = Dependency("F1", "F2", dependent_component="C1")
    with pytest.raises(DependencyViolation):
        run_check([dep], [("F1", "C1")])


def test_type_a_inactive_dependent_is_fine():
    dep = Dependency("F1", "F2", dependent_component="C1")
    run_check([dep], [("F1", "other-component")])  # C1's impl not enabled


def test_type_b_requires_exact_implementation():
    dep = Dependency("F1", "F2", dependent_component="C1", required_component="C2")
    run_check([dep], [("F1", "C1"), ("F2", "C2")])
    with pytest.raises(DependencyViolation):
        run_check([dep], [("F1", "C1"), ("F2", "C3")])


def test_type_c_any_dependent_impl_triggers():
    dep = Dependency("F1", "F2", required_component="C2")
    with pytest.raises(DependencyViolation):
        run_check([dep], [("F1", "whatever")])
    run_check([dep], [("F1", "whatever"), ("F2", "C2")])


def test_type_d_any_to_any():
    dep = Dependency("F1", "F2")
    with pytest.raises(DependencyViolation):
        run_check([dep], [("F1", "C9")])
    run_check([dep], [("F1", "C9"), ("F2", "C7")])


def test_no_dependents_enabled_passes_vacuously():
    deps = [Dependency("F1", "F2"), Dependency("F3", "F4", required_component="C")]
    run_check(deps, [("F2", "C1")])


def test_self_dependency_for_recursive_functions():
    """§3.2: "by indicating that a function depends on itself, a
    programmer can ensure that recursive functions are not changed or
    removed while they are executing" — structurally, a self-dependency
    is satisfiable while enabled."""
    dep = Dependency("F1", "F1", dependent_component="C1", required_component="C1")
    run_check([dep], [("F1", "C1")])
    run_check([dep], [])


def test_dependency_chain_checked_link_by_link():
    deps = [Dependency("F1", "F2"), Dependency("F2", "F3")]
    run_check(deps, [("F1", "C"), ("F2", "C"), ("F3", "C")])
    with pytest.raises(DependencyViolation):
        run_check(deps, [("F1", "C"), ("F2", "C")])


def test_dependencies_are_hashable_and_comparable():
    a = Dependency("F1", "F2")
    b = Dependency("F1", "F2")
    assert a == b
    assert len({a, b}) == 1
