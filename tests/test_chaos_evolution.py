"""Chaos tests: evolution propagation under randomized fault schedules.

The acceptance invariant, checked across many seeded scenarios: after
all faults heal and the convergence loop runs, every surviving DCDO
reflects the latest instantiable version, with each configuration
applied exactly once per live object (at-least-once delivery, idempotent
application → exactly-once effect).  A dedicated test crashes the
manager mid-propagation and shows journal recovery finishing the wave
without re-deriving the version or double-applying.
"""

import pytest

from repro.cluster import build_lan
from repro.cluster.chaos import (
    ChaosCoordinator,
    ChaosSchedule,
    crash_host,
    drive_to_convergence,
)
from repro.core import DeliveryStatus, ManagerJournal, recover_manager
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import PrefixPartition, RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager

# Tight-ish retry policy so chaos runs converge in bounded sim time.
FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)


def build_fleet(sim_seed=7, hosts=5, instances=4, **manager_kwargs):
    """A LAN runtime + journaled sorter manager + instances spread out.

    The manager lives on host00 (the default), so schedules that crash
    host00 exercise manager recovery; instances land one per host.
    """
    runtime = LegionRuntime(build_lan(hosts, seed=sim_seed))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
        journal=journal,
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    host_names = list(runtime.hosts)
    loids = []
    for index in range(instances):
        loid, __ = create_dcdo(
            runtime, manager, host_name=host_names[index % len(host_names)]
        )
        loids.append(loid)
    return runtime, manager, journal, loids


def derive_v2(manager):
    """Derive the descending-sort version from the current version."""
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    return version


@pytest.mark.parametrize("seed", range(20))
def test_chaos_schedule_converges_exactly_once(seed):
    """Across 20 seeded fault schedules: all survivors converge to the
    latest version and no object applies it more than once."""
    runtime, manager, journal, loids = build_fleet(sim_seed=100 + seed)
    original_objs = {loid: manager.record(loid).obj for loid in loids}
    coordinator = ChaosCoordinator(runtime, journals={"Sorter": journal})
    schedule = ChaosSchedule.generate(
        seed, list(runtime.hosts), duration_s=120.0
    )
    schedule.install(runtime, coordinator)
    v2 = derive_v2(manager)

    def scenario():
        # New current version lands just before the first fault can
        # fire (crashes are scheduled at t >= 1.0).
        yield runtime.sim.timeout(0.5)
        manager.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        tracker = yield from drive_to_convergence(
            runtime, "Sorter", journal=journal, retry_policy=FAST_RETRY
        )
        return tracker

    tracker = runtime.sim.run_process(scenario())
    runtime.sim.run()

    assert tracker is not None and tracker.all_acked, (
        f"seed {seed}: propagation did not converge: {tracker.summary()}"
    )
    manager_now = runtime.class_of("Sorter")
    assert manager_now.is_active
    assert manager_now.current_version == v2
    for loid in loids:
        assert manager_now.instance_version(loid) == v2, (
            f"seed {seed}: {loid} not at latest version in the DCDO table"
        )
        record = manager_now.record(loid)
        assert record.active, f"seed {seed}: {loid} not recovered"
        obj = record.obj
        assert obj.version == v2, f"seed {seed}: {loid} object at {obj.version}"
        applied = obj.applications_by_version.get(v2, 0)
        # A rebuilt (crash-recovered) object may legitimately have been
        # *built* at v2 rather than evolved to it — zero applications.
        assert applied <= 1, (
            f"seed {seed}: {loid} applied v2 {applied} times (duplicate)"
        )
        if obj is original_objs[loid]:
            assert applied == 1, (
                f"seed {seed}: surviving {loid} applied v2 {applied} times"
            )


def derive_v2_removing_sort(manager):
    """Derive a version that drops ``sort`` (and its component) entirely."""
    version = manager.derive_version(manager.current_version)
    descriptor = manager.descriptor_of(version)
    descriptor.disable("sort", "sorter")
    descriptor.remove_component("sorter")
    manager.mark_instantiable(version)
    return version


@pytest.mark.parametrize("seed", range(6))
def test_chaos_lease_stub_never_succeeds_on_removed_function(seed):
    """Lease-caching stubs under chaos: epoch leases may go stale, but
    no call against the removed ``sort`` function ever *succeeds* —
    stale leases only ever cost a MethodNotFound plus a re-query, never
    a wrong answer (§3.1 preserved through the fast path)."""
    from repro.core.dcdo import RemovePolicy
    from repro.core.stub import DCDOStub

    runtime, manager, journal, loids = build_fleet(
        sim_seed=300 + seed, remove_policy=RemovePolicy.delay()
    )
    coordinator = ChaosCoordinator(runtime, journals={"Sorter": journal})
    schedule = ChaosSchedule.generate(seed, list(runtime.hosts), duration_s=120.0)
    schedule.install(runtime, coordinator)
    v2 = derive_v2_removing_sort(manager)

    outcomes = []  # (ok, payload) per completed sort attempt
    stubs = []
    stop = {"flag": False}

    def traffic(client_host, loid):
        client = runtime.make_client(client_host)
        stub = DCDOStub(
            client, loid, retry_on_disappearance=True, lease_ttl_s=5.0
        )
        stubs.append(stub)
        values = [3, 1, 2]
        while not stop["flag"]:
            try:
                result = yield from stub.call("sort", values, check_first=True)
            except Exception as error:  # noqa: BLE001 - chaos traffic
                outcomes.append((False, error))
                if client.endpoint.is_closed:
                    return  # our own host crashed: this caller is gone
            else:
                outcomes.append((True, result))
            yield runtime.sim.timeout(0.5)

    def scenario():
        host_names = list(runtime.hosts)
        for index, loid in enumerate(loids[:3]):
            runtime.sim.spawn(
                traffic(host_names[(index + 1) % len(host_names)], loid),
                name=f"traffic:{loid}",
            )
        yield runtime.sim.timeout(0.5)
        manager.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        tracker = yield from drive_to_convergence(
            runtime, "Sorter", journal=journal, retry_policy=FAST_RETRY
        )
        stop["flag"] = True
        return tracker

    tracker = runtime.sim.run_process(scenario())
    runtime.sim.run()

    assert tracker is not None and tracker.all_acked, (
        f"seed {seed}: propagation did not converge: {tracker.summary()}"
    )
    manager_now = runtime.class_of("Sorter")
    for loid in loids:
        assert manager_now.instance_version(loid) == v2
        obj = manager_now.record(loid).obj
        assert "sort" not in obj.dfm.exported_interface()
        assert obj.applications_by_version.get(v2, 0) <= 1
    # Every call that *succeeded* produced the correct pre-evolution
    # answer; once sort was removed, stale leases surface as errors,
    # never as bogus successes.
    successes = [payload for ok, payload in outcomes if ok]
    assert all(result == [1, 2, 3] for result in successes), successes
    assert successes, f"seed {seed}: traffic never got through"
    # The lease fast path was genuinely exercised.
    assert sum(stub.lease_hits for stub in stubs) > 0


def test_manager_crash_mid_propagation_resumes_from_journal():
    """Crash the manager with one delivery still pending; the journal
    recovery must finish that delivery only — same version ids, no
    re-derivation, no double application."""
    runtime, manager, journal, loids = build_fleet()
    class_loid = manager.loid
    v1 = manager.current_version
    v2 = derive_v2(manager)
    all_versions = set(manager.versions())
    # Cut the manager's host off from host03 so that instance's
    # delivery cannot ack before the crash.
    runtime.network.faults.add_partition(
        PrefixPartition(["host00/"], ["host03/"], start=0.0, end=200.0)
    )
    blocked_loid = loids[3]

    def scenario():
        yield runtime.sim.timeout(1.0)
        manager.set_current_version_async(v2)
        # Wait for the three reachable deliveries (host00-02) to ack.
        for __ in range(120):
            tracker = manager.propagation(v2)
            if tracker and tracker.count(DeliveryStatus.ACKED) >= 3:
                break
            yield runtime.sim.timeout(1.0)
        tracker = manager.propagation(v2)
        assert tracker.count(DeliveryStatus.ACKED) == 3
        assert tracker.delivery(blocked_loid).status is DeliveryStatus.PENDING
        acked_before = {
            d.loid
            for d in tracker.deliveries()
            if d.status is DeliveryStatus.ACKED
        }
        crash_host(runtime, runtime.host("host00"))
        # Restart well after the partition heals, then recover from
        # the journal (recovery resumes open propagations itself).
        yield runtime.sim.timeout(300.0 - runtime.sim.now)
        runtime.host("host00").restart()
        recovered = yield from recover_manager(runtime, journal)
        return recovered, acked_before

    recovered, acked_before = runtime.sim.run_process(scenario())
    runtime.sim.run()

    # Same identity, same version tree: nothing was re-derived.
    assert recovered is runtime.class_of("Sorter")
    assert recovered.loid == class_loid
    assert set(recovered.versions()) == all_versions
    assert recovered.current_version == v2
    tracker = recovered.propagation(v2)
    assert tracker.complete and tracker.all_acked
    # The blocked instance got exactly one application, post-recovery.
    blocked_obj = recovered.record(blocked_loid).obj
    assert blocked_obj.version == v2
    assert blocked_obj.applications_by_version.get(v2) == 1
    assert blocked_obj.duplicate_deliveries == 0
    # Already-acked survivors (host01/02) were not re-delivered.
    for loid in loids[1:3]:
        assert loid in acked_before
        obj = recovered.record(loid).obj
        assert obj.applications_by_version.get(v2) == 1
        assert obj.duplicate_deliveries == 0
    # The co-located instance died with the manager's host; recovering
    # it rebuilds straight at its journaled version — no re-application.
    runtime.sim.run_process(recovered.recover_instance(loids[0]))
    obj0 = recovered.record(loids[0]).obj
    assert obj0.version == v2
    assert obj0.applications_by_version.get(v2, 0) == 0
    assert recovered.instance_version(loids[0]) == v2
    # Recovery is visible in the fleet metrics.
    snapshot = runtime.network.metrics.snapshot()
    assert snapshot.get("manager.recoveries") == 1
    assert snapshot.get("host.crashes") == 1
    assert snapshot.get("host.restarts") == 1


def test_coordinator_auto_recovers_manager_and_instances():
    """A scheduled outage of the manager's host heals hands-free: the
    coordinator recovers the manager from its journal and rebuilds the
    co-located instance on restart."""
    runtime, manager, journal, loids = build_fleet(instances=3)
    coordinator = ChaosCoordinator(runtime, journals={"Sorter": journal})
    coordinator.crash_plan.schedule_outage(
        runtime.host("host00"), crash_at=5.0, restart_at=40.0
    )
    runtime.sim.run(until=100.0)

    recovered = runtime.class_of("Sorter")
    assert recovered is not manager  # a fresh object, same identity
    assert recovered.loid == manager.loid
    assert recovered.is_active
    kinds = [(kind, what) for __, kind, what in coordinator.recovery_log]
    assert ("manager", "Sorter") in kinds
    assert ("instance", loids[0]) in kinds
    assert coordinator.crash_log and coordinator.crash_log[0][1] == "host00"
    record = recovered.record(loids[0])
    assert record.active and record.obj.version == manager.current_version


def test_chaos_schedule_is_deterministic():
    """Same seed → identical schedule; different seed → (almost surely)
    a different one."""
    names = [f"host{i:02d}" for i in range(5)]
    a = ChaosSchedule.generate(3, names)
    b = ChaosSchedule.generate(3, names)
    assert (a.crashes, a.partitions, a.drops) == (b.crashes, b.partitions, b.drops)
    c = ChaosSchedule.generate(4, names)
    assert (a.crashes, a.partitions, a.drops) != (c.crashes, c.partitions, c.drops)
    assert a.heal_time > 0.0
