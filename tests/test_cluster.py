"""Unit tests for the cluster layer: hosts, vaults, caches, testbeds."""

import pytest

from repro.cluster import Calibration, FileCache, Testbed, build_centurion, build_lan


# ----------------------------------------------------------------------
# FileCache
# ----------------------------------------------------------------------


def test_cache_insert_and_lookup():
    cache = FileCache()
    cache.insert("blob", 100)
    assert "blob" in cache
    assert cache.lookup("blob") == 100
    assert cache.hits == 1


def test_cache_miss_counted():
    cache = FileCache()
    assert cache.lookup("nope") is None
    assert cache.misses == 1


def test_cache_evict():
    cache = FileCache()
    cache.insert("blob", 100)
    assert cache.evict("blob")
    assert not cache.evict("blob")
    assert "blob" not in cache


def test_cache_lru_eviction_under_capacity():
    cache = FileCache(capacity_bytes=250)
    cache.insert("a", 100)
    cache.insert("b", 100)
    cache.lookup("a")  # a becomes most-recent
    cache.insert("c", 100)  # exceeds capacity: evicts b (LRU)
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.evictions == 1


def test_cache_rejects_oversized_entry():
    cache = FileCache(capacity_bytes=50)
    with pytest.raises(ValueError, match="exceeds"):
        cache.insert("big", 100)


def test_cache_used_bytes_and_clear():
    cache = FileCache()
    cache.insert("a", 30)
    cache.insert("b", 70)
    assert cache.used_bytes == 100
    cache.clear()
    assert len(cache) == 0


def test_cache_invalid_parameters():
    with pytest.raises(ValueError):
        FileCache(capacity_bytes=0)
    cache = FileCache()
    with pytest.raises(ValueError):
        cache.insert("x", -1)


# ----------------------------------------------------------------------
# Host
# ----------------------------------------------------------------------


def test_host_cpu_work_scales_with_cpu_factor():
    testbed = Testbed()
    slow = testbed.add_host("slow", cpu_factor=1.0)
    fast = testbed.add_host("fast", cpu_factor=2.0)
    times = {}

    def worker(host, tag):
        start = testbed.sim.now
        yield host.cpu_work(4.0)
        times[tag] = testbed.sim.now - start

    testbed.sim.spawn(worker(slow, "slow"))
    testbed.sim.spawn(worker(fast, "fast"))
    testbed.sim.run()
    assert times["slow"] == pytest.approx(4.0)
    assert times["fast"] == pytest.approx(2.0)


def test_host_spawn_process_charges_and_registers():
    testbed = Testbed()
    host = testbed.add_host("h")

    def spawner():
        process = yield from host.spawn_process("some-loid")
        return process

    start = testbed.sim.now
    process = testbed.sim.run_process(spawner())
    elapsed = testbed.sim.now - start
    assert 0.9 <= elapsed <= 1.1  # process_spawn_s with jitter
    assert process.pid in host.processes
    process.kill()
    assert process.pid not in host.processes


def test_host_rejects_bad_cpu_factor():
    testbed = Testbed()
    with pytest.raises(ValueError):
        testbed.add_host("bad", cpu_factor=0)


def test_negative_cpu_work_rejected():
    testbed = Testbed()
    host = testbed.add_host("h")
    with pytest.raises(ValueError):
        host.cpu_work(-1)


# ----------------------------------------------------------------------
# Vault
# ----------------------------------------------------------------------


def test_vault_store_and_load_roundtrip():
    testbed = Testbed()
    host = testbed.add_host("h")
    vault = testbed.vaults["h"]

    def roundtrip():
        yield from vault.store("loid", {"x": 1}, 1_000_000)
        opr = yield from vault.load("loid")
        return opr

    opr = testbed.sim.run_process(roundtrip())
    assert opr.state == {"x": 1}
    assert opr.size_bytes == 1_000_000
    assert vault.holds("loid")
    assert vault.writes == 1
    assert vault.reads == 1


def test_vault_io_takes_disk_time():
    testbed = Testbed()
    testbed.add_host("h")
    vault = testbed.vaults["h"]

    def store_big():
        yield from vault.store("loid", None, 20_000_000)  # 1 s at 20 MB/s

    start = testbed.sim.now
    testbed.sim.run_process(store_big())
    assert testbed.sim.now - start >= 1.0


def test_vault_load_missing_raises():
    testbed = Testbed()
    testbed.add_host("h")
    vault = testbed.vaults["h"]
    with pytest.raises(KeyError):
        testbed.sim.run_process(vault.load("ghost"))


def test_vault_discard():
    testbed = Testbed()
    testbed.add_host("h")
    vault = testbed.vaults["h"]
    testbed.sim.run_process(vault.store("loid", None, 10))
    vault.discard("loid")
    assert not vault.holds("loid")


# ----------------------------------------------------------------------
# Testbeds and calibration
# ----------------------------------------------------------------------


def test_centurion_matches_paper_testbed():
    testbed = build_centurion()
    assert len(testbed.hosts) == 16
    assert all(host.architecture == "x86-linux" for host in testbed.hosts.values())
    # 100 Mbps in bytes/second on every port.
    assert testbed.calibration.network_bandwidth_bps == pytest.approx(12.5e6)


def test_build_lan_cycles_architectures():
    testbed = build_lan(4, architectures=("a1", "a2"))
    archs = [host.architecture for host in testbed.hosts.values()]
    assert archs == ["a1", "a2", "a1", "a2"]


def test_build_lan_requires_hosts():
    with pytest.raises(ValueError):
        build_lan(0)


def test_duplicate_host_rejected():
    testbed = Testbed()
    testbed.add_host("h")
    with pytest.raises(ValueError, match="already exists"):
        testbed.add_host("h")


def test_calibration_download_model_hits_paper_anchors():
    calibration = Calibration()
    assert 3.5 <= calibration.download_time(550_000) <= 4.5
    assert 15.0 <= calibration.download_time(5_100_000) <= 25.0


def test_calibration_defaults_are_immutable_per_instance():
    a = Calibration()
    b = Calibration()
    a.extra["custom"] = 1
    assert "custom" not in b.extra
