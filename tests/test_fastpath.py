"""The invocation fast path: epoch leases, batching, windowed fan-out."""

import pytest

from tests.conftest import create_dcdo, make_sorter_components, make_sorter_manager

from repro.core.dfm import DynamicFunctionMapper
from repro.core.stub import DCDOStub
from repro.legion.errors import MethodNotFound
from repro.net import Endpoint, Network, run_windowed
from repro.obs.metrics import Timer
from repro.sim import Simulator


# ----------------------------------------------------------------------
# DFM: configuration epoch and secondary indexes
# ----------------------------------------------------------------------


def make_dfm_with_sorter():
    dfm = DynamicFunctionMapper()
    sorter, compare_asc, compare_desc = make_sorter_components()
    for component in (sorter, compare_asc, compare_desc):
        dfm.add_component(component, next(iter(component.variants.values())))
    return dfm, (sorter, compare_asc, compare_desc)


def test_epoch_bumps_on_every_mutation():
    dfm, __ = make_dfm_with_sorter()
    epoch = dfm.epoch
    assert epoch >= 3  # one bump per add_component
    dfm.enable("sort", "sorter")
    assert dfm.epoch == epoch + 1
    dfm.enable("compare", "compare-asc")
    dfm.disable("compare", "compare-asc")
    assert dfm.epoch == epoch + 3
    dfm.set_exported("sort", "sorter", False)
    assert dfm.epoch == epoch + 4
    dfm.remove_component("compare-desc")
    assert dfm.epoch == epoch + 5


def test_epoch_untouched_by_reads():
    dfm, __ = make_dfm_with_sorter()
    epoch = dfm.epoch
    dfm.entries_for("compare")
    dfm.enabled_components_of("compare")
    dfm.exported_interface()
    dfm.function_names()
    assert dfm.epoch == epoch


def test_secondary_indexes_track_add_and_remove():
    dfm, __ = make_dfm_with_sorter()
    assert {entry.component_id for entry in dfm.entries_for("compare")} == {
        "compare-asc",
        "compare-desc",
    }
    assert [entry.function for entry in dfm.entries_in("sorter")] == ["sort"]
    assert dfm.function_names() == ["compare", "sort"]
    dfm.remove_component("compare-asc")
    assert {entry.component_id for entry in dfm.entries_for("compare")} == {
        "compare-desc"
    }
    assert dfm.entries_in("compare-asc") == []
    dfm.remove_component("compare-desc")
    assert dfm.entries_for("compare") == []
    assert dfm.function_names() == ["sort"]


def test_enabled_components_uses_index():
    dfm, __ = make_dfm_with_sorter()
    dfm.enable("compare", "compare-asc")
    assert dfm.enabled_components_of("compare") == {"compare-asc"}
    dfm.enable("compare", "compare-desc", replace_current=True)
    assert dfm.enabled_components_of("compare") == {"compare-desc"}


# ----------------------------------------------------------------------
# Epoch piggyback and the lease-caching stub
# ----------------------------------------------------------------------


def make_target(runtime):
    manager = make_sorter_manager(runtime)
    loid, obj = create_dcdo(runtime, manager, host_name="host00")
    client = runtime.make_client("host01")
    return manager, loid, obj, client


def test_replies_piggyback_epoch(runtime):
    __, loid, obj, client = make_target(runtime)
    assert client.invoker.observed_epoch(loid) is None
    client.call_sync(loid, "getVersion")
    assert client.invoker.observed_epoch(loid) == obj.dfm.epoch
    assert client.invoker.stats.epoch_observations == 1
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    assert client.invoker.observed_epoch(loid) == obj.dfm.epoch


def test_refresh_interface_is_one_rpc_with_epoch(runtime):
    __, loid, obj, client = make_target(runtime)
    stub = DCDOStub(client, loid, lease_ttl_s=10.0)
    before = client.invoker.stats.invocations
    functions = runtime.sim.run_process(stub.refresh_interface())
    assert client.invoker.stats.invocations - before == 1
    assert functions == {"sort", "compare"}
    assert stub.interface.version == "1"
    assert stub.interface.epoch == obj.dfm.epoch


def test_refresh_interface_falls_back_to_two_rpcs(runtime):
    __, loid, obj, client = make_target(runtime)
    del obj._methods["getStatus"]  # an object predating getStatus
    stub = DCDOStub(client, loid)
    before = client.invoker.stats.invocations
    functions = runtime.sim.run_process(stub.refresh_interface())
    # getStatus (bounced) + getInterface + getVersion.
    assert client.invoker.stats.invocations - before == 3
    assert functions == {"sort", "compare"}
    assert stub.interface.version == "1"
    assert stub.interface.epoch is None  # no epoch -> never lease-valid


def test_warm_lease_answers_supports_without_rpc(runtime):
    __, loid, __, client = make_target(runtime)
    stub = DCDOStub(client, loid, lease_ttl_s=10.0)
    runtime.sim.run_process(stub.refresh_interface())
    before = client.invoker.stats.invocations
    assert runtime.sim.run_process(stub.supports("sort")) is True
    assert runtime.sim.run_process(stub.supports("missing")) is False
    assert client.invoker.stats.invocations == before
    assert stub.lease_hits == 2 and stub.lease_misses == 0


def test_lease_expires_by_ttl(runtime):
    __, loid, __, client = make_target(runtime)
    stub = DCDOStub(client, loid, lease_ttl_s=0.5)

    def scenario():
        yield from stub.refresh_interface()
        yield runtime.sim.timeout(1.0)
        return (yield from stub.supports("sort"))

    before = client.invoker.stats.invocations
    assert runtime.sim.run_process(scenario()) is True
    assert client.invoker.stats.invocations > before
    assert stub.lease_misses == 1


def test_lease_invalidated_by_epoch_change(runtime):
    __, loid, __, client = make_target(runtime)
    stub = DCDOStub(client, loid, lease_ttl_s=60.0)
    runtime.sim.run_process(stub.refresh_interface())
    # A mutation observed through the same invoker (the piggybacked
    # epoch on the config call's own reply) invalidates the lease.
    client.call_sync(loid, "disableFunction", "sort", "sorter")
    before = client.invoker.stats.invocations
    assert runtime.sim.run_process(stub.supports("sort")) is False
    assert client.invoker.stats.invocations == before + 1
    assert stub.lease_misses == 1


def test_without_lease_supports_requeries(runtime):
    __, loid, __, client = make_target(runtime)
    stub = DCDOStub(client, loid)  # seed behavior: no lease
    runtime.sim.run_process(stub.refresh_interface())
    before = client.invoker.stats.invocations
    assert runtime.sim.run_process(stub.supports("sort")) is True
    assert client.invoker.stats.invocations == before + 1
    assert stub.lease_hits == 0


def test_check_first_hits_warm_lease(runtime):
    __, loid, __, client = make_target(runtime)
    stub = DCDOStub(client, loid, lease_ttl_s=60.0)
    stub.call_sync("sort", [3, 1, 2], check_first=True)  # cold: refresh + call
    before = client.invoker.stats.invocations
    assert stub.call_sync("sort", [3, 1, 2], check_first=True) == [1, 2, 3]
    assert client.invoker.stats.invocations == before + 1


def test_stale_lease_backstop_never_succeeds_on_removed_function(runtime):
    """A warm lease gone stale cannot make a removed function 'work'."""
    __, loid, __, client = make_target(runtime)
    stub = DCDOStub(client, loid, lease_ttl_s=60.0)
    runtime.sim.run_process(stub.refresh_interface())
    # Disable through a DIFFERENT client: our invoker never sees the
    # epoch change, so the lease stays (wrongly) warm.
    other = runtime.make_client("host02")
    other.call_sync(loid, "disableFunction", "sort", "sorter")
    assert runtime.sim.run_process(stub.supports("sort")) is True  # stale hit
    with pytest.raises(MethodNotFound):
        stub.call_sync("sort", [2, 1], check_first=True)
    assert stub.disappearances == 1


def test_binding_hit_miss_counters(runtime):
    __, loid, __, client = make_target(runtime)
    client.call_sync(loid, "getVersion")
    assert client.invoker.stats.binding_misses == 1
    assert client.invoker.stats.binding_hits == 0
    client.call_sync(loid, "getVersion")
    client.call_sync(loid, "getVersion")
    assert client.invoker.stats.binding_misses == 1
    assert client.invoker.stats.binding_hits == 2
    client.invoker.stats.reset()
    assert client.invoker.stats.binding_hits == 0


# ----------------------------------------------------------------------
# Transport batching and group primitives
# ----------------------------------------------------------------------


def make_pair(latency_s=0.001):
    sim = Simulator()
    network = Network(sim, latency_s=latency_s, bandwidth_bps=100_000_000)

    def handler(message):
        return (("echo", message.payload), 0)
        yield  # pragma: no cover - marks this as a generator

    a = Endpoint(network, "a")
    b = Endpoint(network, "b", request_handler=handler)
    return sim, network, a, b


def test_batching_coalesces_same_destination_requests():
    sim, network, a, b = make_pair()
    a.configure_batching(0.001)

    def caller(payload):
        result = yield from a.request("b", payload, timeout_s=5.0)
        return result

    def scenario():
        waiters = [sim.spawn(caller(i), name=f"caller{i}") for i in range(4)]
        from repro.sim.events import AllOf

        yield AllOf(sim, waiters)
        return [w.value for w in waiters]

    results = sim.run_process(scenario())
    assert results == [("echo", 0), ("echo", 1), ("echo", 2), ("echo", 3)]
    assert network.count_value("transport.batches_sent") == 1
    assert network.count_value("transport.batched_messages") == 4


def test_batching_flushes_at_max_batch():
    sim, network, a, b = make_pair()
    a.configure_batching(10.0, max_batch=2)  # huge window: only size flushes

    def scenario():
        waiters = [
            sim.spawn(a.request("b", i, timeout_s=30.0), name=f"c{i}")
            for i in range(4)
        ]
        from repro.sim.events import AllOf

        yield AllOf(sim, waiters)
        return sim.now

    finished = sim.run_process(scenario())
    assert finished < 1.0  # size-based flushes, not the 10 s window
    assert network.count_value("transport.batches_sent") == 2


def test_batching_off_by_default():
    sim, network, a, b = make_pair()
    assert not a.batching_enabled
    sim.run_process(a.request("b", "x", timeout_s=5.0))
    assert network.count_value("transport.batches_sent") == 0


def test_cast_and_broadcast():
    sim, network, a, b = make_pair()
    received = []
    b.set_oneway_handler(lambda message: received.append(message.payload))

    def scenario():
        a.cast("b", "one")
        a.broadcast(["b", "b"], "two")
        yield sim.timeout(0.1)

    sim.run_process(scenario())
    assert received == ["one", "two", "two"]
    assert network.count_value("transport.casts") == 3


def test_broadcall_collects_replies_and_errors():
    sim, network, a, b = make_pair()

    def handler(message):
        if message.payload == "boom":
            raise RuntimeError("no")
        return (("ok", message.payload), 0)
        yield  # pragma: no cover - marks this as a generator

    b.set_request_handler(handler)

    def scenario():
        outcomes = yield from a.broadcall(
            ["b", "nowhere"], "hello", timeout_s=0.05, max_attempts=1
        )
        return outcomes

    outcomes = sim.run_process(scenario())
    ok, value = outcomes["b"]
    assert ok and value == ("ok", "hello")
    ok, error = outcomes["nowhere"]
    assert not ok  # unreachable destination times out
    assert network.count_value("transport.broadcalls") == 1


# ----------------------------------------------------------------------
# run_windowed
# ----------------------------------------------------------------------


def test_run_windowed_bounds_concurrency():
    sim = Simulator()
    in_flight = {"now": 0, "peak": 0}

    def job(index):
        def body():
            in_flight["now"] += 1
            in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            yield sim.timeout(0.01)
            in_flight["now"] -= 1
            return index * 10

        return body

    def scenario():
        outcomes = yield from run_windowed(sim, [job(i) for i in range(10)], 3)
        return outcomes

    outcomes = sim.run_process(scenario())
    assert outcomes == [(True, i * 10) for i in range(10)]
    assert in_flight["peak"] == 3


def test_run_windowed_captures_errors_in_order():
    sim = Simulator()

    def ok():
        yield sim.timeout(0.001)
        return "fine"

    def bad():
        yield sim.timeout(0.001)
        raise ValueError("nope")

    def scenario():
        return (yield from run_windowed(sim, [ok, bad, ok], 2))

    outcomes = sim.run_process(scenario())
    assert outcomes[0] == (True, "fine")
    assert outcomes[2] == (True, "fine")
    ok_flag, error = outcomes[1]
    assert not ok_flag and isinstance(error, ValueError)


def test_run_windowed_rejects_bad_window():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.run_process(run_windowed(sim, [], 0))


# ----------------------------------------------------------------------
# Windowed manager fan-out
# ----------------------------------------------------------------------


def derive_desc_version(manager):
    v2 = manager.derive_version(manager.current_version)
    manager.incorporate_into(v2, "compare-desc")
    descriptor = manager.descriptor_of(v2)
    descriptor.enable("compare", "compare-desc", replace_current=True)
    manager.mark_instantiable(v2)
    return v2


def test_update_all_instances_windowed_matches_sequential(runtime):
    manager = make_sorter_manager(runtime)
    loids = [create_dcdo(runtime, manager)[0] for __ in range(6)]
    v2 = derive_desc_version(manager)
    manager.set_current_version(v2)
    results = runtime.sim.run_process(manager.update_all_instances(window=4))
    assert set(results) == set(loids)
    assert all(version == v2 for version in results.values())
    for loid in loids:
        assert manager.instance_version(loid) == v2


def test_propagate_version_windowed_faster_than_sequential():
    from repro.cluster import build_lan
    from repro.legion import LegionRuntime

    def wave(window):
        runtime = LegionRuntime(build_lan(4, seed=11))
        manager = make_sorter_manager(runtime, type_name=f"SorterW{window}")
        for index in range(8):
            create_dcdo(runtime, manager, host_name=f"host{index % 4:02d}")
        v2 = derive_desc_version(manager)
        manager.set_current_version(v2)
        started = runtime.sim.now
        tracker = runtime.sim.run_process(
            manager.propagate_version(v2, window=window)
        )
        assert tracker.complete
        assert not tracker.pending_loids()
        return runtime.sim.now - started

    sequential = wave(1)
    windowed = wave(8)
    assert windowed < sequential


def test_manager_rejects_bad_fanout_window(runtime):
    with pytest.raises(ValueError):
        make_sorter_manager(runtime, fanout_window=0)


# ----------------------------------------------------------------------
# Timer extremes
# ----------------------------------------------------------------------


def test_timer_max_min():
    timer = Timer("t")
    assert timer.max() is None and timer.min() is None
    for sample in (0.3, 0.1, 0.2):
        timer.record(sample)
    assert timer.max() == 0.3
    assert timer.min() == 0.1
