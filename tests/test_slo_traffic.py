"""Tests for tail-latency primitives and open-loop traffic.

Covers the observability half of SLO-gated rollouts: reservoir
quantiles on :class:`Timer`, sliding-window :class:`SLOMonitor`
evaluation on the sim clock, the open-loop arrival schedules (rate
accuracy against known processes), and the closed-loop client's error
accounting.
"""

import math
import random

import pytest

from repro.cluster import build_lan
from repro.legion import LegionRuntime
from repro.obs import SLO, SLOMonitor, Timer
from repro.obs.metrics import TIMER_RESERVOIR_SIZE
from repro.sim import Simulator
from repro.workloads import (
    BurstyArrivals,
    ClosedLoopClient,
    DiurnalArrivals,
    OpenLoopLoad,
    PoissonArrivals,
    make_noop_manager,
)


# ----------------------------------------------------------------------
# Timer percentiles (reservoir sampling)
# ----------------------------------------------------------------------


def test_timer_percentile_exact_below_cap():
    timer = Timer("t")
    for sample in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
        timer.record(sample)
    assert timer.percentile(0.50) == 5.0
    assert timer.percentile(0.90) == 9.0
    assert timer.percentile(1.0) == 10.0
    assert timer.percentile(0.0) == 1.0


def test_timer_percentile_uniform_distribution():
    """Reservoir quantiles track a known uniform distribution within a
    few percent even when most samples were discarded."""
    timer = Timer("t")
    rng = random.Random(42)
    n = 50_000
    for __ in range(n):
        timer.record(rng.uniform(0.0, 1.0))
    assert timer.count == n
    assert len(timer.samples) == TIMER_RESERVOIR_SIZE
    assert timer.percentile(0.50) == pytest.approx(0.50, abs=0.04)
    assert timer.percentile(0.99) == pytest.approx(0.99, abs=0.02)
    # Exact aggregates are unaffected by sampling.
    assert timer.mean() == pytest.approx(0.5, abs=0.01)


def test_timer_percentile_bimodal_tail():
    """A 5% slow mode must show up in p99 but not p50."""
    timer = Timer("t")
    rng = random.Random(7)
    for __ in range(20_000):
        timer.record(1.0 if rng.random() < 0.95 else 10.0)
    assert timer.percentile(0.50) == 1.0
    assert timer.percentile(0.99) == 10.0


def test_timer_bounded_memory():
    timer = Timer("t", reservoir_size=64)
    for index in range(10_000):
        timer.record(float(index))
    assert len(timer.samples) == 64
    assert timer.count == 10_000
    assert timer.max() == 9999.0
    assert timer.min() == 0.0


def test_timer_percentile_empty_and_invalid():
    timer = Timer("t")
    assert timer.percentile(0.99) is None
    timer.record(1.0)
    with pytest.raises(ValueError):
        timer.percentile(1.5)


# ----------------------------------------------------------------------
# SLOMonitor
# ----------------------------------------------------------------------


def _slo(**kwargs):
    defaults = dict(
        name="svc",
        latency_targets={0.99: 0.100},
        max_error_rate=0.05,
        min_samples=10,
    )
    defaults.update(kwargs)
    return SLO(**defaults)


def test_slo_monitor_abstains_below_min_samples():
    sim = Simulator()
    monitor = SLOMonitor(sim, _slo(min_samples=10), window_s=10.0)
    for __ in range(9):
        monitor.record_success(5.0)  # terrible, but too few to judge
    status = monitor.evaluate()
    assert status.healthy
    assert status.insufficient


def test_slo_monitor_latency_breach_and_log():
    sim = Simulator()
    monitor = SLOMonitor(sim, _slo(), window_s=10.0)
    for __ in range(20):
        monitor.record_success(0.01)
    assert monitor.healthy()
    for __ in range(20):
        monitor.record_success(0.5)
    status = monitor.evaluate()
    assert not status.healthy
    assert any("p99" in violation for violation in status.violations)
    assert len(monitor.breach_log) == 1  # one healthy->breached edge


def test_slo_monitor_error_rate_breach():
    sim = Simulator()
    monitor = SLOMonitor(sim, _slo(latency_targets={}), window_s=10.0)
    for __ in range(19):
        monitor.record_success(0.01)
    for __ in range(3):
        monitor.record_error(0.01)
    status = monitor.evaluate()
    assert not status.healthy
    assert status.error_rate == pytest.approx(3 / 22)
    assert any("error rate" in violation for violation in status.violations)


def test_slo_monitor_window_expiry_on_sim_clock():
    """Old observations stop counting once the sim clock moves past the
    window — a recovered service reads healthy again."""
    sim = Simulator()
    monitor = SLOMonitor(sim, _slo(), window_s=5.0)

    def scenario():
        for __ in range(20):
            monitor.record_success(1.0)  # breaching latencies at t=0
        assert not monitor.healthy()
        yield sim.timeout(6.0)
        status = monitor.evaluate()
        assert status.samples == 0
        assert status.healthy  # abstains: the bad window aged out
        for __ in range(20):
            monitor.record_success(0.01)
        assert monitor.healthy()
        return True

    assert sim.run_process(scenario())


def test_slo_monitor_bounded_memory():
    sim = Simulator()
    monitor = SLOMonitor(sim, _slo(), window_s=10.0, max_window_samples=100)
    for __ in range(10_000):
        monitor.record_success(0.01)
    assert len(monitor._window) == 100
    assert monitor.total_calls == 10_000


def test_slo_validation():
    with pytest.raises(ValueError):
        SLO(name="bad", latency_targets={1.5: 0.1})
    with pytest.raises(ValueError):
        SLO(name="bad", latency_targets={0.99: -1.0})
    with pytest.raises(ValueError):
        SLO(name="bad", latency_targets={}, max_error_rate=2.0)


# ----------------------------------------------------------------------
# Arrival schedules: rate accuracy
# ----------------------------------------------------------------------


def _count_arrivals(schedule, rng, duration_s):
    now, count = 0.0, 0
    while True:
        now += schedule.interarrival(now, rng)
        if now >= duration_s:
            return count
        count += 1


def test_poisson_arrivals_rate_accuracy():
    schedule = PoissonArrivals(50.0)
    count = _count_arrivals(schedule, random.Random(1), 100.0)
    assert count == pytest.approx(5000, rel=0.05)


def test_poisson_population_superposition():
    """A million clients at 1 mHz each is one 1 kHz stream."""
    schedule = PoissonArrivals.population(1_000_000, 0.001)
    assert schedule.rate_hz == pytest.approx(1000.0)
    count = _count_arrivals(schedule, random.Random(2), 10.0)
    assert count == pytest.approx(10_000, rel=0.05)


def test_bursty_arrivals_rate_split():
    schedule = BurstyArrivals(
        base_rate_hz=10.0, burst_rate_hz=100.0, period_s=10.0, burst_fraction=0.2
    )
    assert schedule.rate(0.5) == 100.0
    assert schedule.rate(5.0) == 10.0
    # Expected arrivals per period: 2 s * 100 + 8 s * 10 = 280.
    count = _count_arrivals(schedule, random.Random(3), 100.0)
    assert count == pytest.approx(2800, rel=0.07)


def test_diurnal_arrivals_follow_the_sun():
    schedule = DiurnalArrivals(
        peak_rate_hz=100.0, trough_rate_hz=10.0, period_s=100.0
    )
    assert schedule.rate(0.0) == pytest.approx(100.0)
    assert schedule.rate(50.0) == pytest.approx(10.0)
    # Mean rate over a full period is (peak + trough) / 2 = 55 Hz.
    count = _count_arrivals(schedule, random.Random(4), 100.0)
    assert count == pytest.approx(5500, rel=0.07)


def test_arrival_schedule_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(base_rate_hz=10.0, burst_rate_hz=5.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(peak_rate_hz=5.0, trough_rate_hz=10.0)


# ----------------------------------------------------------------------
# Open-loop load against a live fleet
# ----------------------------------------------------------------------


def _noop_fleet(instances=4, seed=11):
    runtime = LegionRuntime(build_lan(4, seed=seed))
    manager, __ = make_noop_manager(runtime, "Svc", 2, 3, host_name="host00")
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{(i % 3) + 1:02d}")
        )
        for i in range(instances)
    ]
    return runtime, manager, loids


def test_open_loop_load_generates_offered_rate():
    runtime, __, loids = _noop_fleet()
    monitor = SLOMonitor(
        runtime.sim, _slo(latency_targets={0.99: 5.0}), window_s=30.0
    )
    load = OpenLoopLoad(
        runtime.make_client(host_name="host03"),
        loids,
        PoissonArrivals(30.0),
        runtime.rng.stream("traffic"),
        duration_s=20.0,
        monitor=monitor,
    )
    count = runtime.sim.run_process(load.run())
    assert count == load.issued_calls
    assert load.issued_calls == pytest.approx(600, rel=0.15)
    runtime.sim.run()  # drain in-flight calls
    assert load.error_calls == 0
    assert load.ok_calls == load.issued_calls
    assert monitor.total_calls == load.issued_calls
    assert load.error_rate() == 0.0


def test_open_loop_load_sheds_beyond_max_in_flight():
    runtime, __, loids = _noop_fleet()
    load = OpenLoopLoad(
        runtime.make_client(host_name="host03"),
        loids,
        PoissonArrivals(200.0),
        runtime.rng.stream("traffic"),
        duration_s=5.0,
        max_in_flight=3,
    )
    runtime.sim.run_process(load.run())
    runtime.sim.run()
    assert load.shed_calls > 0
    assert load.peak_in_flight <= 3
    assert load.issued_calls + load.shed_calls > 0
    assert load.done_calls == load.issued_calls


# ----------------------------------------------------------------------
# ClosedLoopClient error accounting (regression)
# ----------------------------------------------------------------------


def test_closed_loop_client_counts_failures():
    """Failed calls must show up in error_rate() with a time-to-failure
    sample — not silently vanish from the aggregates."""
    runtime, manager, loids = _noop_fleet(instances=1)
    looper = ClosedLoopClient(
        runtime.make_client(host_name="host03"), loids[0], "ping", calls=10
    )
    runtime.sim.run_process(looper.run())
    assert looper.completed_calls == 10
    assert looper.failed_calls == 0
    assert looper.error_rate() == 0.0

    # Point a second client at a LOID that does not exist: every call
    # errors, and each error carries the time it burned.
    from repro.legion.loid import mint_loid

    ghost = ClosedLoopClient(
        runtime.make_client(host_name="host03"),
        mint_loid("ghost", "Ghost"),
        "ping",
        calls=5,
    )
    runtime.sim.run_process(ghost.run())
    assert ghost.completed_calls == 0
    assert ghost.failed_calls == 5
    assert ghost.total_calls == 5
    assert ghost.error_rate() == 1.0
    assert len(ghost.failure_latencies) == 5
    assert all(sample >= 0.0 for sample in ghost.failure_latencies)


def test_closed_loop_client_error_rate_none_before_calls():
    runtime, __, loids = _noop_fleet(instances=1)
    looper = ClosedLoopClient(
        runtime.make_client(host_name="host03"), loids[0], "ping", calls=0
    )
    assert looper.error_rate() is None
