"""Gray-failure fabric: asymmetric faults, hedging, health scoring.

Unit coverage for the PR 8 gray-failure stack below the chaos sweep:

- the new fault kinds (:class:`OneWayPartition`, :class:`LinkFlap`,
  :class:`SlowLink`, :class:`ReorderRule`, :class:`DuplicateRule`) and
  their seeded determinism;
- :meth:`FaultPlan.stats` / counter-preserving :meth:`FaultPlan.clear`;
- exactly-once request invocation under *fabric-level* duplication
  (the dedupe table's first exerciser that is not the retry path);
- hedged requests racing a backup against a gray primary;
- limping hosts (CPU + egress inflation) and per-peer health scoring
  with quarantine hysteresis;
- seeded gray :class:`ChaosSchedule` kinds: legacy-prefix stability
  and an end-to-end same-seed trace-digest equality check.

The 20-seed invariant sweep lives in ``tests/test_chaos_gray.py``.
"""

import pytest

from repro.cluster import build_lan
from repro.cluster.chaos import ChaosCoordinator, ChaosSchedule
from repro.legion import LegionRuntime
from repro.net import (
    DROP,
    DropRule,
    DuplicateRule,
    Endpoint,
    FaultPlan,
    LinkFlap,
    Message,
    Network,
    OneWayPartition,
    ReorderRule,
    SlowLink,
)
from repro.obs import HealthRegistry
from repro.sim import Simulator

from tests.conftest import make_counter_class


def make_net(latency_s=0.001, bandwidth_bps=1_000_000):
    sim = Simulator()
    return sim, Network(sim, latency_s=latency_s, bandwidth_bps=bandwidth_bps)


def _msg(source, destination, payload=None, kind="data"):
    return Message(source=source, destination=destination, payload=payload, kind=kind)


# ----------------------------------------------------------------------
# One-way partitions: requests arrive, replies vanish
# ----------------------------------------------------------------------


def test_one_way_partition_blocks_only_one_direction():
    rule = OneWayPartition(["hostA/"], ["hostB/"])
    assert rule.blocks(_msg("hostA/x", "hostB/y"), now=0.0)
    assert not rule.blocks(_msg("hostB/y", "hostA/x"), now=0.0)
    assert not rule.blocks(_msg("hostC/z", "hostB/y"), now=0.0)
    assert rule.blocked == 1


def test_one_way_partition_loses_replies_but_serves_requests():
    """The classic gray failure: the server hears and works, but its
    replies never land — the client times out on a served request."""
    sim, net = make_net()
    served = []

    def handler(message):
        served.append(message.payload)
        return "ack"
        yield  # pragma: no cover - uniform generator shape

    client = Endpoint(net, "hostA/client")
    Endpoint(net, "hostB/server", request_handler=handler)
    net.faults.add_partition(OneWayPartition(["hostB/"], ["hostA/"]))

    def proc():
        from repro.net import RequestTimeout

        with pytest.raises(RequestTimeout):
            yield from client.request(
                "hostB/server", "ping", timeout_s=1.0, max_attempts=2
            )

    sim.run_process(proc())
    sim.run()
    # Both attempts reached the server; both replies were destroyed.
    assert served == ["ping", "ping"]


def test_one_way_partition_heal_and_window():
    rule = OneWayPartition(["a/"], ["b/"], start=2.0, end=4.0)
    assert not rule.blocks(_msg("a/x", "b/y"), now=1.0)
    assert rule.blocks(_msg("a/x", "b/y"), now=3.0)
    assert not rule.blocks(_msg("a/x", "b/y"), now=4.0)  # end-exclusive
    rule2 = OneWayPartition(["a/"], ["b/"])
    rule2.heal(1.0)
    assert not rule2.blocks(_msg("a/x", "b/y"), now=1.0)


# ----------------------------------------------------------------------
# Link flaps: periodic down/up with no RNG
# ----------------------------------------------------------------------


def test_link_flap_cycles_down_and_up():
    flap = LinkFlap(["a/"], ["b/"], period_s=10.0, down_s=3.0, start=5.0)
    # Phase anchored at start=5: down in [5, 8), up in [8, 15), ...
    assert not flap.is_down(4.9)
    assert flap.is_down(5.0)
    assert flap.is_down(7.9)
    assert not flap.is_down(8.0)
    assert flap.is_down(15.1)  # next cycle
    assert flap.blocks(_msg("a/x", "b/y"), now=6.0)
    assert flap.blocks(_msg("b/y", "a/x"), now=6.0)  # bidirectional
    assert not flap.blocks(_msg("a/x", "b/y"), now=9.0)
    assert flap.blocked == 2


def test_link_flap_validates_period_and_down():
    with pytest.raises(ValueError):
        LinkFlap(["a/"], ["b/"], period_s=0.0, down_s=1.0)
    with pytest.raises(ValueError):
        LinkFlap(["a/"], ["b/"], period_s=5.0, down_s=6.0)


def test_link_flap_traffic_alternates_loss_and_delivery():
    sim, net = make_net(latency_s=0.0)
    net.attach("a/x")
    net.attach("b/y")
    net.faults.add_partition(
        LinkFlap(["a/"], ["b/"], period_s=4.0, down_s=2.0, start=0.0, end=20.0)
    )

    def driver():
        for tick in range(8):
            net.send(_msg("a/x", "b/y", payload=tick))
            yield sim.timeout(1.0)

    sim.spawn(driver())
    sim.run()
    # Sends at t=0,1 (down), 2,3 (up), 4,5 (down), 6,7 (up).
    assert net.stats.messages_dropped == 4
    assert net.stats.messages_delivered == 4


# ----------------------------------------------------------------------
# Slow links: late, not lost
# ----------------------------------------------------------------------


def test_slow_link_inflates_delivery_without_loss():
    sim, net = make_net(latency_s=0.001)
    net.attach("a/x")
    port = net.attach("b/y")
    net.faults.add_delay_rule(SlowLink(["a/"], ["b/"], extra_s=0.5))
    net.send(_msg("a/x", "b/y", payload="late"))

    def receiver():
        received = yield port.inbox.get()
        return (sim.now, received.payload)

    when, payload = sim.run_process(receiver())
    assert payload == "late"
    assert when == pytest.approx(0.501, abs=1e-3)
    assert net.stats.messages_dropped == 0


def test_slow_link_jitter_is_seeded_and_bounded():
    a = SlowLink(["a/"], ["b/"], extra_s=0.1, jitter_s=0.05, seed=9)
    b = SlowLink(["a/"], ["b/"], extra_s=0.1, jitter_s=0.05, seed=9)
    delays_a = [a.delay_for(_msg("a/x", "b/y"), now=1.0) for __ in range(50)]
    delays_b = [b.delay_for(_msg("a/x", "b/y"), now=1.0) for __ in range(50)]
    assert delays_a == delays_b  # same seed, same trace
    assert all(0.1 <= d <= 0.15 for d in delays_a)
    assert len(set(delays_a)) > 1  # jitter actually varies
    assert a.delayed == 50
    assert a.delay_total_s == pytest.approx(sum(delays_a))
    # Non-crossing traffic is untouched and uncounted.
    assert a.delay_for(_msg("c/w", "b/y"), now=1.0) == 0.0
    assert a.delayed == 50


# ----------------------------------------------------------------------
# Reordering: bounded overtaking
# ----------------------------------------------------------------------


def test_reorder_rule_lets_later_sends_overtake():
    sim, net = make_net(latency_s=0.001)
    net.attach("a/x")
    port = net.attach("b/y")
    # Deterministically hold back exactly the first message.
    held = []

    def first_only(message):
        if not held:
            held.append(message.message_id)
        return message.message_id in held

    net.faults.add_delay_rule(
        ReorderRule(probability=1.0, max_skew_s=0.5, predicate=first_only, seed=3)
    )
    arrivals = []

    def receiver():
        for __ in range(2):
            received = yield port.inbox.get()
            arrivals.append(received.payload)

    net.send(_msg("a/x", "b/y", payload="first"))
    net.send(_msg("a/x", "b/y", payload="second"))
    sim.spawn(receiver())
    sim.run()
    assert arrivals == ["second", "first"]  # bounded overtake happened
    assert net.stats.messages_delivered == 2


def test_reorder_skew_is_bounded_and_seeded():
    a = ReorderRule(probability=1.0, max_skew_s=0.02, seed=11)
    b = ReorderRule(probability=1.0, max_skew_s=0.02, seed=11)
    skews_a = [a.delay_for(_msg("a/x", "b/y"), now=0.0) for __ in range(40)]
    skews_b = [b.delay_for(_msg("a/x", "b/y"), now=0.0) for __ in range(40)]
    assert skews_a == skews_b
    assert all(0.0 < s <= 0.02 for s in skews_a)
    assert a.reordered == 40


# ----------------------------------------------------------------------
# Duplication: the dedupe table's fabric-level exerciser
# ----------------------------------------------------------------------


def test_duplicate_rule_delivers_extra_copy_of_same_message():
    sim, net = make_net(latency_s=0.001)
    net.attach("a/x")
    port = net.attach("b/y")
    rule = net.faults.add_duplicate_rule(
        DuplicateRule(probability=1.0, spread_s=0.01, seed=5, count=1)
    )
    copies = []

    def receiver():
        for __ in range(2):
            received = yield port.inbox.get()
            copies.append(received.message_id)

    net.send(_msg("a/x", "b/y", payload="twin"))
    sim.spawn(receiver())
    sim.run()
    # Two deliveries of the *same wire message* — same id, so the
    # layer above must dedupe; the fabric does not.
    assert len(copies) == 2 and copies[0] == copies[1]
    assert rule.duplicated == 1
    assert net.stats.messages_delivered == 2


def test_exactly_once_invocation_under_fabric_duplication():
    """Satellite: the transport's at-most-once dedupe, previously only
    exercised by retry-driven duplicates, must also absorb duplicates
    minted by the fabric itself — every copy after the first is counted
    and discarded, never re-invoked."""
    sim, net = make_net()
    invocations = []

    def handler(message):
        invocations.append(message.payload)
        return message.payload * 10
        yield  # pragma: no cover - uniform generator shape

    client = Endpoint(net, "a/client")
    Endpoint(net, "b/server", request_handler=handler)
    net.faults.add_duplicate_rule(
        DuplicateRule(
            probability=1.0,
            spread_s=0.005,
            predicate=lambda m: m.kind == "request",
            seed=7,
        )
    )

    def proc():
        replies = []
        for index in range(10):
            reply = yield from client.request("b/server", index, timeout_s=5.0)
            replies.append(reply)
        return replies

    replies = sim.run_process(proc())
    sim.run()
    assert replies == [i * 10 for i in range(10)]
    # Every logical request ran exactly once despite two wire copies.
    assert invocations == list(range(10))
    assert net.count_value("transport.duplicate_requests") == 10


def test_duplicated_replies_are_ignored_by_the_client():
    """A duplicated *reply* lands after the pending event resolved; the
    transport must drop it silently instead of crashing or corrupting
    a later request's correlation."""
    sim, net = make_net()
    client = Endpoint(net, "a/client")

    def echo(message):
        return message.payload
        yield  # pragma: no cover - uniform generator shape

    Endpoint(net, "b/server", request_handler=echo)
    net.faults.add_duplicate_rule(
        DuplicateRule(
            probability=1.0,
            spread_s=0.005,
            predicate=lambda m: m.kind == "reply",
            seed=7,
        )
    )

    def proc():
        first = yield from client.request("b/server", "one", timeout_s=5.0)
        second = yield from client.request("b/server", "two", timeout_s=5.0)
        return (first, second)

    assert sim.run_process(proc()) == ("one", "two")
    sim.run()


def test_duplicate_rule_count_bounds_total_duplications():
    rule = DuplicateRule(probability=1.0, count=2, seed=1)
    assert rule.copy_delays(_msg("a", "b"), now=0.0)
    assert rule.copy_delays(_msg("a", "b"), now=0.0)
    assert rule.copy_delays(_msg("a", "b"), now=0.0) == ()
    assert rule.duplicated == 2


# ----------------------------------------------------------------------
# FaultPlan routing and stats
# ----------------------------------------------------------------------


def test_route_destruction_wins_over_degradation():
    plan = FaultPlan()
    plan.add_partition(OneWayPartition(["a/"], ["b/"]))
    slow = plan.add_delay_rule(SlowLink(["a/"], ["b/"], extra_s=1.0))
    assert plan.route(_msg("a/x", "b/y"), now=0.0) is DROP
    # The slow link never even saw the doomed message.
    assert slow.delayed == 0


def test_route_combines_delay_and_duplication():
    plan = FaultPlan()
    plan.add_delay_rule(SlowLink(["a/"], ["b/"], extra_s=0.5))
    plan.add_duplicate_rule(DuplicateRule(probability=1.0, spread_s=0.01, seed=2))
    verdict = plan.route(_msg("a/x", "b/y"), now=0.0)
    assert verdict is not None and verdict is not DROP
    primary, copy = verdict
    assert primary == pytest.approx(0.5)
    # The duplicate inherits the slow link's delay plus its own spread.
    assert 0.5 < copy <= 0.51
    # Unmatched traffic routes normally (None = fast path).
    assert plan.route(_msg("c/w", "a/x"), now=0.0) == (0.0, pytest.approx(0.0, abs=0.011))


def test_route_returns_none_when_no_degradation_matches():
    plan = FaultPlan()
    plan.add_delay_rule(SlowLink(["a/"], ["b/"], extra_s=0.5))
    assert plan.route(_msg("c/w", "d/z"), now=0.0) is None
    assert plan.route(_msg("a/x", "b/y"), now=0.0) == (0.5,)


def test_stats_aggregates_across_rules_and_survives_clear():
    """Satellite: ``stats()`` reports per-rule counters and ``clear()``
    folds them into the totals, so post-run assertions stay readable
    after a heal removed every rule."""
    plan = FaultPlan()
    drop = plan.add_drop_rule(DropRule(count=1, label="lossy"))
    oneway = plan.add_partition(OneWayPartition(["a/"], ["b/"], label="mute-a"))
    slow = plan.add_delay_rule(SlowLink(["b/"], ["c/"], extra_s=0.1, label="wan"))
    dup = plan.add_duplicate_rule(DuplicateRule(probability=1.0, seed=4))
    plan.route(_msg("a/x", "b/y"), now=0.0)   # blocked by the one-way
    plan.route(_msg("x/q", "y/r"), now=0.0)   # dropped + (budget spent)
    plan.route(_msg("b/y", "c/z"), now=0.0)   # delayed + duplicated

    stats = plan.stats()
    assert stats["dropped"] == 1
    assert stats["blocked"] == 1
    assert stats["delayed"] == 1
    assert stats["duplicated"] >= 1
    labels = {rule["label"]: rule for rule in stats["rules"]}
    assert labels["lossy"]["dropped"] == drop.dropped == 1
    assert labels["mute-a"]["blocked"] == oneway.blocked == 1
    assert labels["wan"]["delayed"] == slow.delayed == 1
    assert labels["duplicate"]["duplicated"] == dup.duplicated

    plan.clear()
    assert not plan.is_active
    cleared = plan.stats()
    assert cleared["rules"] == []
    for key in ("dropped", "blocked", "delayed", "duplicated"):
        assert cleared[key] == stats[key], f"clear() lost the {key} total"
    # Fresh rules accumulate on top of the preserved totals.
    plan.add_drop_rule(DropRule(count=1))
    plan.route(_msg("x/q", "y/r"), now=0.0)
    assert plan.stats()["dropped"] == stats["dropped"] + 1


def test_fault_plan_stats_surface_in_system_report():
    from repro.obs import collect_system_report, render_report

    runtime = LegionRuntime(build_lan(2, seed=3))
    runtime.network.faults.add_delay_rule(
        SlowLink(["host00/"], ["host01/"], extra_s=0.05, label="gray-link")
    )
    make_counter_class(runtime)
    manager = runtime.class_of("Counter")
    loid = runtime.sim.run_process(manager.create_instance(host_name="host01"))
    runtime.sim.run_process(manager.invoker.invoke(loid, "inc", (1,)))
    report = collect_system_report(runtime)
    assert report.fault_plan["delayed"] > 0
    rendered = render_report(report)
    assert "fault plan:" in rendered
    assert "gray-link" in rendered


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------


def test_hedge_fires_and_wins_when_primary_is_lost():
    sim, net = make_net()
    client = Endpoint(net, "a/client")

    def echo(message):
        return message.payload
        yield  # pragma: no cover - uniform generator shape

    Endpoint(net, "b/server", request_handler=echo)
    net.faults.add_drop_rule(
        DropRule(predicate=lambda m: m.kind == "request", count=1)
    )

    def proc():
        reply = yield from client.request(
            "b/server", "ping", timeout_s=5.0, max_attempts=1, hedge_delay_s=0.5
        )
        return (reply, sim.now)

    reply, elapsed = sim.run_process(proc())
    assert reply == "ping"
    # The hedge rescued the attempt long before the 5 s timeout.
    assert 0.5 < elapsed < 1.0
    assert net.count_value("transport.hedges") == 1
    assert net.count_value("transport.hedge_wins") == 1


def test_hedge_not_sent_when_primary_answers_fast():
    sim, net = make_net()
    client = Endpoint(net, "a/client")

    def echo(message):
        return message.payload
        yield  # pragma: no cover - uniform generator shape

    Endpoint(net, "b/server", request_handler=echo)

    def proc():
        return (yield from client.request(
            "b/server", "ping", timeout_s=5.0, hedge_delay_s=1.0
        ))

    assert sim.run_process(proc()) == "ping"
    assert net.count_value("transport.hedges") == 0
    assert net.count_value("transport.hedge_wins") == 0


def test_hedge_late_primary_reply_is_harmless():
    """Both copies get served (fresh ids, so no dedupe) and both reply;
    the loser's reply must be absorbed without disturbing later
    requests."""
    sim, net = make_net()
    client = Endpoint(net, "a/client")
    served = []

    def echo(message):
        served.append(message.payload)
        return message.payload
        yield  # pragma: no cover - uniform generator shape

    server = Endpoint(net, "b/server", request_handler=echo)
    # Hold back exactly the first request so its hedge overtakes it.
    held = []

    def first_request_only(message):
        if message.kind != "request":
            return False
        if not held:
            held.append(message.message_id)
        return message.message_id in held

    net.faults.add_delay_rule(
        ReorderRule(
            probability=1.0, max_skew_s=1.0, predicate=first_request_only, seed=1
        )
    )

    def proc():
        first = yield from client.request(
            "b/server", "slowed", timeout_s=5.0, hedge_delay_s=0.2
        )
        yield sim.timeout(2.0)  # let the delayed primary land and reply
        second = yield from client.request("b/server", "after", timeout_s=5.0)
        return (first, second)

    assert sim.run_process(proc()) == ("slowed", "after")
    sim.run()
    assert net.count_value("transport.hedge_wins") == 1
    # The primary eventually arrived too: three requests served total.
    assert server.requests_served == 3
    assert served == ["slowed", "slowed", "after"]


def test_hedge_delay_at_or_above_timeout_is_disabled():
    sim, net = make_net()
    client = Endpoint(net, "a/client")

    def echo(message):
        return message.payload
        yield  # pragma: no cover - uniform generator shape

    Endpoint(net, "b/server", request_handler=echo)

    def proc():
        return (yield from client.request(
            "b/server", "ping", timeout_s=1.0, hedge_delay_s=1.0
        ))

    assert sim.run_process(proc()) == "ping"
    assert net.count_value("transport.hedges") == 0


# ----------------------------------------------------------------------
# Limping hosts: slow CPU, slow NIC — but alive
# ----------------------------------------------------------------------


def test_limping_host_inflates_cpu_work():
    runtime = LegionRuntime(build_lan(2, seed=3))
    host = runtime.host("host00")

    def timed_work():
        start = runtime.sim.now
        yield host.cpu_work(1.0)
        return runtime.sim.now - start

    baseline = runtime.sim.run_process(timed_work())
    host.set_limp(4.0)
    assert host.limp_factor == 4.0
    limped = runtime.sim.run_process(timed_work())
    assert limped == pytest.approx(4.0 * baseline)
    host.clear_limp()
    assert host.limp_factor == 1.0
    assert runtime.sim.run_process(timed_work()) == pytest.approx(baseline)
    assert runtime.network.count_value("host.limps") == 1


def test_limping_nic_slows_egress_even_for_late_ports():
    sim, net = make_net(latency_s=0.0, bandwidth_bps=1000)
    from repro.net.message import HEADER_BYTES

    net.attach("limper/early")
    net.set_egress_slowdown("limper/", 3.0)
    net.attach("limper/late")  # attached after the slowdown: inherits it
    port_b = net.attach("b/y")
    arrivals = []

    def receiver():
        for __ in range(2):
            received = yield port_b.inbox.get()
            arrivals.append((received.payload, sim.now))

    size = 1000 - HEADER_BYTES  # 1 s of healthy wire time
    net.send(
        Message(source="limper/early", destination="b/y", payload="early", size_bytes=size)
    )
    sim.spawn(receiver())
    sim.run()
    net.send(
        Message(source="limper/late", destination="b/y", payload="late", size_bytes=size)
    )
    sim.run()
    assert arrivals[0] == ("early", pytest.approx(3.0))
    assert arrivals[1][0] == "late"
    assert arrivals[1][1] - 3.0 == pytest.approx(3.0)
    # Clearing restores healthy wire time for new sends.
    net.set_egress_slowdown("limper/", 1.0)
    del arrivals[:]

    def receive_one():
        received = yield port_b.inbox.get()
        arrivals.append(sim.now - start)

    start = sim.now
    net.send(
        Message(source="limper/early", destination="b/y", payload="healed", size_bytes=size)
    )
    sim.spawn(receive_one())
    sim.run()
    assert arrivals[0] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Health scoring and quarantine hysteresis
# ----------------------------------------------------------------------


def test_health_score_quarantines_and_recovers_with_hysteresis():
    sim = Simulator()
    registry = HealthRegistry(sim)
    assert registry.score("gray") == 1.0  # never observed = healthy
    # Timeouts erode the score past the quarantine floor.
    observations = 0
    while not registry.is_quarantined("gray"):
        registry.observe("gray", "timeout")
        observations += 1
        assert observations < 50, "score never crossed the quarantine floor"
    floor_score = registry.score("gray")
    assert floor_score < 0.35
    # A single success does not lift the quarantine (hysteresis)...
    registry.observe("gray", "success")
    assert registry.is_quarantined("gray")
    # ...but a sustained run of successes does.
    recoveries = 0
    while registry.is_quarantined("gray"):
        registry.observe("gray", "success")
        recoveries += 1
        assert recoveries < 50, "score never recovered past the ceiling"
    assert registry.score("gray") > 0.75
    peer = registry.peer("gray")
    assert peer.quarantines == 1
    assert peer.timeouts == observations
    snapshot = registry.snapshot()
    assert snapshot["gray"]["quarantined"] is False


def test_quarantine_goes_half_open_after_probation():
    """Quarantine alone would starve a healed peer of the successes it
    needs to recover; after ``probation_s`` of penalty silence the
    registry admits probes again (circuit-breaker half-open)."""
    sim = Simulator()
    registry = HealthRegistry(sim, probation_s=5.0)
    for __ in range(6):
        registry.observe("gray", "timeout")
    assert registry.is_quarantined("gray")

    def advance(seconds):
        def proc():
            yield sim.timeout(seconds)

        sim.run_process(proc())

    advance(5.0)
    # Half-open: probe traffic is admitted again...
    assert not registry.is_quarantined("gray")
    assert registry.peer("gray").probes == 1
    # ...a failed probe re-arms the closed window immediately...
    registry.observe("gray", "timeout")
    assert registry.is_quarantined("gray")
    advance(5.0)
    # ...while successful probes keep it open (successes never close
    # it) until the score recrosses the recovery ceiling.
    assert not registry.is_quarantined("gray")
    successes = 0
    while registry.peer("gray").quarantined:
        registry.observe("gray", "success")
        assert not registry.is_quarantined("gray")
        successes += 1
        assert successes < 50, "probe successes never lifted quarantine"
    assert registry.score("gray") > 0.75


def test_probation_requarantine_second_probation_cycle():
    """A failed probe buys a *full* closed window before the next
    probe: across probation → re-quarantine → second probation the
    registry never oscillates faster than ``probation_s``, and every
    transition publishes exactly one bus event."""
    from repro.obs import EventBus

    sim = Simulator()
    bus = EventBus(sim)
    transitions = []
    bus.subscribe("health.", transitions.append)
    registry = HealthRegistry(sim, probation_s=5.0, bus=bus)

    def advance(seconds):
        def proc():
            yield sim.timeout(seconds)

        sim.run_process(proc())

    # Cycle 1: quarantine at t=0.
    for __ in range(6):
        registry.observe("gray", "timeout")
    assert registry.is_quarantined("gray")
    assert [e.topic for e in transitions] == ["health.quarantined"]

    # Closed for the full window: no probe is admitted early.
    advance(4.99)
    assert registry.is_quarantined("gray")
    assert registry.peer("gray").probes == 0

    # First probation at t=5: one probe admitted; it fails.
    advance(0.01)
    assert not registry.is_quarantined("gray")
    assert registry.peer("gray").probes == 1
    registry.observe("gray", "timeout")  # failed probe re-arms the window

    # Re-quarantined: the *entire* probation_s must elapse again — the
    # no-oscillation property.  Poll the whole closed window; every
    # answer must be "closed" and no extra probes may be minted.
    for __ in range(9):
        advance(0.5)
        assert registry.is_quarantined("gray"), (
            f"oscillated out of quarantine {sim.now - 5.0:.1f}s after a "
            f"failed probe (probation_s=5.0)"
        )
    assert registry.peer("gray").probes == 1

    # Second probation at t=10: probes flow again; sustained successes
    # recover the peer (one recovery event, still one quarantine).
    advance(0.5)
    assert not registry.is_quarantined("gray")
    assert registry.peer("gray").probes == 2
    while registry.peer("gray").quarantined:
        registry.observe("gray", "success")
    assert [e.topic for e in transitions] == [
        "health.quarantined",
        "health.recovered",
    ]
    assert registry.peer("gray").quarantines == 1

    # A later relapse opens a genuinely new cycle, not a continuation.
    while not registry.peer("gray").quarantined:
        registry.observe("gray", "timeout")
    assert registry.peer("gray").quarantines == 2
    assert [e.topic for e in transitions] == [
        "health.quarantined",
        "health.recovered",
        "health.quarantined",
    ]


def test_health_penalties_are_ordered_by_severity():
    sim = Simulator()
    registry = HealthRegistry(sim)
    for event in ("timeout", "hedge_win", "suspicion"):
        registry.observe(event, event)
    # One suspicion hurts more than one timeout, which hurts more than
    # losing one hedge race.
    assert (
        registry.score("suspicion")
        < registry.score("timeout")
        < registry.score("hedge_win")
        < 1.0
    )
    with pytest.raises(ValueError):
        registry.observe("x", "not-an-event")


def test_network_health_is_lazily_armed():
    sim, net = make_net()
    # Unarmed: observes are free no-ops and nothing is quarantined.
    net.health_observe("b/server", "timeout")
    assert net.health is None
    assert not net.health_quarantined("b")
    assert net.health_snapshot() == {}
    net.enable_health()
    assert net.health is not None
    net.enable_health()  # idempotent
    for __ in range(20):
        net.health_observe("b/server", "timeout")
    # Observations key by host prefix, not full address.
    assert net.health_quarantined("b")
    assert "b" in net.health_snapshot()


def test_request_timeouts_feed_armed_health_scores():
    sim, net = make_net()
    net.enable_health()
    client = Endpoint(net, "a/client")

    def proc():
        from repro.net import RequestTimeout

        for __ in range(12):
            try:
                yield from client.request(
                    "ghost/server", "ping", timeout_s=0.2, max_attempts=1
                )
            except RequestTimeout:
                pass

    sim.run_process(proc())
    assert net.health.peer("ghost").timeouts == 12
    assert net.health_quarantined("ghost")


def test_tree_order_key_sinks_unhealthy_hosts_to_leaves():
    from repro.cluster.relay import build_announce_tree, iter_tree_hosts

    names = [f"host{i:02d}" for i in range(5)]
    directory = {name: f"relay-{name}" for name in names}
    scores = {"host00": 0.2, "host01": 1.0, "host02": 0.9, "host03": 1.0, "host04": 0.6}
    order_key = lambda name: (-scores[name], name)
    root = build_announce_tree(names, directory, fanout_k=2, order_key=order_key)
    # Healthiest host roots the tree; the gray host is a childless
    # leaf — it forwards to nobody, so its slowness stalls no subtree.
    assert root["host"] == "host01"
    assert set(iter_tree_hosts(root)) == set(names)

    def find(node, name):
        if node["host"] == name:
            return node
        for child in node["children"]:
            found = find(child, name)
            if found is not None:
                return found
        return None

    assert find(root, "host00")["children"] == []


# ----------------------------------------------------------------------
# Seeded determinism of the gray schedule kinds
# ----------------------------------------------------------------------


def test_gray_kinds_extend_legacy_schedule_deterministically():
    """The gray draws come strictly after every legacy draw: a given
    seed yields the identical legacy schedule with gray kinds off or
    on, and the gray lists themselves reproduce exactly."""
    names = [f"host{i:02d}" for i in range(6)]
    legacy = ChaosSchedule.generate(5, names, max_failovers=1)
    gray_kwargs = dict(
        gray_one_way=2,
        gray_flaps=1,
        gray_slow_links=2,
        gray_duplicates=1,
        gray_reorders=1,
        gray_limps=1,
    )
    extended = ChaosSchedule.generate(5, names, max_failovers=1, **gray_kwargs)
    assert extended.crashes == legacy.crashes
    assert extended.partitions == legacy.partitions
    assert extended.drops == legacy.drops
    assert extended.degradations == legacy.degradations
    # Gray kinds actually produced faults...
    assert extended.one_way and extended.slow_links and extended.limps
    assert extended.flaps and extended.duplicates and extended.reorders
    # ...and reproducibly so.
    again = ChaosSchedule.generate(5, names, max_failovers=1, **gray_kwargs)
    for field in ("one_way", "flaps", "slow_links", "duplicates", "reorders", "limps"):
        assert getattr(again, field) == getattr(extended, field), field
    # heal_time covers the gray windows too.
    gray_ends = [entry[-1] for entry in extended.one_way + extended.flaps]
    assert extended.heal_time >= max(gray_ends)


def _run_gray_trace(seed):
    """One small fleet under a gray schedule; returns its trace digest."""
    runtime = LegionRuntime(build_lan(4, seed=31))
    make_counter_class(runtime)
    manager = runtime.class_of("Counter")
    loid = runtime.sim.run_process(manager.create_instance(host_name="host02"))
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=30.0,
        protect=("host00",),
        gray_one_way=1,
        gray_slow_links=1,
        gray_duplicates=1,
        gray_reorders=1,
        gray_limps=1,
    )
    schedule.install(runtime, ChaosCoordinator(runtime))
    results = []

    def driver():
        for __ in range(40):
            try:
                value = yield from manager.invoker.invoke(loid, "inc", (1,))
            except Exception as error:
                value = type(error).__name__
            results.append((round(runtime.sim.now, 9), value))
            yield runtime.sim.timeout(0.5)

    runtime.sim.run_process(driver())
    runtime.sim.run(until=max(runtime.sim.now, schedule.heal_time + 5.0))
    stats = runtime.network.faults.stats()
    digest = (
        round(runtime.sim.now, 9),
        runtime.network.stats.messages_delivered,
        runtime.network.stats.messages_dropped,
        tuple(results),
        tuple(
            (key, round(value, 9) if isinstance(value, float) else value)
            for key, value in sorted(stats.items())
            if key != "rules"
        ),
        runtime.network.count_value("transport.duplicate_requests"),
    )
    return digest


@pytest.mark.parametrize("seed", [2, 13])
def test_same_seed_yields_identical_gray_trace(seed):
    """Satellite: seeded determinism end to end — two fresh simulators
    running the same gray schedule produce byte-identical traces
    (delivery counts, invocation timeline, fault-plan counters)."""
    assert _run_gray_trace(seed) == _run_gray_trace(seed)


def test_different_seeds_yield_different_gray_traces():
    assert _run_gray_trace(2) != _run_gray_trace(13)
