"""The README's quickstart snippet must actually run.

Extracts the first python code block from README.md and executes it,
so documentation drift fails CI instead of confusing users.
"""

import pathlib
import re


def test_readme_quickstart_executes(capsys):
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README must contain a python quickstart block"
    code = blocks[0]
    namespace = {}
    exec(compile(code, str(readme), "exec"), namespace)  # noqa: S102
    output = capsys.readouterr().out
    assert "Hello, world!" in output


def test_readme_mentions_every_package():
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    for package in sorted(p.name for p in src.iterdir() if p.is_dir() and p.name != "__pycache__"):
        assert f"repro.{package}" in text, f"README should document repro.{package}"


def test_design_experiment_ids_have_benchmarks():
    root = pathlib.Path(__file__).resolve().parent.parent
    design = (root / "DESIGN.md").read_text()
    bench_names = {p.name for p in (root / "benchmarks").glob("test_*.py")}
    for bench in re.findall(r"`benchmarks/(test_\w+\.py)`", design):
        assert bench in bench_names, f"DESIGN.md references missing {bench}"
