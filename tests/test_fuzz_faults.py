"""Randomized fault injection against live traffic.

A seeded fuzzer runs client traffic and evolution operations while
randomly dropping messages and partitioning hosts.  Whatever the fault
pattern, the system must end every session in a consistent state:
calls either succeeded or raised a *known* error type, live DFMs stay
consistent, and no thread counts leak.
"""

import random

import pytest

from repro.core import DCDOError
from repro.core.policies import GeneralEvolutionPolicy
from repro.core.validation import check_state_consistent
from repro.legion.errors import LegionError
from repro.net import DropRule, Partition, TransportError
from repro.workloads import build_component_version, synthetic_components
from tests.conftest import create_dcdo, make_sorter_manager

STEPS = 40

KNOWN_ERRORS = (DCDOError, LegionError, TransportError)


class FaultFuzzer:
    def __init__(self, runtime, seed):
        self.runtime = runtime
        self.rng = random.Random(seed)
        self.manager = make_sorter_manager(
            runtime, evolution_policy=GeneralEvolutionPolicy()
        )
        self.loid, self.obj = create_dcdo(runtime, self.manager)
        self.clients = [runtime.make_client(f"host0{index}") for index in range(1, 4)]
        self.partitions = []
        self.component_counter = 0
        self.calls_ok = 0
        self.calls_failed = 0

    def random_fault(self):
        choice = self.rng.random()
        faults = self.runtime.network.faults
        if choice < 0.5:
            kind = self.rng.choice(["request", "reply"])
            faults.add_drop_rule(
                DropRule(
                    predicate=lambda m, kind=kind: m.kind == kind,
                    count=self.rng.randint(1, 3),
                )
            )
        else:
            client = self.rng.choice(self.clients)
            target = self.obj.address
            if target is None:
                return
            partition = Partition({client.endpoint.address}, {target})
            faults.add_partition(partition)
            self.partitions.append(partition)

    def heal_everything(self):
        for partition in self.partitions:
            partition.heal(self.runtime.sim.now)
        self.partitions.clear()

    def random_call(self):
        client = self.rng.choice(self.clients)
        try:
            result = client.call_sync(
                self.loid, "sort", [3, 1, 2], timeout_schedule=(2.0, 4.0)
            )
        except KNOWN_ERRORS:
            self.calls_failed += 1
        else:
            self.calls_ok += 1
            assert sorted(result) == [1, 2, 3]

    def random_evolution(self):
        self.component_counter += 1
        extra = synthetic_components(
            1, 2, prefix=f"ff{self.component_counter}-"
        )
        try:
            version = build_component_version(self.manager, extra)
            self.runtime.sim.run_process(
                self.manager.evolve_instance(self.loid, version)
            )
        except KNOWN_ERRORS:
            pass

    def run(self, steps):
        actions = [self.random_fault, self.random_call, self.random_call,
                   self.random_evolution, self.heal_everything]
        for __ in range(steps):
            self.rng.choice(actions)()
            self.runtime.sim.run()
            self.check_invariants()
        self.heal_everything()
        self.runtime.sim.run()

    def check_invariants(self):
        if self.manager.record(self.loid).active:
            check_state_consistent(self.obj.dfm)
            for component_id in self.obj.dfm.component_ids:
                assert self.obj.dfm.active_threads_in(component_id) == 0


@pytest.mark.parametrize("seed", [3, 17, 44])
def test_fault_fuzzing_keeps_system_consistent(runtime, seed):
    fuzzer = FaultFuzzer(runtime, seed)
    fuzzer.run(STEPS)
    # After healing, the system serves again.
    client = fuzzer.clients[0]
    assert client.call_sync(fuzzer.loid, "sort", [2, 1], timeout_schedule=(60.0,)) == [1, 2]
    # The fuzz session must have exercised both outcomes at least once
    # across the seeds (not asserted per-seed; some seeds are gentle).
    assert fuzzer.calls_ok + fuzzer.calls_failed > 0
