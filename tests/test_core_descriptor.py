"""Unit tests for DFM descriptors: configuration ops, validation, diffing."""

import pytest

from repro.core import (
    AmbiguousFunction,
    ComponentAlreadyIncorporated,
    ComponentBuilder,
    ComponentNotIncorporated,
    Dependency,
    DependencyViolation,
    DFMDescriptor,
    MandatoryViolation,
    Marking,
    MarkingConflict,
    PermanenceViolation,
    diff_descriptors,
)


def component(component_id, functions=("f",), internal=(), markings=None, deps=()):
    builder = ComponentBuilder(component_id)
    for name in functions:
        builder.function(name, lambda ctx: name)
    for name in internal:
        builder.internal_function(name, lambda ctx: name)
    for name, marking in (markings or {}).items():
        if marking is Marking.MANDATORY:
            builder.require_mandatory(name)
        else:
            builder.require_permanent(name)
    for dep in deps:
        builder.depends(dep)
    return builder.build()


def make_descriptor(*components):
    descriptor = DFMDescriptor()
    for comp in components:
        descriptor.incorporate(comp, ico_loid=f"ico:{comp.component_id}")
    return descriptor


def test_incorporate_adds_disabled_entries():
    descriptor = make_descriptor(component("c1", functions=("f", "g")))
    assert descriptor.component_ids == {"c1"}
    assert not descriptor.is_enabled("f", "c1")
    assert descriptor.exported_interface() == []


def test_incorporate_twice_rejected():
    comp = component("c1")
    descriptor = make_descriptor(comp)
    with pytest.raises(ComponentAlreadyIncorporated):
        descriptor.incorporate(comp, ico_loid="ico:c1")


def test_enable_and_interface():
    descriptor = make_descriptor(component("c1", functions=("f",), internal=("h",)))
    descriptor.enable("f", "c1")
    descriptor.enable("h", "c1")
    assert descriptor.exported_interface() == ["f"]  # h is internal
    assert descriptor.enabled_components_of("h") == {"c1"}


def test_enable_missing_entry_rejected():
    descriptor = make_descriptor(component("c1"))
    with pytest.raises(ComponentNotIncorporated):
        descriptor.enable("nope", "c1")


def test_two_enabled_implementations_rejected():
    descriptor = make_descriptor(component("c1"), component("c2"))
    descriptor.enable("f", "c1")
    with pytest.raises(AmbiguousFunction):
        descriptor.enable("f", "c2")


def test_enable_replace_swaps_implementation():
    descriptor = make_descriptor(component("c1"), component("c2"))
    descriptor.enable("f", "c1")
    descriptor.enable("f", "c2", replace_current=True)
    assert descriptor.enabled_components_of("f") == {"c2"}


def test_disable():
    descriptor = make_descriptor(component("c1"))
    descriptor.enable("f", "c1")
    descriptor.disable("f", "c1")
    assert descriptor.enabled_components_of("f") == set()


def test_disable_not_enabled_raises():
    descriptor = make_descriptor(component("c1"))
    from repro.core import FunctionNotEnabled

    with pytest.raises(FunctionNotEnabled):
        descriptor.disable("f", "c1")


def test_set_exported_moves_between_interfaces():
    descriptor = make_descriptor(component("c1"))
    descriptor.enable("f", "c1")
    descriptor.set_exported("f", "c1", False)
    assert descriptor.exported_interface() == []
    descriptor.set_exported("f", "c1", True)
    assert descriptor.exported_interface() == ["f"]


# ----------------------------------------------------------------------
# Markings
# ----------------------------------------------------------------------


def test_mandatory_blocks_disabling_last_impl():
    descriptor = make_descriptor(component("c1"))
    descriptor.enable("f", "c1")
    descriptor.mark_mandatory("f")
    with pytest.raises(MandatoryViolation):
        descriptor.disable("f", "c1")


def test_mandatory_allows_replacing_impl():
    """Mandatory requires *some* implementation, not a particular one."""
    descriptor = make_descriptor(component("c1"), component("c2"))
    descriptor.enable("f", "c1")
    descriptor.mark_mandatory("f")
    descriptor.enable("f", "c2", replace_current=True)
    assert descriptor.enabled_components_of("f") == {"c2"}


def test_permanent_blocks_disable_and_replace():
    descriptor = make_descriptor(component("c1"), component("c2"))
    descriptor.enable("f", "c1")
    descriptor.mark_permanent("f")
    with pytest.raises(PermanenceViolation):
        descriptor.disable("f", "c1")
    with pytest.raises(PermanenceViolation):
        descriptor.enable("f", "c2", replace_current=True)


def test_permanent_pin_requires_unambiguous_enabled_impl():
    descriptor = make_descriptor(component("c1"))
    with pytest.raises(PermanenceViolation):
        descriptor.mark_permanent("f")  # nothing enabled to pin


def test_component_demanded_markings_merge():
    comp = component("c1", markings={"f": Marking.MANDATORY})
    descriptor = make_descriptor(comp)
    assert descriptor.marking("f") is Marking.MANDATORY


def test_conflicting_permanent_demands_fail_incorporation():
    """§3.2: incorporating a component whose permanent demand collides
    with an existing permanent pin fails."""
    first = component("c1", markings={"f": Marking.PERMANENT})
    second = component("c2", markings={"f": Marking.PERMANENT})
    descriptor = make_descriptor(first)
    with pytest.raises(MarkingConflict):
        descriptor.incorporate(second, ico_loid="ico:c2")


def test_markings_are_monotone():
    descriptor = make_descriptor(component("c1"))
    descriptor.enable("f", "c1")
    descriptor.mark_permanent("f")
    descriptor.mark_mandatory("f")  # weakening attempt is a no-op
    assert descriptor.marking("f") is Marking.PERMANENT


# ----------------------------------------------------------------------
# Dependencies
# ----------------------------------------------------------------------


def test_add_dependency_validated_against_current_state():
    descriptor = make_descriptor(component("c1", functions=("f1",)))
    descriptor.enable("f1", "c1")
    with pytest.raises(DependencyViolation):
        descriptor.add_dependency(Dependency("f1", "f2"))


def test_disable_blocked_by_dependency():
    descriptor = make_descriptor(
        component("c1", functions=("f1",)), component("c2", functions=("f2",))
    )
    descriptor.enable("f1", "c1")
    descriptor.enable("f2", "c2")
    descriptor.add_dependency(Dependency("f1", "f2", dependent_component="c1"))
    with pytest.raises(DependencyViolation):
        descriptor.disable("f2", "c2")
    # Disabling the dependent first releases the requirement.
    descriptor.disable("f1", "c1")
    descriptor.disable("f2", "c2")


def test_remove_component_retracts_its_dependents():
    """§3.2: a function's protected status is "essentially retracted
    when dependencies on it are removed, which can happen when
    dependent functions are ... removed"."""
    descriptor = make_descriptor(
        component("c1", functions=("f1",)), component("c2", functions=("f2",))
    )
    descriptor.enable("f1", "c1")
    descriptor.enable("f2", "c2")
    descriptor.add_dependency(Dependency("f1", "f2", dependent_component="c1"))
    descriptor.disable("f1", "c1")
    descriptor.remove_component("c1")
    assert descriptor.dependencies == []
    descriptor.disable("f2", "c2")  # now legal


def test_remove_component_violating_required_side_rejected():
    descriptor = make_descriptor(
        component("c1", functions=("f1",)), component("c2", functions=("f2",))
    )
    descriptor.enable("f1", "c1")
    descriptor.enable("f2", "c2")
    descriptor.add_dependency(
        Dependency("f1", "f2", dependent_component="c1", required_component="c2")
    )
    with pytest.raises(DependencyViolation):
        descriptor.remove_component("c2")


def test_component_shipped_dependencies_merge():
    dep = Dependency("f1", "f2", dependent_component="c1")
    descriptor = make_descriptor(component("c1", functions=("f1",), deps=[dep]))
    assert descriptor.dependencies == [dep]


# ----------------------------------------------------------------------
# Instantiability, cloning, equivalence
# ----------------------------------------------------------------------


def test_instantiable_requires_mandatory_enabled():
    descriptor = make_descriptor(component("c1", markings={"f": Marking.MANDATORY}))
    with pytest.raises(MandatoryViolation):
        descriptor.validate_instantiable()
    descriptor.enable("f", "c1")
    descriptor.validate_instantiable()


def test_instantiable_requires_dependencies_hold():
    descriptor = make_descriptor(
        component("c1", functions=("f1",)), component("c2", functions=("f2",))
    )
    descriptor.enable("f1", "c1")
    descriptor.enable("f2", "c2")
    descriptor.add_dependency(Dependency("f1", "f2"))
    descriptor.validate_instantiable()


def test_clone_is_independent():
    descriptor = make_descriptor(component("c1"))
    copy = descriptor.clone()
    copy.enable("f", "c1")
    assert not descriptor.is_enabled("f", "c1")
    assert copy.is_enabled("f", "c1")


def test_functional_equivalence():
    """§2.1: same components incorporated and DFMs functionally
    equivalent (same impls enabled and exported)."""
    a = make_descriptor(component("c1"))
    b = make_descriptor(component("c1"))
    assert a.functionally_equivalent(b)
    b.enable("f", "c1")
    assert not a.functionally_equivalent(b)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------


def test_diff_identical_is_noop():
    a = make_descriptor(component("c1"))
    diff = diff_descriptors(a, a.clone())
    assert diff.is_noop


def test_diff_detects_added_and_removed_components():
    old = make_descriptor(component("c1"))
    new = make_descriptor(component("c2"))
    diff = diff_descriptors(old, new)
    assert [ref.component_id for ref in diff.components_to_add] == ["c2"]
    assert diff.components_to_remove == ["c1"]


def test_diff_counts_entry_changes():
    old = make_descriptor(component("c1", functions=("f", "g")))
    new = old.clone()
    new.enable("f", "c1")
    diff = diff_descriptors(old, new)
    assert diff.entry_changes == 1
    assert not diff.is_noop


def test_diff_carries_target_clone():
    old = make_descriptor(component("c1"))
    new = old.clone()
    new.enable("f", "c1")
    diff = diff_descriptors(old, new)
    new.disable("f", "c1")
    assert diff.target.is_enabled("f", "c1")  # snapshot, not a live ref
