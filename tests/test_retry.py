"""Unit and integration tests for the reusable retry policy."""

import pytest

from repro.net import (
    DEFAULT_REQUEST_RETRY,
    CircuitBreaker,
    CircuitState,
    DropRule,
    Endpoint,
    Network,
    RequestTimeout,
    RetryPolicy,
)
from repro.sim import DeterministicRNG, Simulator

from tests.conftest import make_counter_class


# ----------------------------------------------------------------------
# Pure policy arithmetic
# ----------------------------------------------------------------------


def test_backoff_grows_geometrically_and_caps():
    policy = RetryPolicy(base_s=1.0, multiplier=2.0, max_backoff_s=4.0)
    assert policy.backoff_s(1) == 1.0
    assert policy.backoff_s(2) == 2.0
    assert policy.backoff_s(3) == 4.0
    assert policy.backoff_s(4) == 4.0  # capped


def test_backoff_rejects_nonpositive_attempt():
    with pytest.raises(ValueError):
        RetryPolicy().backoff_s(0)


def test_should_retry_respects_max_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1, started=0.0, now=0.0)
    assert policy.should_retry(2, started=0.0, now=0.0)
    assert not policy.should_retry(3, started=0.0, now=0.0)


def test_should_retry_respects_deadline():
    policy = RetryPolicy(max_attempts=None, deadline_s=10.0)
    assert policy.should_retry(50, started=0.0, now=9.9)
    assert not policy.should_retry(1, started=0.0, now=10.0)


def test_unlimited_policy_retries_forever():
    policy = RetryPolicy(max_attempts=None, deadline_s=None)
    assert policy.should_retry(10_000, started=0.0, now=1e9)


def test_jitter_is_deterministic_and_bounded():
    a = RetryPolicy(
        base_s=1.0, jitter_fraction=0.5, rng=DeterministicRNG(seed=3), stream="t"
    )
    b = RetryPolicy(
        base_s=1.0, jitter_fraction=0.5, rng=DeterministicRNG(seed=3), stream="t"
    )
    draws_a = [a.backoff_s(1) for __ in range(5)]
    draws_b = [b.backoff_s(1) for __ in range(5)]
    assert draws_a == draws_b  # same seed, same stream → same sequence
    assert all(0.5 <= d <= 1.5 for d in draws_a)
    assert len(set(draws_a)) > 1  # it actually jitters


def test_jitter_requires_rng():
    with pytest.raises(ValueError):
        RetryPolicy(jitter_fraction=0.2)


def test_jitter_never_exceeds_max_backoff():
    """Regression: max_backoff_s is a true bound even after jitter.

    When the nominal backoff already sits at the cap, upward jitter
    used to push the actual wait above the documented ceiling."""
    policy = RetryPolicy(
        base_s=4.0,
        multiplier=2.0,
        max_backoff_s=4.0,
        jitter_fraction=0.5,
        rng=DeterministicRNG(seed=11),
        stream="clamp",
    )
    draws = [policy.backoff_s(attempt) for attempt in range(1, 9) for __ in range(20)]
    assert all(draw <= 4.0 for draw in draws), max(draws)
    assert min(draws) < 4.0  # downward jitter still applies


def test_parameter_validation():
    with pytest.raises(ValueError):
        RetryPolicy(base_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0.0)


# ----------------------------------------------------------------------
# Circuit breaker state machine (pure accounting on the sim clock)
# ----------------------------------------------------------------------


def test_breaker_opens_after_threshold_and_short_circuits():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=3, cooldown_s=30.0)
    assert breaker.state is CircuitState.CLOSED
    for __ in range(2):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state is CircuitState.CLOSED
    assert breaker.allow()
    breaker.record_failure()  # third consecutive failure trips it
    assert breaker.state is CircuitState.OPEN
    assert breaker.times_opened == 1
    assert not breaker.allow()
    assert breaker.short_circuits == 1
    assert breaker.retry_at == pytest.approx(30.0)


def test_breaker_half_open_probe_success_closes():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, cooldown_s=10.0)
    breaker.record_failure()
    assert breaker.state is CircuitState.OPEN

    def later():
        yield sim.timeout(10.0)

    sim.run_process(later())
    assert breaker.state is CircuitState.HALF_OPEN
    assert breaker.allow()  # the single probe
    assert not breaker.allow()  # concurrent caller short-circuited
    breaker.record_success()
    assert breaker.state is CircuitState.CLOSED
    assert breaker.allow()


def test_breaker_half_open_probe_failure_reopens():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, cooldown_s=10.0)
    breaker.record_failure()

    def later():
        yield sim.timeout(10.0)

    sim.run_process(later())
    assert breaker.allow()
    breaker.record_failure()  # probe failed: back to OPEN, fresh cooldown
    assert breaker.state is CircuitState.OPEN
    assert breaker.times_opened == 2
    assert breaker.retry_at == pytest.approx(20.0)
    assert not breaker.allow()


def test_breaker_success_resets_failure_streak():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is CircuitState.CLOSED  # streak was broken
    assert breaker.failures == 4 and breaker.successes == 1


def test_breaker_parameter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CircuitBreaker(sim, failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(sim, cooldown_s=-1.0)


def test_network_breaker_registry_shares_and_snapshots():
    sim = Simulator()
    net = Network(sim, latency_s=0.0, bandwidth_bps=10**9)
    a = net.breaker("ico:x", failure_threshold=2)
    assert net.breaker("ico:x") is a  # get-or-create shares state
    a.record_failure()
    a.record_failure()
    snapshot = net.breakers_snapshot()
    assert snapshot["ico:x"]["state"] == "open"
    assert snapshot["ico:x"]["failures"] == 2
    assert snapshot["ico:x"]["times_opened"] == 1
    # Transitions are mirrored into the fabric metrics.
    assert net.count_value("breaker.opened") == 1


# ----------------------------------------------------------------------
# Transport integration: multi-attempt requests back off
# ----------------------------------------------------------------------


def echo_handler(message):
    return message.payload
    yield  # pragma: no cover - uniform generator shape


def test_request_attempts_are_spaced_by_backoff():
    sim = Simulator()
    net = Network(sim, latency_s=0.0, bandwidth_bps=10**9)
    client = Endpoint(net, "a")
    Endpoint(net, "b", request_handler=echo_handler)
    # Swallow the first two attempts; the third gets through.
    net.faults.add_drop_rule(
        DropRule(predicate=lambda m: m.kind == "request", count=2)
    )
    policy = RetryPolicy(base_s=1.0, multiplier=2.0, max_backoff_s=60.0)

    def caller():
        reply = yield from client.request(
            "b", "ping", timeout_s=0.5, max_attempts=3, retry_policy=policy
        )
        return sim.now, reply

    when, reply = sim.run_process(caller())
    assert reply == "ping"
    # attempt1 @0 (times out 0.5) + backoff 1.0, attempt2 @1.5 (times
    # out 2.0) + backoff 2.0, attempt3 @4.0 → reply.
    assert when == pytest.approx(4.0, abs=0.01)
    assert net.count_value("retry.request_attempts") == 2
    assert net.count_value("retry.backoff_waits") == 2


def test_default_policy_used_when_none_given():
    sim = Simulator()
    net = Network(sim, latency_s=0.0, bandwidth_bps=10**9)
    client = Endpoint(net, "a")
    Endpoint(net, "b", request_handler=echo_handler)
    net.faults.add_drop_rule(
        DropRule(predicate=lambda m: m.kind == "request", count=1)
    )

    def caller():
        reply = yield from client.request(
            "b", "ping", timeout_s=0.5, max_attempts=2
        )
        return sim.now, reply

    when, reply = sim.run_process(caller())
    assert reply == "ping"
    # DEFAULT_REQUEST_RETRY: first backoff is base_s after the 0.5s timeout.
    assert when == pytest.approx(0.5 + DEFAULT_REQUEST_RETRY.base_s, abs=0.01)


def test_single_attempt_request_never_backs_off():
    sim = Simulator()
    net = Network(sim, latency_s=0.0, bandwidth_bps=10**9)
    client = Endpoint(net, "a")
    net.faults.add_drop_rule(DropRule())

    def caller():
        yield from client.request("b", "ping", timeout_s=0.5, max_attempts=1)

    with pytest.raises(RequestTimeout):
        sim.run_process(caller())
    assert sim.now == pytest.approx(0.5)
    assert net.count_value("retry.backoff_waits") == 0


# ----------------------------------------------------------------------
# Invoker integration: schedule walks can be backoff-spaced
# ----------------------------------------------------------------------


def test_invoker_retry_policy_spaces_schedule_attempts(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance())
    client = runtime.make_client("host01")
    client.invoker.retry_policy = RetryPolicy(
        base_s=5.0, multiplier=1.0, max_backoff_s=5.0
    )
    runtime.network.faults.add_drop_rule(
        DropRule(
            predicate=lambda m: m.kind == "request"
            and isinstance(m.payload, dict)
            and m.payload.get("op") == "invoke",
            count=1,
        )
    )
    started = runtime.sim.now
    result = client.call_sync(loid, "inc", 5, timeout_schedule=(1.0, 1.0))
    assert result == 5
    # First attempt times out after ~1s, then the 5s policy backoff
    # runs before the second attempt — far longer than the bare
    # schedule walk would take.
    assert runtime.sim.now - started > 5.5
    assert runtime.network.count_value("retry.backoff_waits") >= 1


def test_invoker_without_policy_keeps_bare_schedule_timing(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance())
    client = runtime.make_client("host01")
    assert client.invoker.retry_policy is None
    runtime.network.faults.add_drop_rule(
        DropRule(
            predicate=lambda m: m.kind == "request"
            and isinstance(m.payload, dict)
            and m.payload.get("op") == "invoke",
            count=1,
        )
    )
    started = runtime.sim.now
    result = client.call_sync(loid, "inc", 5, timeout_schedule=(1.0, 1.0))
    assert result == 5
    # Back-to-back schedule steps: ~1s timeout + the quick second try.
    assert runtime.sim.now - started < 2.0


# ----------------------------------------------------------------------
# Adaptive timeouts: Jacobson/Karn RTT estimation
# ----------------------------------------------------------------------


def _make_estimator(**kwargs):
    from repro.net import RttEstimator

    return RttEstimator(**kwargs)


def test_estimator_cold_state_uses_initial_rto():
    estimator = _make_estimator(initial_rto_s=2.0)
    assert estimator.samples == 0
    assert estimator.rto_s == 2.0
    assert estimator.hedge_delay_s() == 2.0
    assert estimator.timeout_schedule(3) == (2.0, 4.0, 8.0)


def test_estimator_first_sample_seeds_srtt_and_variance():
    estimator = _make_estimator()
    estimator.observe(0.1)
    # RFC 6298 first sample: srtt = R, rttvar = R/2, rto = R + 4*R/2.
    assert estimator.srtt == pytest.approx(0.1)
    assert estimator.rttvar == pytest.approx(0.05)
    assert estimator.rto_s == pytest.approx(0.3)


def test_estimator_converges_on_stable_rtt():
    estimator = _make_estimator()
    for __ in range(200):
        estimator.observe(0.02)
    # Variance decays to ~0 on a steady peer; RTO hugs the RTT (floored
    # by min_rto_s).
    assert estimator.srtt == pytest.approx(0.02, rel=1e-3)
    assert estimator.rto_s < 0.025
    assert estimator.hedge_delay_s() < 0.025


def test_estimator_variance_widens_rto_under_jittery_rtt():
    steady = _make_estimator()
    jittery = _make_estimator()
    for index in range(100):
        steady.observe(0.05)
        jittery.observe(0.02 if index % 2 == 0 else 0.08)
    # Same mean, very different spread: the jittery peer earns the
    # longer timeout.
    assert jittery.srtt == pytest.approx(steady.srtt, abs=0.005)
    assert jittery.rto_s > 2.0 * steady.rto_s


def test_estimator_clamps_to_min_and_max_rto():
    fast = _make_estimator(min_rto_s=0.5)
    for __ in range(50):
        fast.observe(0.001)
    assert fast.rto_s == 0.5
    slow = _make_estimator(max_rto_s=10.0)
    for __ in range(50):
        slow.observe(30.0)
    assert slow.rto_s == 10.0
    assert slow.timeout_schedule(4) == (10.0,) * 4
    assert slow.hedge_delay_s() == 10.0


def test_estimator_rejects_bad_parameters_and_samples():
    with pytest.raises(ValueError):
        _make_estimator(initial_rto_s=0.0)
    with pytest.raises(ValueError):
        _make_estimator(min_rto_s=2.0, max_rto_s=1.0)
    estimator = _make_estimator()
    with pytest.raises(ValueError):
        estimator.observe(-0.1)
    with pytest.raises(ValueError):
        estimator.timeout_schedule(0)


def test_adaptive_invoker_shrinks_timeouts_after_warmup(runtime):
    """Once warmed on real RTTs, the adaptive schedule replaces the
    calibrated worst-case walk: a dropped request is re-tried within
    milliseconds instead of the calibrated ~30 s first step."""
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance())
    client = runtime.make_client("host01")
    client.invoker.enable_adaptive_timeouts()
    for __ in range(20):  # warm the per-peer estimator
        client.call_sync(loid, "inc", 1)
    estimator = client.invoker.estimator_for(
        runtime.binding_agent.current_address(loid)
    )
    assert estimator.samples == 20
    calibrated_first = client.invoker._calibration.rebind_timeout_schedule_s[0]
    assert estimator.rto_s < calibrated_first / 10.0
    runtime.network.faults.add_drop_rule(
        DropRule(
            predicate=lambda m: m.kind == "request"
            and isinstance(m.payload, dict)
            and m.payload.get("op") == "invoke",
            count=1,
        )
    )
    started = runtime.sim.now
    assert client.call_sync(loid, "inc", 1) == 21
    # The retry fired on the adaptive RTO, far below the calibrated
    # first step (even with the 15% schedule jitter).
    assert runtime.sim.now - started < calibrated_first / 2.0


def test_adaptive_invoker_respects_explicit_schedules(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance())
    client = runtime.make_client("host01")
    client.invoker.enable_adaptive_timeouts()
    for __ in range(5):
        client.call_sync(loid, "inc", 1)
    runtime.network.faults.add_drop_rule(
        DropRule(
            predicate=lambda m: m.kind == "request"
            and isinstance(m.payload, dict)
            and m.payload.get("op") == "invoke",
            count=1,
        )
    )
    started = runtime.sim.now
    assert client.call_sync(loid, "inc", 1, timeout_schedule=(3.0, 3.0)) == 6
    # The explicit 3 s first step ran, not the millisecond RTO.
    assert runtime.sim.now - started > 2.0


def test_hedged_invocation_beats_gray_peer(runtime):
    """An armed invoker with ``hedge=True`` races a backup against a
    limping reply path and returns at hedge speed, not timeout speed."""
    from repro.net import ReorderRule

    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance(host_name="host02"))
    client = runtime.make_client("host01")
    client.invoker.enable_hedging(delay_s=0.05)
    assert client.invoker.hedging_enabled
    # Hold back exactly one invoke request so its hedge overtakes it.
    held = []

    def first_invoke_only(message):
        if (
            message.kind == "request"
            and isinstance(message.payload, dict)
            and message.payload.get("op") == "invoke"
            and not held
        ):
            held.append(message.message_id)
        return message.message_id in held

    runtime.network.faults.add_delay_rule(
        ReorderRule(
            probability=1.0, max_skew_s=5.0, predicate=first_invoke_only, seed=2
        )
    )
    started = runtime.sim.now
    result = runtime.sim.run_process(
        client.invoker.invoke(loid, "get", (), hedge=True)
    )
    assert result == 0
    assert runtime.sim.now - started < 1.0
    assert runtime.network.count_value("transport.hedge_wins") == 1


def test_unarmed_invoker_ignores_hedge_flag(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance())
    client = runtime.make_client("host01")
    assert not client.invoker.hedging_enabled
    result = runtime.sim.run_process(
        client.invoker.invoke(loid, "inc", (1,), hedge=True)
    )
    assert result == 1
    assert runtime.network.count_value("transport.hedges") == 0
