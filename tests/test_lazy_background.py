"""Tests for the background-polling lazy variant and daemon scheduling."""

import pytest

from repro.core.policies import LazyUpdatePolicy, SingleVersionPolicy
from repro.sim import Simulator
from tests.conftest import create_dcdo, make_sorter_manager
from tests.test_core_policies import swap_to_descending


# ----------------------------------------------------------------------
# Kernel: daemon scheduling
# ----------------------------------------------------------------------


def test_daemon_timeout_does_not_keep_run_alive():
    sim = Simulator()
    ticks = []

    def poller():
        while True:
            yield sim.timeout(1.0, daemon=True)
            ticks.append(sim.now)

    sim.spawn(poller())
    sim.run()  # must terminate despite the infinite poller
    assert ticks == []


def test_daemon_poller_advances_while_real_work_runs():
    sim = Simulator()
    ticks = []

    def poller():
        while True:
            yield sim.timeout(1.0, daemon=True)
            ticks.append(sim.now)

    def real_work():
        yield sim.timeout(3.5)

    sim.spawn(poller())
    sim.spawn(real_work())
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_daemon_timeout_fires_under_bounded_run():
    sim = Simulator()
    ticks = []

    def poller():
        while True:
            yield sim.timeout(1.0, daemon=True)
            ticks.append(sim.now)

    sim.spawn(poller())
    sim.run(until=2.5)
    assert ticks == [1.0, 2.0]


# ----------------------------------------------------------------------
# Background lazy policy
# ----------------------------------------------------------------------


def test_background_lazy_updates_without_traffic(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(background_every_s=5.0),
    )
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    assert manager.instance_version(loid) != version
    # No client calls at all; the background check catches up.
    runtime.sim.run(until=runtime.sim.now + 6.0)
    runtime.sim.run()
    assert manager.instance_version(loid) == version


def test_background_lazy_does_not_check_per_call(runtime):
    manager = make_sorter_manager(
        runtime,
        type_name="BgOnly",
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(background_every_s=1000.0),
    )
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    client = runtime.make_client()
    client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,))
    # Calls alone do not trigger the update (no call-time checker).
    assert manager.instance_version(loid) == v1


def test_background_poller_stops_with_instance(runtime):
    manager = make_sorter_manager(
        runtime,
        type_name="BgStop",
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(background_every_s=2.0),
    )
    loid, __ = create_dcdo(runtime, manager)
    runtime.sim.run_process(manager.deactivate_instance(loid))
    # An unbounded run terminates: the poller's sleeps are daemon and
    # it exits at its next tick.
    runtime.sim.run(until=runtime.sim.now + 3.0)
    runtime.sim.run()


def test_background_policy_validation():
    with pytest.raises(ValueError):
        LazyUpdatePolicy(background_every_s=0)


def test_background_combines_with_call_time_checks(runtime):
    """background + every_k_calls: both paths drive updates."""
    manager = make_sorter_manager(
        runtime,
        type_name="BgCombo",
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(every_k_calls=2, background_every_s=500.0),
    )
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    client = runtime.make_client()
    client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,))
    client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,))
    assert manager.instance_version(loid) == version
