"""Tests for wide-area topology: sites, latencies, and DCDOs over WAN."""

import pytest

from repro.cluster import build_wan
from repro.legion import LegionRuntime
from repro.net import Message, Network
from repro.sim import Simulator
from repro.workloads import make_noop_manager


# ----------------------------------------------------------------------
# Fabric-level topology
# ----------------------------------------------------------------------


def test_site_assignment_by_prefix():
    sim = Simulator()
    net = Network(sim)
    net.assign_site("s0", "east")
    net.assign_site("s1", "west")
    assert net.site_of("s0h00/obj@1") == "east"
    assert net.site_of("s1h03/client#2") == "west"
    assert net.site_of("service/binding-agent") == net.DEFAULT_SITE


def test_longest_prefix_wins():
    sim = Simulator()
    net = Network(sim)
    net.assign_site("s0", "east")
    net.assign_site("s0h99", "special")
    assert net.site_of("s0h99/x") == "special"
    assert net.site_of("s0h01/x") == "east"


def test_intersite_latency_applies_cross_site_only():
    sim = Simulator()
    net = Network(sim, latency_s=0.0001)
    net.assign_site("a", "east")
    net.assign_site("b", "west")
    net.set_intersite_latency("east", "west", 0.040)
    assert net.latency_between("a1", "a2") == pytest.approx(0.0001)
    assert net.latency_between("a1", "b1") == pytest.approx(0.040)
    assert net.latency_between("b1", "a1") == pytest.approx(0.040)  # symmetric


def test_negative_intersite_latency_rejected():
    net = Network(Simulator())
    with pytest.raises(ValueError):
        net.set_intersite_latency("a", "b", -1)


def test_cross_site_delivery_pays_wan_latency():
    sim = Simulator()
    net = Network(sim, latency_s=0.0001)
    net.assign_site("east-host", "east")
    net.assign_site("west-host", "west")
    net.set_intersite_latency("east", "west", 0.050)
    net.attach("east-host")
    port = net.attach("west-host")
    net.send(Message(source="east-host", destination="west-host", payload=None))

    def receiver():
        yield port.inbox.get()
        return sim.now

    arrival = sim.run_process(receiver())
    assert arrival >= 0.050


# ----------------------------------------------------------------------
# WAN testbed + DCDOs across sites
# ----------------------------------------------------------------------


def test_build_wan_shape():
    testbed = build_wan(3, 2)
    assert len(testbed.hosts) == 6
    network = testbed.network
    assert network.site_of("s0h00") == "site0"
    assert network.site_of("s2h01") == "site2"
    assert network.latency_between("s0h00/x", "s2h01/y") == pytest.approx(0.030)


def test_wan_rtt_reflects_distance():
    runtime = LegionRuntime(build_wan(2, 2, seed=31))
    manager, __ = make_noop_manager(
        runtime, "WanType", component_count=1, functions_per_component=2
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="s0h00"))
    near = runtime.make_client("s0h01")
    far = runtime.make_client("s1h00")
    near.call_sync(loid, "ping")
    far.call_sync(loid, "ping", timeout_schedule=(30.0,))
    start = runtime.sim.now
    near.call_sync(loid, "ping")
    near_rtt = runtime.sim.now - start
    start = runtime.sim.now
    far.call_sync(loid, "ping", timeout_schedule=(30.0,))
    far_rtt = runtime.sim.now - start
    # The far client pays two 30 ms WAN legs on top of everything else.
    assert far_rtt > near_rtt + 0.055
    assert near_rtt < 0.01


def test_wan_migration_between_sites_preserves_function(runtime=None):
    runtime = LegionRuntime(build_wan(2, 2, seed=32))
    manager, __ = make_noop_manager(
        runtime, "WanMove", component_count=1, functions_per_component=2
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="s0h00"))
    runtime.sim.run_process(manager.migrate_instance(loid, "s1h01"))
    assert manager.record(loid).host.name == "s1h01"
    client = runtime.make_client("s0h01")
    assert client.call_sync(loid, "ping", 5, timeout_schedule=(30.0,)) == (5,)


def test_wan_evolution_still_dwarfs_baseline_disruption():
    """The paper's headline holds over the WAN too: a DCDO evolution
    (even with WAN round trips to the manager) is orders of magnitude
    below the stale-binding stall a baseline client pays."""
    from repro.core.policies import GeneralEvolutionPolicy
    from repro.workloads import build_component_version, synthetic_components

    runtime = LegionRuntime(build_wan(2, 2, seed=33))
    manager, __ = make_noop_manager(
        runtime,
        "WanEvolve",
        component_count=1,
        functions_per_component=2,
        evolution_policy=GeneralEvolutionPolicy(),
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="s1h00"))
    obj = manager.record(loid).obj
    extra = synthetic_components(1, 2, prefix="wanx-")
    variant = extra[0].variant_for_host(obj.host)
    obj.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    evolution_time = runtime.sim.now - start
    # A couple of WAN round trips, far below the ~30 s rebind stall.
    assert evolution_time < 1.0
