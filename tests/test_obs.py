"""Tests for metrics primitives and system reports."""

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, Timer, collect_system_report, render_report
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------


def test_counter_increments():
    counter = Counter("calls")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").increment(-1)


def test_gauge_tracks_peak():
    gauge = Gauge("threads")
    gauge.adjust(3)
    gauge.adjust(-1)
    gauge.adjust(1)
    assert gauge.value == 3
    assert gauge.peak == 3


def test_gauge_peak_of_negative_only_values_is_not_zero():
    gauge = Gauge("headroom")
    gauge.set(-5)
    gauge.set(-2)
    gauge.set(-9)
    assert gauge.value == -9
    # The peak is the highest value the gauge ever *held*, not a
    # phantom 0 from initialization.
    assert gauge.peak == -2


def test_gauge_peak_before_any_set_matches_value():
    gauge = Gauge("untouched")
    assert gauge.peak == 0
    assert gauge.value == 0


def test_timer_repeated_percentiles_are_stable_and_cached():
    timer = Timer("cached")
    for sample in (4.0, 1.0, 3.0, 2.0):
        timer.record(sample)
    first = [timer.percentile(f) for f in (0.0, 0.5, 0.99, 1.0)]
    for _ in range(100):
        assert [timer.percentile(f) for f in (0.0, 0.5, 0.99, 1.0)] == first
    # All 404 percentile calls shared a single sort of the reservoir.
    assert timer.sorted_rebuilds == 1
    timer.record(0.5)
    assert timer.percentile(0.0) == 0.5
    assert timer.sorted_rebuilds == 2


def test_timer_record_does_not_sort():
    """record() stays O(1) amortized: no sorted-view rebuild happens
    until a percentile is actually read."""
    timer = Timer("o1", reservoir_size=64)
    for index in range(1000):
        timer.record(float(index % 97))
    assert timer.sorted_rebuilds == 0
    timer.percentile(0.5)
    assert timer.sorted_rebuilds == 1


def test_timer_statistics():
    timer = Timer("latency")
    for sample in (1.0, 2.0, 3.0, 4.0):
        timer.record(sample)
    assert timer.count == 4
    assert timer.mean() == 2.5
    assert timer.percentile(0.0) == 1.0
    assert timer.percentile(1.0) == 4.0
    assert timer.percentile(0.5) in (2.0, 3.0)


def test_timer_empty_statistics():
    timer = Timer("empty")
    assert timer.mean() is None
    assert timer.percentile(0.5) is None


def test_timer_rejects_bad_inputs():
    timer = Timer("bad")
    with pytest.raises(ValueError):
        timer.record(-1)
    timer.record(1)
    with pytest.raises(ValueError):
        timer.percentile(2)


def test_timer_measure_uses_simulated_time():
    sim = Simulator()
    timer = Timer("work", sim=sim)

    def body():
        yield sim.timeout(2.5)
        return "done"

    def proc():
        result = yield from timer.measure(body())
        return result

    assert sim.run_process(proc()) == "done"
    assert timer.samples == [2.5]


def test_timer_measure_without_sim_raises():
    timer = Timer("no-sim")
    with pytest.raises(RuntimeError):
        next(timer.measure(iter(())))


def test_registry_get_or_create_and_snapshot():
    sim = Simulator()
    registry = MetricsRegistry(sim=sim)
    registry.counter("a").increment()
    registry.gauge("b").set(7)
    registry.timer("c").record(1.0)
    assert registry.counter("a") is registry.counter("a")
    snapshot = registry.snapshot()
    assert snapshot["a"] == 1
    assert snapshot["b"] == {"value": 7, "peak": 7}
    assert snapshot["c"] == {"count": 1, "mean": 1.0, "p50": 1.0, "p99": 1.0}
    assert len(registry) == 3


def test_registry_type_conflicts_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


# ----------------------------------------------------------------------
# System reports
# ----------------------------------------------------------------------


def test_system_report_covers_dcdo_fleet(runtime):
    from tests.conftest import create_dcdo, make_sorter_manager

    manager = make_sorter_manager(runtime)
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    client.call_sync(loid, "sort", [2, 1])
    report = collect_system_report(runtime)

    assert report.at == runtime.sim.now
    assert report.network["messages_delivered"] > 0
    assert report.total_active_objects >= 1

    object_info = report.objects[str(loid)]
    assert object_info["active"]
    assert object_info["version"] == "1"
    assert object_info["components"] == ["compare-asc", "sorter"]
    assert object_info["dynamic_calls"] >= 2  # sort + nested compares

    type_info = report.types["Sorter"]
    assert type_info["instances"] == 1
    assert type_info["current_version"] == "1"
    assert "compare-desc" in type_info["components"]


def test_system_report_counts_evolutions(runtime):
    from repro.core.policies import GeneralEvolutionPolicy
    from tests.conftest import create_dcdo, make_sorter_manager

    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    version = manager.derive_version(manager.current_version)
    manager.descriptor_of(version).set_exported("compare", "compare-asc", False)
    manager.mark_instantiable(version)
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    report = collect_system_report(runtime)
    assert report.types["Sorter"]["evolutions"] == 1
    assert report.objects[str(loid)]["version"] == str(version)


def test_render_report_is_readable(runtime):
    from tests.conftest import create_dcdo, make_sorter_manager

    manager = make_sorter_manager(runtime)
    create_dcdo(runtime, manager)
    text = render_report(collect_system_report(runtime))
    assert "system report at" in text
    assert "type Sorter" in text
    assert "host host00" in text
