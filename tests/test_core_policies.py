"""Tests for evolution management strategies (§3.3-3.5)."""

import pytest

from repro.core import EvolutionDisallowed
from repro.core.policies import (
    ExplicitUpdatePolicy,
    GeneralEvolutionPolicy,
    HybridEvolutionPolicy,
    IncreasingVersionPolicy,
    LazyUpdatePolicy,
    NoUpdatePolicy,
    ProactiveUpdatePolicy,
    SingleVersionPolicy,
)
from tests.conftest import create_dcdo, make_sorter_manager


def swap_to_descending(manager, parent=None):
    """Derive (from ``parent`` or current) a version using compare-desc."""
    parent = parent or manager.current_version
    version = manager.derive_version(parent)
    descriptor = manager.descriptor_of(version)
    if "compare-desc" not in descriptor.component_ids:
        manager.incorporate_into(version, "compare-desc")
        descriptor = manager.descriptor_of(version)
    descriptor.enable("compare", "compare-desc", replace_current=True)
    manager.mark_instantiable(version)
    return version


# ----------------------------------------------------------------------
# Evolution (version-graph) policies
# ----------------------------------------------------------------------


def test_single_version_only_evolves_to_current(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=SingleVersionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    other = swap_to_descending(manager)  # instantiable but NOT current
    with pytest.raises(EvolutionDisallowed):
        runtime.sim.run_process(manager.evolve_instance(loid, other))
    manager.set_current_version(other)
    reached = runtime.sim.run_process(manager.evolve_instance(loid, other))
    assert reached == other


def test_no_update_policy_freezes_instances(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=NoUpdatePolicy())
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    with pytest.raises(EvolutionDisallowed):
        runtime.sim.run_process(manager.evolve_instance(loid, version))
    # But new instances pick up a new current version.
    manager.set_current_version(version)
    new_loid, __ = create_dcdo(runtime, manager)
    assert manager.instance_version(new_loid) == version
    assert manager.instance_version(loid) != version


def test_increasing_version_allows_descendants_only(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=IncreasingVersionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    child = swap_to_descending(manager, parent=v1)
    sibling_root = manager.new_version()
    for component_id in ("sorter", "compare-asc"):
        manager.incorporate_into(sibling_root, component_id)
    descriptor = manager.descriptor_of(sibling_root)
    descriptor.enable("sort", "sorter")
    descriptor.enable("compare", "compare-asc")
    manager.mark_instantiable(sibling_root)
    # Descendant: allowed.
    reached = runtime.sim.run_process(manager.evolve_instance(loid, child))
    assert reached == child
    # Non-descendant root: vetoed.
    with pytest.raises(EvolutionDisallowed):
        runtime.sim.run_process(manager.evolve_instance(loid, sibling_root))


def test_increasing_version_lazy_refinement_stays_put(runtime):
    """§3.5: if the new current version is not derived from the DCDO's
    version, the DCDO remains at its present version."""
    manager = make_sorter_manager(runtime, evolution_policy=IncreasingVersionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    child = swap_to_descending(manager, parent=v1)
    reached = runtime.sim.run_process(manager.evolve_instance(loid, child))
    assert reached == child
    # New current version is a sibling (derived from v1, not from child).
    sibling = swap_to_descending(manager, parent=v1)
    manager.set_current_version(sibling)
    stayed = runtime.sim.run_process(manager.try_evolve_instance(loid))
    assert stayed == child
    assert manager.instance_version(loid) == child


def test_general_evolution_allows_any_instantiable(runtime):
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    child = swap_to_descending(manager, parent=v1)
    runtime.sim.run_process(manager.evolve_instance(loid, child))
    # Evolving *back* to v1 (not a descendant of child) is fine here.
    reached = runtime.sim.run_process(manager.evolve_instance(loid, v1))
    assert reached == v1


def test_hybrid_policy_blocks_rule_violations(runtime):
    """§3.5 hybrid: general evolution minus transitions that remove a
    mandatory function or disable a permanent one."""
    from repro.core import ComponentBuilder

    manager = make_sorter_manager(runtime, evolution_policy=HybridEvolutionPolicy())
    v1 = manager.current_version
    # v2 marks sort mandatory.
    v2 = manager.derive_version(v1)
    manager.descriptor_of(v2).mark_mandatory("sort")
    manager.mark_instantiable(v2)
    # v3 (sibling of v2, derived from v1): no sorter at all.
    bare = ComponentBuilder("bare").function("noop", lambda ctx: None).build()
    manager.register_component(bare)
    v3 = manager.derive_version(v1)
    descriptor = manager.descriptor_of(v3)
    descriptor.disable("sort", "sorter")
    descriptor.remove_component("sorter")
    manager.incorporate_into(v3, "bare")
    manager.descriptor_of(v3).enable("noop", "bare")
    manager.mark_instantiable(v3)

    loid, __ = create_dcdo(runtime, manager)
    runtime.sim.run_process(manager.evolve_instance(loid, v2))
    with pytest.raises(Exception) as excinfo:
        runtime.sim.run_process(manager.evolve_instance(loid, v3))
    from repro.core import MandatoryViolation

    assert isinstance(excinfo.value, MandatoryViolation)
    # From v1 (no mandatory markings) the same transition is legal.
    other_loid, __ = create_dcdo(runtime, manager)
    reached = runtime.sim.run_process(manager.evolve_instance(other_loid, v3))
    assert reached == v3


# ----------------------------------------------------------------------
# Update (propagation) policies
# ----------------------------------------------------------------------


def test_proactive_update_evolves_all_on_version_cut(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=ProactiveUpdatePolicy(),
    )
    loids = [create_dcdo(runtime, manager)[0] for __ in range(3)]
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    assert all(manager.instance_version(loid) == version for loid in loids)
    client = runtime.make_client()
    assert client.call_sync(loids[0], "sort", [1, 2, 3]) == [3, 2, 1]


def test_proactive_parallel_faster_than_serial(runtime):
    """§3.4: proactive "does not scale well with the number of DCDOs";
    the parallel variant amortizes, the serial variant pays linearly."""
    import repro.cluster as cluster
    from repro.legion import LegionRuntime

    durations = {}
    for parallel in (True, False):
        fresh = LegionRuntime(cluster.build_lan(4, seed=11))
        manager = make_sorter_manager(
            fresh,
            update_policy=ProactiveUpdatePolicy(parallel=parallel),
        )
        for __ in range(4):
            create_dcdo(fresh, manager)
        version = swap_to_descending(manager)
        start = fresh.sim.now
        manager.set_current_version(version)
        durations[parallel] = fresh.sim.now - start
    assert durations[True] < durations[False]


def test_explicit_update_does_nothing_automatically(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=ExplicitUpdatePolicy(),
    )
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    assert manager.instance_version(loid) == v1  # still old
    client = runtime.make_client()
    client.call_sync(manager.loid, "updateInstance", loid, timeout_schedule=(600.0,))
    assert manager.instance_version(loid) == version


def test_lazy_strict_updates_before_next_call(runtime):
    """§3.4: strict consistency — DCDOs consult their class on every
    invocation request."""
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(),
    )
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    assert manager.instance_version(loid) != version
    client = runtime.make_client()
    # The next user call triggers the check and the update first.
    assert client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,)) == [2, 1]
    assert manager.instance_version(loid) == version


def test_lazy_every_k_calls(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(every_k_calls=3),
    )
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    client = runtime.make_client()
    results = [
        client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,)) for __ in range(3)
    ]
    # Calls 1 and 2 ran ascending (no check yet); call 3 checked first.
    assert results == [[1, 2], [1, 2], [2, 1]]


def test_lazy_every_t_seconds(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(every_t_seconds=100.0),
    )
    loid, __ = create_dcdo(runtime, manager)
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    client = runtime.make_client()
    # First-ever call checks (no prior check time), updating the object.
    assert client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,)) == [2, 1]
    # Fresh cut within the window: next call does NOT check.
    newer = swap_to_descending(manager, parent=version)
    manager.set_current_version(newer)
    assert client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,)) == [2, 1]
    assert manager.instance_version(loid) == version
    # After the window passes, the check fires again.
    runtime.sim.run(until=runtime.sim.now + 101.0)
    client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,))
    assert manager.instance_version(loid) == newer


def test_lazy_on_migrate_updates_at_migration_only(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(check_on_migrate=True),
    )
    loid, __ = create_dcdo(runtime, manager)
    v1 = manager.current_version
    version = swap_to_descending(manager)
    manager.set_current_version(version)
    client = runtime.make_client()
    client.call_sync(loid, "sort", [1, 2], timeout_schedule=(600.0,))
    assert manager.instance_version(loid) == v1  # calls don't trigger it
    source = manager.record(loid).host.name
    target = next(name for name in runtime.hosts if name != source)
    runtime.sim.run_process(manager.migrate_instance(loid, target))
    runtime.sim.run()  # let the post-migration check complete
    assert manager.instance_version(loid) == version


def test_lazy_check_unreachable_manager_does_not_break_calls(runtime):
    manager = make_sorter_manager(
        runtime,
        evolution_policy=SingleVersionPolicy(),
        update_policy=LazyUpdatePolicy(),
    )
    loid, __ = create_dcdo(runtime, manager)
    manager.deactivate()  # the manager object goes dark
    client = runtime.make_client()
    assert client.call_sync(loid, "sort", [2, 1], timeout_schedule=(600.0,)) == [1, 2]


def test_policy_validation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LazyUpdatePolicy(every_k_calls=0)
    with pytest.raises(ValueError):
        LazyUpdatePolicy(every_t_seconds=0)
