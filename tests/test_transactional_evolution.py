"""Transactional evolution: two-phase apply, rollback, breaker, wave abort.

The tentpole invariant under test: ``applyConfiguration`` is all-or-
nothing.  A prepare failure (unreachable ICO) or a commit failure
(busy component under the ERROR policy) leaves the instance *exactly*
on its old version — same components, same entry states, same
restrictions — and the per-version application counters never show a
partial application.  On top of that sit the circuit breaker guarding
ICO fetches and the wave-abort policy that rolls a whole fleet back.
"""

import pytest

from repro.cluster import build_lan
from repro.cluster.chaos import crash_host
from repro.core import (
    ComponentBuilder,
    ComponentBusy,
    DeliveryStatus,
    EvolutionPhase,
    ManagerJournal,
    WaveAborted,
    WavePolicy,
    define_dcdo_type,
    diff_descriptors,
    recover_manager,
)
from repro.legion import LegionRuntime
from repro.legion.errors import ObjectUnreachable
from repro.net import CircuitOpen, PrefixPartition, RetryPolicy
from repro.obs import Tracer

from tests.conftest import create_dcdo, make_sorter_manager

#: One-attempt delivery policy: chaos-free tests that want a FAILED
#: delivery quickly, without walking a retry ladder.
ONE_SHOT = RetryPolicy(base_s=1.0, max_attempts=1)


def build_sorter_fleet(hosts=5, instances=2, ico_host="host03", **manager_kwargs):
    """Runtime + journaled sorter manager with compare-desc's ICO pinned.

    The v1 components (sorter, compare-asc) stay on the manager's host
    (host00); ``compare-desc`` — the component every v2 evolution must
    fetch — is served from ``ico_host``, so tests can partition or
    crash exactly the prepare-phase dependency.  Instances land on
    host01, host02, ...
    """
    runtime = LegionRuntime(build_lan(hosts, seed=7))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        component_hosts={
            "sorter": "host00",
            "compare-asc": "host00",
            "compare-desc": ico_host,
        },
        journal=journal,
        **manager_kwargs,
    )
    loids = []
    for index in range(instances):
        loid, __ = create_dcdo(runtime, manager, host_name=f"host{index + 1:02d}")
        loids.append(loid)
    return runtime, manager, journal, loids


def derive_v2(manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    return version


def make_diff(manager, from_version, to_version):
    """The ConfigurationDiff evolve_instance would ship, built directly
    so tests can drive DCDO.apply_configuration without the manager RPC."""
    diff = diff_descriptors(
        manager.version_record(from_version).descriptor,
        manager.version_record(to_version).descriptor,
    )
    diff.target_version = to_version
    return diff


def assert_fully_on_v1(obj, v1, v2):
    """The never-half-applied invariant, spelled out."""
    assert obj.version == v1
    assert obj.dfm.component_ids == {"sorter", "compare-asc"}
    assert obj.dfm.enabled_components_of("compare") == {"compare-asc"}
    assert obj.dfm.enabled_components_of("sort") == {"sorter"}
    assert sorted(obj.dfm.exported_interface()) == ["compare", "sort"]
    assert v2 not in obj.applications_by_version
    assert obj.evolution_phase is EvolutionPhase.IDLE


# ----------------------------------------------------------------------
# Prepare failure: unreachable ICO → compensating rollback
# ----------------------------------------------------------------------


def test_prepare_failure_rolls_back_to_old_version():
    runtime, manager, __, loids = build_sorter_fleet(instances=1)
    runtime.tracer = Tracer(runtime.sim)
    loid = loids[0]
    obj = manager.record(loid).obj
    v1 = manager.current_version
    v2 = derive_v2(manager)
    # Cut the instance off from compare-desc's ICO only; the manager
    # and the rest of the world stay reachable.
    runtime.network.faults.add_partition(
        PrefixPartition(["host03/"], ["host01/"], start=0.0, end=10_000.0)
    )
    diff = make_diff(manager, v1, v2)
    with pytest.raises(ObjectUnreachable):
        runtime.sim.run_process(obj.apply_configuration(diff))
    assert_fully_on_v1(obj, v1, v2)
    assert obj.rollbacks == 1
    assert runtime.network.count_value("dcdo.prepares") == 1
    assert runtime.network.count_value("dcdo.rollbacks") == 1
    assert runtime.network.count_value("dcdo.commits") == 0
    # A rollback is visible in the trace, stamped with its cause.
    events = [
        event
        for event in runtime.tracer.events
        if event.category == "evolution-rolled-back"
    ]
    assert events and events[0].detail("cause") == "ObjectUnreachable"

    # After the partition heals, the same diff applies cleanly.
    def heal_then_apply():
        yield runtime.sim.timeout(10_001.0 - runtime.sim.now)
        result = yield from obj.apply_configuration(make_diff(manager, v1, v2))
        return result

    result = runtime.sim.run_process(heal_then_apply())
    assert result == str(v2)
    assert obj.version == v2
    assert obj.applications_by_version.get(v2) == 1
    assert obj.rollbacks == 1  # no further rollbacks


# ----------------------------------------------------------------------
# Commit failure: busy component under ERROR policy → full undo
# ----------------------------------------------------------------------


def work_v1_body(ctx, seconds):
    yield ctx.work(seconds)
    return "v1"


def work_v2_body(ctx, seconds):
    return "v2"
    yield  # pragma: no cover - uniform generator shape


def build_worker_fleet():
    """A one-function DCDO type whose v2 swaps the implementing
    component — the §3.1 disappearing-component hazard on a platter."""
    runtime = LegionRuntime(build_lan(4, seed=7))
    manager = define_dcdo_type(runtime, "Worker")
    worker_v1 = (
        ComponentBuilder("worker-v1")
        .function("work", work_v1_body, signature="String work(Float)")
        .variant(size_bytes=64_000)
        .build()
    )
    worker_v2 = (
        ComponentBuilder("worker-v2")
        .function("work", work_v2_body, signature="String work(Float)")
        .variant(size_bytes=64_000)
        .build()
    )
    manager.register_component(worker_v1, host_name="host00")
    manager.register_component(worker_v2, host_name="host00")
    v1 = manager.new_version()
    manager.incorporate_into(v1, "worker-v1")
    manager.descriptor_of(v1).enable("work", "worker-v1")
    manager.mark_instantiable(v1)
    manager.set_current_version(v1)
    loid, obj = create_dcdo(runtime, manager, host_name="host01")
    v2 = manager.derive_version(v1)
    manager.incorporate_into(v2, "worker-v2")
    descriptor = manager.descriptor_of(v2)
    descriptor.enable("work", "worker-v2", replace_current=True)
    descriptor.remove_component("worker-v1")
    manager.mark_instantiable(v2)
    # Explicit update policy: making v2 current does not auto-propagate,
    # but it lets the (single-version) evolution policy admit v2.
    manager.set_current_version(v2)
    return runtime, manager, loid, obj, v1, v2


def test_commit_failure_fully_undoes_entry_flips_and_adds():
    """ComponentBusy strikes *after* the entry states flipped and the
    new component mapped in; the rollback must unwind both."""
    runtime, manager, loid, obj, v1, v2 = build_worker_fleet()
    client = runtime.make_client("host02")
    results = {}

    def long_call():
        results["work"] = yield from client.invoke(
            loid, "work", 30.0, timeout_schedule=(60.0,)
        )

    def scenario():
        runtime.sim.spawn(long_call(), name="busy-caller")
        yield runtime.sim.timeout(1.0)  # the work thread is now active
        try:
            yield from manager.evolve_instance(loid, v2)
        except ComponentBusy as error:
            return error
        return None

    error = runtime.sim.run_process(scenario())
    assert error is not None and error.component_id == "worker-v1"
    # Fully back on v1: old implementation enabled, new component gone.
    assert obj.version == v1
    assert obj.dfm.component_ids == {"worker-v1"}
    assert obj.dfm.enabled_components_of("work") == {"worker-v1"}
    assert v2 not in obj.applications_by_version
    assert obj.rollbacks == 1
    assert manager.instance_version(loid) == v1
    # The in-flight call keeps running on the old implementation and
    # completes; afterwards the evolution goes through.
    runtime.sim.run()
    assert results["work"] == "v1"
    version = runtime.sim.run_process(manager.evolve_instance(loid, v2))
    assert version == v2
    assert obj.dfm.component_ids == {"worker-v2"}
    assert obj.applications_by_version.get(v2) == 1


# ----------------------------------------------------------------------
# Duplicate delivery racing a FAILED first application
# ----------------------------------------------------------------------


def test_duplicate_after_failed_apply_becomes_the_applier():
    """A waiter parked on the applying-gate must re-check when the gate
    fires on *failure* and take over the application itself."""
    runtime, manager, __, loids = build_sorter_fleet(instances=1)
    obj = manager.record(loids[0]).obj
    v1, v2 = manager.current_version, derive_v2(manager)
    # ICO unreachable long enough to fail the first application (it
    # exhausts its fetch schedule at ~132 s), healed in time for the
    # second — the duplicate turned applier — to succeed on a retry.
    runtime.network.faults.add_partition(
        PrefixPartition(["host03/"], ["host01/"], start=0.0, end=150.0)
    )
    outcomes = []

    def attempt(tag, delay):
        yield runtime.sim.timeout(delay)
        try:
            result = yield from obj.apply_configuration(make_diff(manager, v1, v2))
        except Exception as error:  # noqa: BLE001 - recorded for assertions
            outcomes.append((tag, "error", error))
        else:
            outcomes.append((tag, "ok", result))

    runtime.sim.spawn(attempt("first", 0.0), name="apply-first")
    runtime.sim.spawn(attempt("second", 1.0), name="apply-second")
    runtime.sim.run()

    assert dict((tag, kind) for tag, kind, __ in outcomes) == {
        "first": "error",
        "second": "ok",
    }
    first_error = next(payload for tag, __, payload in outcomes if tag == "first")
    assert isinstance(first_error, ObjectUnreachable)
    # The duplicate waited on the gate (counted), then applied itself.
    assert obj.duplicate_deliveries == 1
    assert obj.rollbacks == 1
    assert obj.version == v2
    assert obj.applications_by_version.get(v2) == 1


# ----------------------------------------------------------------------
# _await_functions_idle wakes on the LAST thread exit
# ----------------------------------------------------------------------


def test_await_functions_idle_wakes_only_when_all_threads_exit():
    runtime, manager, loid, obj, v1, v2 = build_worker_fleet()
    short_client = runtime.make_client("host02")
    long_client = runtime.make_client("host03")
    runtime.sim.spawn(
        short_client.invoke(loid, "work", 3.0, timeout_schedule=(60.0,)),
        name="short-worker",
    )
    runtime.sim.spawn(
        long_client.invoke(loid, "work", 7.0, timeout_schedule=(60.0,)),
        name="long-worker",
    )

    def waiter():
        yield runtime.sim.timeout(0.5)
        assert obj.dfm.active_threads_in("worker-v1") == 2
        yield from obj._await_functions_idle(["work"])
        return runtime.sim.now

    released_at = runtime.sim.run_process(waiter())
    # The first exit (~t=4) fires the signal; the waiter must re-check
    # and keep waiting until the second thread leaves (~t=8, including
    # RPC latency before the work starts).
    assert 6.9 < released_at < 9.0
    assert obj.dfm.active_threads_in("worker-v1") == 0


# ----------------------------------------------------------------------
# Circuit breaker: a dead ICO fails fast after the breaker opens
# ----------------------------------------------------------------------


def test_breaker_fast_fails_repeat_fetches_from_dead_ico():
    runtime, manager, __, loids = build_sorter_fleet(instances=1)
    obj = manager.record(loids[0]).obj
    v1, v2 = manager.current_version, derive_v2(manager)
    crash_host(runtime, runtime.host("host03"))  # compare-desc's ICO dies

    durations = []
    errors = []

    def attempts():
        for __ in range(4):
            started = runtime.sim.now
            try:
                yield from obj.apply_configuration(make_diff(manager, v1, v2))
            except Exception as error:  # noqa: BLE001 - recorded
                errors.append(error)
            durations.append(runtime.sim.now - started)

    runtime.sim.run_process(attempts())
    assert len(errors) == 4
    # The first three walk the full fetch timeout schedule (minutes);
    # the fourth is short-circuited by the open breaker (microseconds).
    assert all(duration > 60.0 for duration in durations[:3])
    assert durations[3] < 1.0
    assert isinstance(errors[3], CircuitOpen)
    snapshot = runtime.network.breakers_snapshot()
    # Creation-time fetches registered (healthy) breakers for the other
    # ICOs; exactly the dead component's breaker is open.
    open_keys = [key for key, state in snapshot.items() if state["state"] == "open"]
    (key,) = open_keys
    assert key.startswith("ico:")
    assert snapshot[key]["times_opened"] == 1
    assert snapshot[key]["short_circuits"] >= 1
    assert runtime.network.count_value("breaker.opened") == 1
    # Every failed attempt rolled back; the object never left v1.
    assert obj.rollbacks == 4
    assert_fully_on_v1(obj, v1, v2)


def test_restore_components_revives_dead_ico():
    """A crashed component host leaves its ICO dead even after reboot
    (restart wipes memory); the live manager re-serves it so evolutions
    whose hosts never cached the blob can fetch again."""
    runtime, manager, __, loids = build_sorter_fleet(instances=1)
    obj = manager.record(loids[0]).obj
    v1, v2 = manager.current_version, derive_v2(manager)
    ico_loid = manager.component_ico("compare-desc")
    crash_host(runtime, runtime.host("host03"))
    assert not runtime.live_object(ico_loid).is_active

    def revive():
        yield runtime.sim.timeout(1.0)
        runtime.host("host03").restart()
        restored = yield from manager.restore_components()
        return restored

    restored = runtime.sim.run_process(revive())
    assert restored == ["compare-desc"]
    revived = runtime.live_object(ico_loid)
    assert revived.is_active and revived.host.name == "host03"
    assert runtime.network.count_value("ico.recoveries") == 1
    # The prepare-phase fetch works again: evolution goes through.
    result = runtime.sim.run_process(
        obj.apply_configuration(make_diff(manager, v1, v2))
    )
    assert result == str(v2) and obj.version == v2


def test_half_open_probe_rebinds_to_restored_ico():
    """The first probe after the cooldown drops its cached binding and
    re-resolves before sending: a restored ICO lives at a new address
    (new host incarnation), and probing the old one would cost a full
    stale-binding timeout walk before rebinding."""
    runtime, manager, __, loids = build_sorter_fleet(instances=1)
    obj = manager.record(loids[0]).obj
    v1, v2 = manager.current_version, derive_v2(manager)
    crash_host(runtime, runtime.host("host03"))

    def trip_then_recover():
        # Three failed prepare-phase fetches trip the breaker open.
        for __ in range(3):
            with pytest.raises(ObjectUnreachable):
                yield from obj.apply_configuration(make_diff(manager, v1, v2))
        runtime.host("host03").restart()
        yield from manager.restore_components()
        yield runtime.sim.timeout(31.0)  # past the breaker cooldown
        started = runtime.sim.now
        result = yield from obj.apply_configuration(make_diff(manager, v1, v2))
        return result, runtime.sim.now - started

    result, elapsed = runtime.sim.run_process(trip_then_recover())
    assert result == str(v2) and obj.version == v2
    # One resolve round trip plus the fetch — not a ~2-minute walk.
    assert elapsed < 1.0
    assert runtime.network.count_value("breaker.probe_rebinds") == 1


# ----------------------------------------------------------------------
# Wave abort: roll committed instances back, journal, recover
# ----------------------------------------------------------------------


def test_wave_abort_rolls_back_committed_instances_then_rearms():
    runtime, manager, journal, loids = build_sorter_fleet(
        hosts=6, instances=4, ico_host="host05"
    )
    v1, v2 = manager.current_version, derive_v2(manager)
    manager.set_current_version(v2)  # explicit policy: no auto-propagation
    # host03/host04's instances are unreachable from the manager: their
    # deliveries fail; host01/host02 commit and must be rolled back.
    runtime.network.faults.add_partition(
        PrefixPartition(["host00/"], ["host03/", "host04/"], start=0.0, end=2_500.0)
    )

    def wave():
        try:
            yield from manager.propagate_version(
                v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(1)
            )
        except WaveAborted as error:
            return error
        return None

    error = runtime.sim.run_process(wave())
    assert error is not None
    assert error.failed == 2 and error.threshold == 1
    tracker = manager.propagation(v2)
    assert tracker.aborted and tracker.complete
    summary = tracker.summary()
    assert summary["failed"] == 2 and summary["rolled_back"] == 2
    for loid in loids[:2]:
        obj = manager.record(loid).obj
        # Committed v2, then compensated back: both applications count.
        assert obj.applications_by_version.get(v2) == 1
        assert obj.applications_by_version.get(v1) == 1
        assert obj.version == v1
        assert manager.instance_version(loid) == v1
    for loid in loids[2:]:
        assert manager.record(loid).obj.version == v1
    kinds = [entry.kind for entry in journal.replay()]
    assert "wave-aborting" in kinds
    assert kinds.count("wave-rollback") == 2
    assert "wave-aborted" in kinds
    assert runtime.network.count_value("wave.aborts") == 1
    assert runtime.network.count_value("wave.rollbacks") == 2

    # After the partition heals, re-propagating re-arms the aborted
    # wave (rolled-back + failed deliveries reopen) and converges.
    def retry_wave():
        yield runtime.sim.timeout(2_501.0 - runtime.sim.now)
        tracker = yield from manager.propagate_version(v2)
        return tracker

    tracker = runtime.sim.run_process(retry_wave())
    assert tracker.complete and tracker.all_acked and not tracker.aborted
    for loid in loids:
        assert manager.record(loid).obj.version == v2
        assert manager.instance_version(loid) == v2


def test_manager_crash_mid_abort_recovery_completes_the_abort():
    """The acceptance scenario: a wave aborts, one committed instance
    is unreachable for rollback, the manager crashes — recovery must
    resume and *complete* the abort, not the delivery."""
    runtime, manager, journal, loids = build_sorter_fleet(
        hosts=6, instances=4, ico_host="host05"
    )
    v1, v2 = manager.current_version, derive_v2(manager)
    manager.set_current_version(v2)  # explicit policy: no auto-propagation
    instance_c, instance_d = loids[2], loids[3]
    # D's host is unreachable from the manager: its delivery fails and
    # trips the abort (threshold 0).
    runtime.network.faults.add_partition(
        PrefixPartition(["host00/"], ["host04/"], start=0.0, end=50_000.0)
    )

    def scenario():
        def wave():
            try:
                yield from manager.propagate_version(
                    v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(0)
                )
            except WaveAborted:
                pass

        handle = runtime.sim.spawn(wave(), name="wave")
        # Let A/B/C commit, then crash C's host: C is ACKED but cannot
        # be rolled back when the abort fires.
        yield runtime.sim.timeout(100.0)
        tracker = manager.propagation(v2)
        assert tracker.delivery(instance_c).status is DeliveryStatus.ACKED
        crash_host(runtime, runtime.host("host03"))
        yield handle
        return manager.propagation(v2)

    tracker = runtime.sim.run_process(scenario())
    # The abort ran but could not finish: C stays ACKED, wave ABORTING.
    assert tracker.aborting and not tracker.aborted and not tracker.complete
    assert tracker.delivery(instance_c).status is DeliveryStatus.ACKED
    assert tracker.count(DeliveryStatus.ROLLED_BACK) == 2

    # Now the manager dies too.  Restart both hosts and recover.
    crash_host(runtime, runtime.host("host00"))

    def recovery():
        yield runtime.sim.timeout(10.0)
        runtime.host("host00").restart()
        runtime.host("host03").restart()
        recovered = yield from recover_manager(runtime, journal, resume=False)
        # C died with its host; rebuild it (at its journaled version,
        # v2 — exactly the state the abort still has to undo).
        yield from recovered.recover_instance(instance_c)
        assert recovered.record(instance_c).obj.version == v2
        yield from recovered.resume_propagations()
        return recovered

    recovered = runtime.sim.run_process(recovery())
    tracker = recovered.propagation(v2)
    # Journal replay restored the abort state; resume completed it.
    assert tracker.aborted and tracker.complete
    assert tracker.delivery(instance_c).status is DeliveryStatus.ROLLED_BACK
    assert tracker.count(DeliveryStatus.ROLLED_BACK) == 3
    assert recovered.record(instance_c).obj.version == v1
    assert recovered.instance_version(instance_c) == v1
    for loid in loids[:2]:
        assert recovered.instance_version(loid) == v1
    # D never committed; it simply stays where it was.
    assert recovered.instance_version(instance_d) == v1
    kinds = [entry.kind for entry in journal.replay()]
    assert "wave-aborted" in kinds
    # Checkpointing preserves the terminal abort state.
    recovered.write_checkpoint()
    kinds = [entry.kind for entry in journal.replay()]
    assert "wave-aborting" in kinds and "wave-aborted" in kinds
    assert kinds.count("wave-rollback") == 3


# ----------------------------------------------------------------------
# WavePolicy.abort_after boundary regressions
# ----------------------------------------------------------------------


def test_abort_after_zero_tolerates_no_failures():
    """The zero boundary, both sides: with every delivery acked the
    wave completes (0 failures is not "more than 0"); with exactly one
    failure it aborts."""
    runtime, manager, journal, loids = build_sorter_fleet(
        hosts=6, instances=3, ico_host="host05"
    )
    v1, v2 = manager.current_version, derive_v2(manager)
    manager.set_current_version(v2)  # explicit policy: no auto-propagation
    tracker = runtime.sim.run_process(
        manager.propagate_version(
            v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(0)
        )
    )
    assert tracker.complete and tracker.all_acked and not tracker.aborted
    for loid in loids:
        assert manager.instance_version(loid) == v2

    # Second fleet, one unreachable instance: exactly one failure must
    # trip the threshold-0 abort.
    runtime, manager, journal, loids = build_sorter_fleet(
        hosts=6, instances=3, ico_host="host05"
    )
    v1, v2 = manager.current_version, derive_v2(manager)
    manager.set_current_version(v2)
    runtime.network.faults.add_partition(
        PrefixPartition(["host00/"], ["host03/"], start=0.0, end=10_000.0)
    )

    def wave():
        try:
            yield from manager.propagate_version(
                v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(0)
            )
        except WaveAborted as error:
            return error
        return None

    error = runtime.sim.run_process(wave())
    assert error is not None and error.failed == 1 and error.threshold == 0
    tracker = manager.propagation(v2)
    assert tracker.aborted
    for loid in loids:
        assert manager.instance_version(loid) == v1


def test_abort_after_final_ack_rolls_back_completed_wave():
    """An abort requested *after* the final ack (nothing failed, the
    wave is complete) still rolls every acked instance back — the
    SLO-breach case, where delivery succeeded but the version is bad."""
    runtime, manager, journal, loids = build_sorter_fleet(
        hosts=6, instances=3, ico_host="host05"
    )
    v1, v2 = manager.current_version, derive_v2(manager)
    manager.set_current_version(v2)
    tracker = runtime.sim.run_process(
        manager.propagate_version(
            v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(0)
        )
    )
    assert tracker.complete and tracker.all_acked

    aborted = runtime.sim.run_process(manager.abort_wave(v2, reason="slo-breach"))
    assert aborted is tracker
    assert tracker.aborted and tracker.complete
    assert tracker.count(DeliveryStatus.ROLLED_BACK) == len(loids)
    for loid in loids:
        obj = manager.record(loid).obj
        assert obj.version == v1
        assert manager.instance_version(loid) == v1
        # Committed once, compensated once — never more.
        assert obj.applications_by_version.get(v2) == 1
    kinds = [entry.kind for entry in journal.replay()]
    assert "wave-aborting" in kinds and "wave-aborted" in kinds
    assert kinds.count("wave-rollback") == len(loids)


def test_wave_abort_during_relay_phase_rolls_back_batches():
    """Abort tripped while the wave runs through per-host relays: the
    committed relay batches roll back exactly like direct deliveries."""
    from repro.cluster import deploy_relays

    runtime, manager, journal, loids = build_sorter_fleet(
        hosts=6, instances=4, ico_host="host05"
    )
    v1, v2 = manager.current_version, derive_v2(manager)
    manager.set_current_version(v2)
    relays = deploy_relays(runtime)
    manager.use_relays(relays)
    # host03/host04's instances (and their relays) are unreachable:
    # those batches fail while host01/host02's commit.
    runtime.network.faults.add_partition(
        PrefixPartition(["host00/"], ["host03/", "host04/"], start=0.0, end=10_000.0)
    )

    def wave():
        try:
            yield from manager.propagate_version(
                v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(1)
            )
        except WaveAborted as error:
            return error
        return None

    error = runtime.sim.run_process(wave())
    assert error is not None and error.failed == 2
    tracker = manager.propagation(v2)
    assert tracker.aborted and tracker.count(DeliveryStatus.ROLLED_BACK) == 2
    for loid in loids[:2]:
        obj = manager.record(loid).obj
        assert obj.version == v1
        assert obj.applications_by_version.get(v2) == 1
        assert manager.instance_version(loid) == v1
    for loid in loids[2:]:
        assert manager.record(loid).obj.version == v1
    assert runtime.network.count_value("wave.rollbacks") == 2
