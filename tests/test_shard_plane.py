"""Integration coverage for the sharded manager plane (PR 9).

The three handoff edge cases the ISSUE calls out by name — an instance
created mid-handoff, a stub cached on a pre-split epoch invoking across
the moved boundary, and a supervisor promoting one shard's standby
while another shard rebalances — plus plane-wide wave and configuration
basics the chaos sweep leans on.
"""

import pytest

from repro.cluster import build_lan
from repro.core import DCDOStub
from repro.core import shardplane as shardplane_mod
from repro.core.partition import partition_slot
from repro.legion import LegionRuntime
from repro.net import RetryPolicy

from tests.conftest import make_sorter_plane

FAST_RETRY = RetryPolicy(
    base_s=0.5, multiplier=2.0, max_backoff_s=10.0, max_attempts=6
)

SHARD_HOSTS = {0: "host00", 1: "host01", 2: "host02"}
STANDBY_HOSTS = ("host04", "host05")
DETECTOR_HOST = "host06"


def build_plane(shard_count=2, instances=16, sim_seed=7, hosts=8):
    runtime = LegionRuntime(build_lan(hosts, seed=sim_seed))
    plane = make_sorter_plane(
        runtime,
        shard_count=shard_count,
        shard_hosts={k: SHARD_HOSTS[k] for k in range(shard_count)},
        propagation_retry_policy=FAST_RETRY,
    )
    loids = [
        runtime.sim.run_process(plane.create_instance(host_name="host03"))
        for __ in range(instances)
    ]
    return runtime, plane, loids


def derive_v2(plane):
    version = plane.derive_version(plane.current_version)
    plane.incorporate_into(version, "compare-desc")
    plane.enable_function(
        version, "compare", "compare-desc", replace_current=True
    )
    plane.mark_instantiable(version)
    return version


# ----------------------------------------------------------------------
# Plane basics
# ----------------------------------------------------------------------


def test_plane_waves_fan_out_per_shard():
    runtime, plane, loids = build_plane(shard_count=3, instances=24)
    v2 = derive_v2(plane)
    plane.set_current_version(v2)
    trackers = runtime.sim.run_process(plane.propagate_version(v2, window=8))
    assert set(trackers) == {0, 1, 2}
    assert all(t.all_acked for t in trackers.values())
    for loid in loids:
        assert plane.record(loid).obj.version == v2
        assert plane.instance_version(loid) == v2
    assert runtime.network.count_value("manager.shard.waves") >= 3


def test_rows_live_only_on_their_mapped_shard():
    __, plane, loids = build_plane(shard_count=3, instances=30)
    for loid in loids:
        owner = plane.map.current.shard_for(loid)
        for shard_id, manager in plane.shards.items():
            held = loid in manager.instance_loids()
            assert held == (shard_id == owner), (
                f"{loid} on s{shard_id}, mapped to s{owner}"
            )


# ----------------------------------------------------------------------
# Edge case 1: instance created mid-handoff
# ----------------------------------------------------------------------


def test_create_mid_handoff_waits_for_the_map_commit(monkeypatch):
    """A create whose slot is mid-move parks until the epoch bump, then
    lands on (and journals on) the *new* owner — never the shard that
    is about to release the range."""
    runtime, plane, __ = build_plane(shard_count=2, instances=24)
    # Stretch the per-row copy cost so the handoff window is wide
    # enough to land creates inside it.
    monkeypatch.setattr(shardplane_mod, "HANDOFF_ROW_S", 0.05)
    moved_span = plane.map.current.spans_of(0)[0]
    commit = {}
    plane.map.subscribe(lambda m: commit.setdefault("at", runtime.sim.now))
    created = []

    def mover():
        yield from plane.move_range(moved_span, 1)

    def creator():
        # Lands inside the copy window (24 rows x 0.05 s apiece).
        yield runtime.sim.timeout(0.1)
        while True:
            loid = yield from plane.create_instance(host_name="host03")
            created.append((loid, runtime.sim.now))
            # Keep creating until one hits the moving span.
            if any(
                lo <= partition_slot(l) < hi
                for (l, __) in created[-1:]
                for lo, hi in [moved_span]
            ):
                return

    runtime.sim.spawn(mover(), name="mover")
    runtime.sim.run_process(creator())
    runtime.sim.run()
    assert "at" in commit, "handoff never committed"
    in_span = [
        (loid, at)
        for loid, at in created
        if moved_span[0] <= partition_slot(loid) < moved_span[1]
    ]
    assert in_span, "no create landed in the moving span"
    for loid, at in in_span:
        assert at >= commit["at"], (
            f"{loid} created at {at}, before the map commit at "
            f"{commit['at']}"
        )
        # Owned by the new shard, held only by the new shard.
        assert plane.map.current.shard_for(loid) == 1
        assert loid in plane.shards[1].instance_loids()
        assert loid not in plane.shards[0].instance_loids()


# ----------------------------------------------------------------------
# Edge case 2: stub cached on a pre-split epoch
# ----------------------------------------------------------------------


def test_stub_on_pre_split_epoch_bounces_across_the_boundary():
    """A stub routing on the old map hits the old owner, which bounces
    with its current map piggybacked; the stub's router adopts it and
    the retried call lands on the new owner — one extra round trip,
    no config-service lookup."""
    runtime, plane, loids = build_plane(shard_count=2, instances=24)
    router = plane.router()
    client = runtime.make_client(host_name="host03")
    pre_split_epoch = router.epoch
    # Split AFTER the router cached its map: the cache is now one
    # epoch behind, and half of shard 0's range belongs to shard 2.
    new_shard = runtime.sim.run_process(plane.split_shard(0))
    assert plane.map.epoch == pre_split_epoch + 1
    assert router.epoch == pre_split_epoch
    moved = [
        loid
        for loid in loids
        if plane.map.current.shard_for(loid) == new_shard.shard_id
    ]
    assert moved, "split moved no test instances"
    v2 = derive_v2(plane)
    plane.set_current_version(v2)
    stub = DCDOStub(client, moved[0], router=router)
    result = runtime.sim.run_process(stub.request_update(v2))
    assert router.bounces == 1, "stale-epoch call did not bounce exactly once"
    assert router.epoch == plane.map.epoch
    assert plane.record(moved[0]).obj.version == v2
    # The next routed call is cache-hot: no further bounce.
    runtime.sim.run_process(stub.sync_with_manager())
    assert router.bounces == 1
    assert runtime.network.count_value("manager.shard.stale_map_bounces") == 1


# ----------------------------------------------------------------------
# Edge case 3: promotion on one shard while another rebalances
# ----------------------------------------------------------------------


def test_promotion_during_concurrent_rebalance(monkeypatch):
    """Shard 1's host dies while shards 0 and 2 are mid-rebalance: the
    supervisor promotes shard 1's standby, the unrelated handoff
    commits, and the whole plane still converges a wave."""
    from repro.cluster.chaos import ChaosCoordinator

    runtime, plane, loids = build_plane(shard_count=3, instances=24)
    plane.supervise(
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        retry_policy=FAST_RETRY,
    )
    coordinator = ChaosCoordinator(runtime, journals={})
    monkeypatch.setattr(shardplane_mod, "HANDOFF_ROW_S", 0.2)
    shard1_host = runtime.host(SHARD_HOSTS[1])
    base = runtime.sim.now
    coordinator.crash_plan.schedule_outage(shard1_host, base + 1.0, base + 30.0)
    moved_span = plane.map.current.spans_of(0)[0]
    done = {}

    def mover():
        # Starts before the crash, still copying rows when it lands.
        yield runtime.sim.timeout(0.5)
        yield from plane.move_range(moved_span, 2)
        done["move"] = runtime.sim.now

    def scenario():
        yield runtime.sim.timeout(120.0)
        plane.stop_supervision()

    runtime.sim.spawn(mover(), name="mover")
    runtime.sim.run_process(scenario())
    runtime.sim.run()

    supervisor = plane.supervisors[1]
    assert supervisor.promotions == 1, "shard 1 standby was never promoted"
    assert done.get("move", 0) > base + 1.0, "rebalance never committed"
    promoted = plane.shards[1]
    assert promoted.is_active and not promoted.deposed
    assert promoted.host.name in STANDBY_HOSTS
    # The unrelated shards kept their managers.
    assert plane.shards[0].host.name == SHARD_HOSTS[0]
    assert plane.shards[2].host.name == SHARD_HOSTS[2]
    # Ownership reflects the committed move, exactly-one-owner holds.
    plane.reconcile()
    for loid in loids:
        owner = plane.map.current.shard_for(loid)
        holders = [
            shard_id
            for shard_id, manager in plane.shards.items()
            if loid in manager.instance_loids()
        ]
        assert holders == [owner], (
            f"{loid}: holders {holders}, mapped owner s{owner}"
        )
    # And the plane still waves end to end, promoted shard included.
    v2 = derive_v2(plane)
    plane.set_current_version(v2)
    trackers = runtime.sim.run_process(plane.propagate_version(v2, window=8))
    assert all(t.all_acked for t in trackers.values())
    for loid in loids:
        assert plane.record(loid).obj.version == v2
