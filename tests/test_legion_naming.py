"""Unit tests for LOIDs and the context space."""

import pytest

from repro.legion import ContextSpace, LOID
from repro.legion.errors import UnknownObject
from repro.legion.loid import class_loid, mint_loid


# ----------------------------------------------------------------------
# LOIDs
# ----------------------------------------------------------------------


def test_minted_loids_are_unique():
    a = mint_loid("d", "T")
    b = mint_loid("d", "T")
    assert a != b
    assert a.instance != b.instance


def test_loids_are_hashable_and_ordered():
    a = mint_loid("d", "T")
    b = mint_loid("d", "T")
    assert len({a, b}) == 2
    assert a < b


def test_class_loid_is_instance_zero():
    loid = class_loid("d", "T")
    assert loid.instance == 0
    assert loid.is_class


def test_minted_loid_is_not_class():
    assert not mint_loid("d", "T").is_class


def test_loid_str_is_readable():
    assert str(LOID("legion", "Counter", 3)) == "legion/Counter#3"


def test_loids_in_different_types_are_distinct():
    a = mint_loid("d", "A")
    b = mint_loid("d", "B")
    assert a != b


# ----------------------------------------------------------------------
# Context space
# ----------------------------------------------------------------------


def test_bind_and_lookup():
    space = ContextSpace()
    loid = mint_loid("d", "T")
    space.bind("/home/things/one", loid)
    assert space.lookup("/home/things/one") == loid


def test_lookup_unbound_raises():
    space = ContextSpace()
    with pytest.raises(UnknownObject):
        space.lookup("/missing")


def test_bind_creates_intermediate_contexts():
    space = ContextSpace()
    space.bind("/a/b/c/d", mint_loid("d", "T"))
    assert space.list_context("/a/b/c") == ["d"]


def test_rebind_replaces():
    space = ContextSpace()
    first = mint_loid("d", "T")
    second = mint_loid("d", "T")
    space.bind("/x", first)
    space.bind("/x", second)
    assert space.lookup("/x") == second


def test_cannot_bind_through_leaf():
    space = ContextSpace()
    space.bind("/x", mint_loid("d", "T"))
    with pytest.raises(ValueError, match="leaf"):
        space.bind("/x/y", mint_loid("d", "T"))


def test_cannot_bind_over_context():
    space = ContextSpace()
    space.bind("/dir/leaf", mint_loid("d", "T"))
    with pytest.raises(ValueError, match="context"):
        space.bind("/dir", mint_loid("d", "T"))


def test_unbind_removes():
    space = ContextSpace()
    loid = mint_loid("d", "T")
    space.bind("/x", loid)
    assert space.unbind("/x") == loid
    assert "/x" not in space


def test_unbind_missing_raises():
    space = ContextSpace()
    with pytest.raises(UnknownObject):
        space.unbind("/nope")


def test_lookup_context_path_raises():
    space = ContextSpace()
    space.bind("/dir/leaf", mint_loid("d", "T"))
    with pytest.raises(UnknownObject, match="context"):
        space.lookup("/dir")


def test_list_context_sorted():
    space = ContextSpace()
    for name in ("zebra", "apple", "mango"):
        space.bind(f"/fruit/{name}", mint_loid("d", "T"))
    assert space.list_context("/fruit") == ["apple", "mango", "zebra"]


def test_contains_protocol():
    space = ContextSpace()
    space.bind("/x", mint_loid("d", "T"))
    assert "/x" in space
    assert "/y" not in space


def test_empty_path_invalid():
    space = ContextSpace()
    with pytest.raises(ValueError):
        space.bind("///", mint_loid("d", "T"))
