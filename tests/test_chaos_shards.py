"""Shard-chaos sweep: plane invariants under shard-targeted faults.

Seeded schedules mix the PR 9 shard fault kinds — shard-manager
crashes, partition-map staleness windows, mid-rebalance crashes — with
the legacy crash/partition/drop kinds, while a supervised
:class:`ShardedManagerPlane` evolves its whole fleet.  Each shard has
its own journal, standby, and supervisor; faults that kill one shard
must never corrupt another, and a rebalance the crash aborts must
never leave a range writable by two shards.  The invariants:

- never-half-applied at convergence, per shard;
- exactly-once application per instance, across shard failovers and
  live range moves alike;
- no cross-shard double-ownership: after :meth:`reconcile`, every
  instance row lives in exactly the shard the map names — aborted
  handoffs leave orphans, never twins.

A routed prober drives stale-epoch RPCs through a
:class:`PartitionRouter` for the whole fault window, so the bounce
path (stale map piggybacked on the refusal) is exercised under the
same chaos.  ``CHAOS_EXTRA_SEEDS`` (env) widens the sweep in CI.
"""

import os

import pytest

from repro.cluster import build_lan
from repro.cluster.chaos import ChaosCoordinator, ChaosSchedule
from repro.core.partition import StalePartitionMap
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.legion.errors import LegionError
from repro.net import RetryPolicy, TransportError

from tests.conftest import make_sorter_plane
from tests.test_chaos_transactions import assert_never_half_applied

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)

SHARD_HOSTS = {0: "host00", 1: "host01"}
STANDBY_HOSTS = ("host02", "host03")
DETECTOR_HOST = "host04"
ICO_HOST = "host05"
INSTANCE_HOSTS = ("host02", "host03", "host06", "host07")

CHAOS_SEEDS = 20 + int(os.environ.get("CHAOS_EXTRA_SEEDS", "0"))

#: Routed-RPC bounce counts per seed, checked in aggregate after the
#: sweep: the stale-map bounce path must actually be exercised.
BOUNCES_SEEN = {}


def derive_v2(plane):
    """The sweep's evolution, applied plane-wide (cf. the single-manager
    ``derive_v2`` in ``test_chaos_transactions``)."""
    version = plane.derive_version(plane.current_version)
    plane.incorporate_into(version, "compare-desc")
    plane.enable_function(
        version, "compare", "compare-desc", replace_current=True
    )
    plane.mark_instantiable(version)
    return version


def build_fleet(sim_seed=7, instances=12, **manager_kwargs):
    """Runtime + journaled two-shard sorter plane with a spread fleet."""
    runtime = LegionRuntime(build_lan(8, seed=sim_seed))
    plane = make_sorter_plane(
        runtime,
        shard_count=len(SHARD_HOSTS),
        shard_hosts=SHARD_HOSTS,
        component_hosts={
            "sorter": ICO_HOST,
            "compare-asc": ICO_HOST,
            "compare-desc": ICO_HOST,
        },
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    loids = []
    for index in range(instances):
        loid = runtime.sim.run_process(
            plane.create_instance(
                host_name=INSTANCE_HOSTS[index % len(INSTANCE_HOSTS)]
            )
        )
        loids.append(loid)
    return runtime, plane, loids


@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_shard_invariants_hold(seed):
    """Shard faults plus legacy chaos, across seeded schedules: the
    per-shard-supervised plane converges on its own with the full
    invariant set intact."""
    runtime, plane, loids = build_fleet(
        sim_seed=2600 + seed,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    runtime.network.enable_health()
    v1 = plane.current_version
    plane.supervise(
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        detector_mode="phi",
        retry_policy=FAST_RETRY,
    )
    coordinator = ChaosCoordinator(runtime, journals={})
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        max_crashes=1,
        max_partitions=1,
        max_drops=1,
        protect=(DETECTOR_HOST, ICO_HOST),
        shard_hosts=tuple(SHARD_HOSTS.values()),
        max_shard_crashes=1,
        max_map_staleness=1 if seed % 2 == 0 else 0,
        mid_rebalance_crashes=1 if seed % 3 == 0 else 0,
    )
    schedule.install(runtime, coordinator, plane=plane)
    base = schedule.installed_at
    fault_offsets = [crash_at for __, crash_at, __ in schedule.crashes]
    fault_offsets += [crash_at for __, crash_at, __ in schedule.shard_crashes]
    fault_offsets += [
        crash_at for __, crash_at, __, __ in schedule.rebalance_crashes
    ]
    fault_offsets += [start for __, __, start, __ in schedule.partitions]
    wave_at = max(0.1, min(fault_offsets) - 0.03) if fault_offsets else 0.5
    v2 = derive_v2(plane)
    router = plane.router(host_name=DETECTOR_HOST)
    client = runtime.make_client(host_name=DETECTOR_HOST)
    probe_stats = {"calls": 0, "stale": 0}

    def prober():
        """Routed reads through the fault window: every call routes by
        a cached map snapshot, so staleness windows and live rebalances
        surface as bounces — never as wrong-shard answers."""
        heal = schedule.heal_time + 1.0
        while runtime.sim.now < heal:
            for loid in loids[:3]:
                try:
                    yield from router.call(
                        client, loid, "routedInstanceVersion"
                    )
                    probe_stats["calls"] += 1
                except (StalePartitionMap, LegionError, TransportError):
                    probe_stats["stale"] += 1
            yield runtime.sim.timeout(2.0)

    def scenario():
        if runtime.sim.now < base + wave_at:
            yield runtime.sim.timeout(base + wave_at - runtime.sim.now)
        plane.set_current_version_async(v2)
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        deadline = runtime.sim.now + 420.0
        while runtime.sim.now < deadline:
            live = plane.shards
            if all(
                manager.is_active and not manager.deposed
                for manager in live.values()
            ):
                for manager in live.values():
                    if manager.current_version != v2:
                        # The crash beat the sync journal ship on this
                        # shard: re-issue the never-acknowledged
                        # designation; version-id idempotence keeps
                        # instance effects exactly-once.
                        manager.set_current_version_async(v2)
                if all(
                    plane.record(loid).active
                    and plane.record(loid).obj.version == v2
                    for loid in loids
                ):
                    break
            yield runtime.sim.timeout(5.0)
        plane.stop_supervision()

    runtime.sim.spawn(prober(), name="shard-prober")
    runtime.sim.run_process(scenario())
    runtime.sim.run()

    live = plane.shards
    promotions = sum(s.promotions for s in plane.supervisors.values())
    assert promotions >= 1, (
        f"seed {seed}: no shard supervisor ever promoted "
        f"(shard crashes {schedule.shard_crashes}, "
        f"rebalance crashes {schedule.rebalance_crashes})"
    )
    for shard_id, manager in live.items():
        assert manager.is_active and not manager.deposed, (
            f"seed {seed}: shard {shard_id} has no live authority"
        )
    # No cross-shard double-ownership: after reconciliation, every row
    # lives in exactly the shard the map names.
    plane.reconcile()
    owners = {}
    for shard_id, manager in live.items():
        for loid in manager.instance_loids():
            assert loid not in owners, (
                f"seed {seed}: {loid} owned by both "
                f"s{owners[loid]} and s{shard_id}"
            )
            owners[loid] = shard_id
    for loid in loids:
        mapped = plane.map.current.shard_for(loid)
        assert owners.get(loid) == mapped, (
            f"seed {seed}: {loid} mapped to s{mapped} "
            f"but held by s{owners.get(loid)}"
        )
    by_shard = {}
    for loid in loids:
        by_shard.setdefault(plane.map.current.shard_for(loid), []).append(loid)
    for shard_id, shard_loids in by_shard.items():
        assert_never_half_applied(
            live[shard_id], shard_loids, v1, v2, f"seed {seed} s{shard_id}"
        )
    for loid in loids:
        record = plane.record(loid)
        assert record.active, f"seed {seed}: {loid} never recovered"
        obj = record.obj
        assert obj.version == v2, (
            f"seed {seed}: {loid} stuck at {obj.version}"
        )
        # Exactly-once across failovers, retries, and range moves.
        assert obj.applications_by_version.get(v2, 0) <= 1, (
            f"seed {seed}: {loid} applied v2 "
            f"{obj.applications_by_version.get(v2)} times"
        )
    assert probe_stats["calls"] > 0, f"seed {seed}: prober never completed a call"
    BOUNCES_SEEN[seed] = runtime.network.count_value(
        "manager.shard.stale_map_bounces"
    )


def test_stale_map_bounces_exercised_across_sweep():
    """Across the sweep, routed RPCs must actually have bounced on a
    stale partition map — otherwise the sweep proved nothing about the
    staleness windows or the epoch piggyback path."""
    assert BOUNCES_SEEN, "sweep did not run before the aggregate check"
    assert any(count > 0 for count in BOUNCES_SEEN.values()), (
        f"no seed bounced a stale-map RPC: {BOUNCES_SEEN}"
    )
