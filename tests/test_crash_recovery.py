"""Crash faults and recovery: hosts, CrashPlan, journal, manager rebuild."""

import pytest

from repro.cluster import CrashPlan, HostDown, build_lan
from repro.cluster.chaos import crash_host
from repro.core import (
    DeliveryStatus,
    ManagerJournal,
    UnknownVersion,
    recover_manager,
)
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import Endpoint, RetryPolicy
from repro.sim.errors import SimulationError

from tests.conftest import create_dcdo, make_counter_class, make_sorter_manager

RETRY = RetryPolicy(base_s=0.5, multiplier=2.0, max_backoff_s=10.0, max_attempts=6)


# ----------------------------------------------------------------------
# Host crash / restart semantics
# ----------------------------------------------------------------------


def test_crash_kills_processes_and_closes_endpoints(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(
        class_object.create_instance(host_name="host01")
    )
    host = runtime.host("host01")
    record = class_object.record(loid)
    process = record.process
    endpoint = Endpoint(runtime.network, "host01/extra")
    address = record.obj.address
    assert host.is_up and process.alive

    host.crash()
    assert not host.is_up
    assert not process.alive
    assert host.processes == {}
    assert endpoint.is_closed
    assert not runtime.network.knows(address)
    assert runtime.network.count_value("host.crashes") == 1


def test_crash_is_idempotent_while_down(runtime):
    host = runtime.host("host02")
    host.crash()
    host.crash()
    assert host.crash_count == 1
    assert runtime.network.count_value("host.crashes") == 1


def test_spawn_process_refuses_on_down_host(runtime):
    host = runtime.host("host02")
    host.crash()
    with pytest.raises(HostDown):
        runtime.sim.run_process(host.spawn_process("some-loid"))


def test_restart_bumps_incarnation_and_requires_down(runtime):
    host = runtime.host("host03")
    assert host.incarnation == 1
    with pytest.raises(SimulationError):
        host.restart()
    host.crash()
    assert host.restart() == 2
    assert host.is_up
    assert host.processes == {}
    with pytest.raises(SimulationError):
        host.restart()


def test_crash_plan_validates_schedule(runtime):
    plan = CrashPlan(runtime.sim)
    host = runtime.host("host00")
    runtime.sim.run(until=5.0)
    with pytest.raises(ValueError):
        plan.schedule_crash(host, 4.0)
    with pytest.raises(ValueError):
        plan.schedule_outage(host, crash_at=10.0, restart_at=10.0)


def test_crash_plan_fires_and_drives_generator_hooks(runtime):
    events = []

    def on_crash(host):
        events.append(("crash", host.name, runtime.sim.now))

    def on_restart(host):
        yield runtime.sim.timeout(1.0)  # recovery work takes time
        events.append(("restart", host.name, runtime.sim.now))

    plan = CrashPlan(runtime.sim, on_crash=on_crash, on_restart=on_restart)
    plan.schedule_outage(runtime.host("host01"), crash_at=2.0, restart_at=5.0)
    runtime.sim.run(until=10.0)
    assert plan.crashes_fired == 1 and plan.restarts_fired == 1
    assert events == [("crash", "host01", 2.0), ("restart", "host01", 6.0)]
    assert runtime.host("host01").is_up


# ----------------------------------------------------------------------
# The journal itself
# ----------------------------------------------------------------------


def test_journal_append_replay_and_checkpoint():
    journal = ManagerJournal(name="T")
    journal.append("a", x=1)
    journal.append("b", x=2)
    assert [e.kind for e in journal.replay()] == ["a", "b"]
    assert len(journal) == 2

    journal.write_checkpoint(journal.replay()[1:])
    journal.append("c", x=3)
    assert [e.kind for e in journal.replay()] == ["b", "c"]
    assert journal.entries[0].kind == "c"  # tail restarted
    assert journal.appends == 3 and journal.checkpoints == 1


def test_recover_manager_requires_metadata(runtime):
    with pytest.raises(ValueError):
        runtime.sim.run_process(recover_manager(runtime, ManagerJournal()))


# ----------------------------------------------------------------------
# Manager recovery from the journal
# ----------------------------------------------------------------------


def evolve_fleet_to_v2(runtime, manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    process = manager.set_current_version_async(version)
    if process is not None:
        runtime.sim.run(until=process)
    return version


def recovered_roundtrip(runtime, journal, manager, loids):
    """Crash the manager's host, restart it, recover, and compare."""
    before = {
        "versions": set(map(str, manager.versions())),
        "current": str(manager.current_version),
        "table": {str(l): str(manager.instance_version(l)) for l in loids},
        "components": set(manager.registered_components()),
    }
    crash_host(runtime, runtime.host("host00"))
    assert not manager.is_active
    runtime.host("host00").restart()
    recovered = runtime.sim.run_process(recover_manager(runtime, journal))
    assert recovered is not manager
    assert recovered.loid == manager.loid  # deterministic identity
    assert set(map(str, recovered.versions())) == before["versions"]
    assert str(recovered.current_version) == before["current"]
    assert {
        str(l): str(recovered.instance_version(l)) for l in loids
    } == before["table"]
    assert set(recovered.registered_components()) == before["components"]
    assert runtime.class_of(manager.type_name) is recovered
    return recovered


def build_sorter_fleet(runtime):
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        update_policy=ReliableUpdatePolicy(retry_policy=RETRY),
        journal=journal,
        propagation_retry_policy=RETRY,
    )
    loids = [
        create_dcdo(runtime, manager, host_name=name)[0]
        for name in ("host01", "host02")
    ]
    return journal, manager, loids


def test_recover_manager_replays_versions_and_table(runtime):
    journal, manager, loids = build_sorter_fleet(runtime)
    evolve_fleet_to_v2(runtime, manager)
    recovered = recovered_roundtrip(runtime, journal, manager, loids)
    # The surviving instances are re-linked, not rebuilt.
    for loid in loids:
        assert recovered.record(loid).active
        assert recovered.record(loid).obj is manager.record(loid).obj
    # And the recovered manager keeps serving evolutions: derive v3.
    v3 = recovered.derive_version(recovered.current_version)
    recovered.descriptor_of(v3).set_exported("compare", "compare-desc", False)
    recovered.mark_instantiable(v3)
    process = recovered.set_current_version_async(v3)
    runtime.sim.run(until=process)
    assert recovered.instance_version(loids[0]) == v3


def test_recovered_manager_never_reissues_version_ids(runtime):
    journal, manager, __ = build_sorter_fleet(runtime)
    v2 = evolve_fleet_to_v2(runtime, manager)
    configurable = manager.derive_version(v2)  # journaled id, lost body
    crash_host(runtime, runtime.host("host00"))
    runtime.host("host00").restart()
    recovered = runtime.sim.run_process(recover_manager(runtime, journal))
    # The configurable version's descriptor died with the manager (by
    # design), but its *identifier* is never reused.
    with pytest.raises(UnknownVersion):
        recovered.descriptor_of(configurable)
    fresh = recovered.derive_version(v2)
    assert fresh != configurable
    assert recovered.new_version() not in (configurable, fresh)


def test_recover_after_checkpoint_compacts_and_roundtrips(runtime):
    journal, manager, loids = build_sorter_fleet(runtime)
    evolve_fleet_to_v2(runtime, manager)
    tail_before = len(journal.entries)
    manager.write_checkpoint()
    assert journal.checkpoints == 1
    assert journal.entries == []  # tail truncated
    assert len(journal) < tail_before  # compaction actually compacted
    recovered_roundtrip(runtime, journal, manager, loids)


def test_recovery_skips_acked_deliveries(runtime):
    journal, manager, loids = build_sorter_fleet(runtime)
    v2 = evolve_fleet_to_v2(runtime, manager)
    tracker = manager.propagation(v2)
    assert tracker.all_acked and tracker.complete
    crash_host(runtime, runtime.host("host00"))
    runtime.host("host00").restart()
    recovered = runtime.sim.run_process(recover_manager(runtime, journal))
    restored = recovered.propagation(v2)
    assert restored.complete
    assert restored.count(DeliveryStatus.ACKED) == len(loids)
    # No re-delivery happened: each instance applied v2 exactly once.
    for loid in loids:
        obj = recovered.record(loid).obj
        assert obj.applications_by_version.get(v2) == 1
        assert obj.duplicate_deliveries == 0


def test_recover_manager_on_explicit_up_host(runtime):
    journal, manager, loids = build_sorter_fleet(runtime)
    crash_host(runtime, runtime.host("host00"))
    # host00 stays down; recover elsewhere.
    recovered = runtime.sim.run_process(
        recover_manager(runtime, journal, host_name="host03")
    )
    assert recovered.host.name == "host03"
    assert recovered.is_active
    assert recovered.instance_version(loids[0]) == manager.current_version


# ----------------------------------------------------------------------
# Instance recovery (crash-lost DCDOs and plain objects)
# ----------------------------------------------------------------------


def test_recover_instance_rebuilds_at_version_without_opr(runtime):
    journal, manager, loids = build_sorter_fleet(runtime)
    v2 = evolve_fleet_to_v2(runtime, manager)
    victim = loids[0]  # lives on host01
    crash_host(runtime, runtime.host("host01"))
    record = manager.record(victim)
    assert not record.active
    runtime.host("host01").restart()
    runtime.sim.run_process(manager.recover_instance(victim))
    record = manager.record(victim)
    assert record.active and record.obj.version == v2
    assert record.obj.is_active
    # Rebuilt from the implementation, not evolved: no application.
    assert record.obj.applications_by_version.get(v2, 0) == 0
    assert runtime.network.count_value("instance.recoveries") == 1
    # The rebuilt instance serves calls with v2 behaviour (descending).
    client = runtime.make_client("host02")
    assert client.call_sync(victim, "sort", [2, 1, 3]) == [3, 2, 1]


def test_recover_instance_restores_state_from_opr_when_present(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(
        class_object.create_instance(host_name="host01")
    )
    client = runtime.make_client("host02")
    assert client.call_sync(loid, "inc", 3) == 3
    # A clean deactivation persisted the OPR before the crash.
    runtime.sim.run_process(class_object.deactivate_instance(loid))
    host = runtime.host("host01")
    host.crash()
    host.restart()
    runtime.sim.run_process(class_object.recover_instance(loid))
    assert client.call_sync(loid, "get") == 3  # state survived via OPR


def test_recover_instance_rejects_active_instance(runtime):
    make_counter_class(runtime)
    class_object = runtime.class_of("Counter")
    loid = runtime.sim.run_process(class_object.create_instance())
    with pytest.raises(ValueError):
        runtime.sim.run_process(class_object.recover_instance(loid))
