"""Tests for Implementation Component Objects and figure/CLI plumbing."""

import pytest

from repro.core import ComponentBuilder, ImplementationType, IncompatibleImplementationType
from repro.core.ico import ImplementationComponentObject
from repro.legion.loid import mint_loid


def make_ico(runtime, size_bytes=500_000):
    component = (
        ComponentBuilder("served")
        .function("fn", lambda ctx: "fn")
        .variant(size_bytes=size_bytes)
        .build()
    )
    host = runtime.host("host00")
    loid = mint_loid(runtime.domain, "ICO")
    ico = ImplementationComponentObject(runtime, loid, host, component=component)
    runtime.sim.run_process(ico.activate())
    runtime.attach_object(ico)
    return component, ico


def test_ico_requires_component(runtime):
    host = runtime.host("host00")
    with pytest.raises(ValueError, match="needs a component"):
        ImplementationComponentObject(runtime, mint_loid(runtime.domain, "ICO"), host)


def test_get_component_returns_descriptor_object(runtime):
    component, ico = make_ico(runtime)
    client = runtime.make_client("host01")
    fetched = client.call_sync(ico.loid, "getComponent")
    assert fetched is component
    assert ico.metadata_requests == 1


def test_fetch_variant_charges_wire_time(runtime):
    """A 500 KB variant fetch must take visibly longer than metadata."""
    __, ico = make_ico(runtime, size_bytes=500_000)
    client = runtime.make_client("host01")
    from repro.core.impltype import NATIVE

    start = runtime.sim.now
    client.call_sync(ico.loid, "getComponent")
    metadata_time = runtime.sim.now - start
    start = runtime.sim.now
    variant = client.call_sync(ico.loid, "fetchVariant", NATIVE)
    data_time = runtime.sim.now - start
    assert variant.size_bytes == 500_000
    assert data_time > 5 * metadata_time
    assert ico.data_requests == 1


def test_fetch_variant_unknown_type_raises(runtime):
    __, ico = make_ico(runtime)
    client = runtime.make_client("host01")
    exotic = ImplementationType(architecture="vax-vms")
    with pytest.raises(IncompatibleImplementationType):
        client.call_sync(ico.loid, "fetchVariant", exotic)


def test_get_descriptor_is_pure_metadata(runtime):
    component, ico = make_ico(runtime)
    client = runtime.make_client("host01")
    descriptor = client.call_sync(ico.loid, "getDescriptor")
    assert descriptor["component_id"] == "served"
    assert descriptor["functions"]["fn"]["exported"] is True
    assert descriptor["variants"] == ["x86-linux/elf/c++"]


def test_variant_for_host_picks_matching_architecture(runtime):
    x86 = ImplementationType(architecture="x86-linux")
    sparc = ImplementationType(architecture="sparc-solaris")
    component = (
        ComponentBuilder("multi")
        .function("fn", lambda ctx: None)
        .variant(size_bytes=10, impl_type=x86)
        .variant(size_bytes=20, impl_type=sparc)
        .build()
    )
    host = runtime.host("host00")  # x86-linux
    assert component.variant_for_host(host).impl_type == x86


def test_variant_for_host_mismatch_raises(runtime):
    sparc = ImplementationType(architecture="sparc-solaris")
    component = (
        ComponentBuilder("sparc-only")
        .function("fn", lambda ctx: None)
        .variant(size_bytes=10, impl_type=sparc)
        .build()
    )
    with pytest.raises(IncompatibleImplementationType):
        component.variant_for_host(runtime.host("host00"))


# ----------------------------------------------------------------------
# Figure series + CLI
# ----------------------------------------------------------------------


def test_render_csv_quotes_and_formats():
    from repro.bench.figures import render_csv

    text = render_csv(("a", "b"), [(1, 2.5), ("x,y", 3.0)])
    lines = text.strip().split("\n")
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"
    assert lines[2] == '"x,y",3'


def test_figure_e5_series_is_monotone():
    from repro.bench.figures import figure_e5_download_vs_size

    header, rows = figure_e5_download_vs_size(seed=0)
    assert header == ("size_bytes", "download_s")
    sizes = [row[0] for row in rows]
    times = [row[1] for row in rows]
    assert sizes == sorted(sizes)
    assert times == sorted(times)


def test_cli_list_and_run(capsys):
    from repro.bench.__main__ import main

    assert main(["list"]) == 0
    assert main(["run", "E4"]) == 0
    output = capsys.readouterr().out
    assert "stale binding" in output


def test_cli_unknown_experiment(capsys):
    from repro.bench.__main__ import main

    assert main(["run", "E99"]) == 2


def test_cli_figures_to_directory(tmp_path):
    from repro.bench.__main__ import main

    assert main(["figures", "fig-e5", "--out", str(tmp_path)]) == 0
    written = tmp_path / "fig-e5.csv"
    assert written.exists()
    assert written.read_text().startswith("size_bytes,download_s")
