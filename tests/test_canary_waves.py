"""SLO-gated canary waves: ramp, breach-abort, and durable gate state.

The gate runner (:func:`~repro.core.policies.canary.run_canary_wave`)
must ramp a healthy version stage by stage, abort a degraded one at
the canary with the existing transactional rollback, and — because
every gate decision is journaled — survive a manager crash or failover
mid-rollout without ever expanding the admitted set or re-delivering
an acked evolution.
"""

import pytest

from repro.cluster import Supervisor, build_lan
from repro.cluster.chaos import crash_host, drive_to_convergence
from repro.core import ManagerJournal, RemovePolicy, WaveAborted, recover_manager
from repro.core.policies import (
    CanaryWavePolicy,
    IncreasingVersionPolicy,
    run_canary_wave,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.obs import SLO, SLOMonitor
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)

RAMP = CanaryWavePolicy(stages=(0.125, 0.5, 1.0), bake_s=8.0, check_interval_s=1.0)


def build_fleet(seed=3, instances=8, added_latency_s=0.0, error_every=0):
    """Journaled noop fleet + staged v2 (healthy or degraded).

    Canary rollouts are §3.5 multi-version deployments — part of the
    fleet runs v-next while current stays put — so the fleet uses the
    increasing-version policy (single-version would veto the canary).
    Live traffic keeps threads active in the very component a rollback
    removes, so the fleet also needs the §3 thread-activity timeout
    remove policy (drain briefly, then swap) — the error policy would
    make a breach-abort lose every race with its own callers.
    """
    runtime = LegionRuntime(build_lan(6, seed=seed))
    journal = ManagerJournal(name="Svc")
    manager, __ = make_noop_manager(
        runtime,
        "Svc",
        2,
        3,
        evolution_policy=IncreasingVersionPolicy(),
        remove_policy=RemovePolicy.timeout(2.0),
        journal=journal,
        host_name="host00",
        propagation_retry_policy=FAST_RETRY,
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{(index % 4) + 1:02d}")
        )
        for index in range(instances)
    ]
    v2 = build_degraded_version(
        manager, added_latency_s=added_latency_s, error_every=error_every
    )
    return runtime, manager, journal, loids, v2


def start_traffic(runtime, loids, rate_hz=40.0, window_s=8.0):
    slo = SLO(
        name="svc",
        latency_targets={0.99: 0.200},
        max_error_rate=0.05,
        min_samples=20,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=window_s)
    load = OpenLoopLoad(
        runtime.make_client(host_name="host05"),
        loids,
        PoissonArrivals(rate_hz),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=600.0,
    )
    load.start()
    return monitor, load


def drive_canary(runtime, v2, monitor, load, policy=RAMP, start_at=5.0):
    result = {}

    def driver():
        yield runtime.sim.timeout(start_at)
        result["outcome"] = yield from run_canary_wave(
            runtime,
            "Svc",
            v2,
            policy,
            monitor=monitor,
            retry_policy=FAST_RETRY,
            deadline_s=400.0,
        )
        load.stop()

    runtime.sim.run_process(driver())
    return result["outcome"]


# ----------------------------------------------------------------------
# Happy path and breach path
# ----------------------------------------------------------------------


def test_canary_wave_ramps_healthy_version_to_completion():
    runtime, manager, __, loids, v2 = build_fleet()
    monitor, load = start_traffic(runtime, loids)
    outcome = drive_canary(runtime, v2, monitor, load)
    assert outcome.completed and not outcome.breached and not outcome.stalled
    assert outcome.stage_reached == 3
    assert outcome.admitted == len(loids)
    assert manager.current_version == v2
    for loid in loids:
        assert manager.instance_version(loid) == v2
        obj = manager.record(loid).obj
        assert obj.applications_by_version.get(v2, 0) <= 1
    state = manager.canary_state(v2)
    assert state.complete and not state.breached


def test_canary_wave_catches_latency_regression_at_canary():
    """A build that adds 400 ms to every call must die at stage one:
    blast radius is the canary subset, and every touched instance is
    rolled back to the prior version."""
    runtime, manager, __, loids, v2 = build_fleet(added_latency_s=0.4)
    v1 = manager.current_version
    monitor, load = start_traffic(runtime, loids)
    outcome = drive_canary(runtime, v2, monitor, load)
    assert outcome.breached and not outcome.completed
    assert "p99" in outcome.breach_reason
    assert outcome.admitted == 1  # ceil(0.125 * 8)
    assert outcome.blast_radius == pytest.approx(1 / 8)
    assert manager.current_version == v1
    for loid in loids:
        assert manager.instance_version(loid) == v1
    tracker = manager.propagation(v2)
    assert tracker.aborted
    assert len(monitor.breach_log) >= 1


def test_canary_wave_catches_error_regression():
    runtime, manager, __, loids, v2 = build_fleet(error_every=2)
    v1 = manager.current_version
    monitor, load = start_traffic(runtime, loids)
    outcome = drive_canary(runtime, v2, monitor, load)
    assert outcome.breached
    assert "error rate" in outcome.breach_reason
    assert all(manager.instance_version(loid) == v1 for loid in loids)


def test_canary_blast_radius_bounded_at_later_stage():
    """Health can pass at the canary and fail at a ramp stage; the
    damage is still capped at that stage's admitted subset."""
    runtime, manager, __, loids, v2 = build_fleet(added_latency_s=0.4)
    v1 = manager.current_version
    # A narrow window and a long first bake: the canary instance alone
    # (1/8 of round-robin traffic) rarely lands 400 ms calls in p99 at
    # this window, so the gate passes stage one and must catch the
    # regression once half the fleet serves it.
    slo = SLO(
        name="svc",
        latency_targets={0.50: 0.200},
        max_error_rate=0.5,
        min_samples=30,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=3.0)
    load = OpenLoopLoad(
        runtime.make_client(host_name="host05"),
        loids,
        PoissonArrivals(40.0),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=600.0,
    )
    load.start()
    outcome = drive_canary(runtime, v2, monitor, load)
    assert outcome.breached
    assert outcome.admitted <= 4  # canary (1) then half the fleet (4)
    assert all(manager.instance_version(loid) == v1 for loid in loids)


# ----------------------------------------------------------------------
# Durability: crash, recovery, failover
# ----------------------------------------------------------------------


def test_canary_state_survives_recovery():
    """Gate decisions replay from the journal: admitted set, passed
    gates, and a recorded breach all survive recover_manager."""
    runtime, manager, journal, loids, v2 = build_fleet()
    sim = runtime.sim
    sim.run_process(_open_and_admit(manager, loids, v2))
    manager.record_canary_gate(v2)
    manager.mark_canary_breached(v2, "p99 9.9s > 0.2s")
    crash_host(runtime, manager.host)
    recovered = sim.run_process(
        recover_manager(runtime, journal, host_name="host02", resume=False)
    )
    state = recovered.canary_state(v2)
    assert state is not None
    assert list(state.admitted) == loids[:2]
    assert state.stage_index == 1
    assert state.breached and state.breach_reason == "p99 9.9s > 0.2s"
    assert not state.closed or state.aborted


def _open_and_admit(manager, loids, v2, count=2):
    manager.begin_canary(v2, (0.25, 1.0), 5.0)
    manager.admit_canary_stage(v2, loids[:count])
    yield from manager.propagate_version(
        v2, loids=loids[:count], retry_policy=FAST_RETRY
    )


def test_canary_state_survives_checkpoint():
    runtime, manager, journal, loids, v2 = build_fleet()
    sim = runtime.sim
    sim.run_process(_open_and_admit(manager, loids, v2))
    manager.record_canary_gate(v2)
    manager.write_checkpoint()
    crash_host(runtime, manager.host)
    recovered = sim.run_process(
        recover_manager(runtime, journal, host_name="host02", resume=False)
    )
    state = recovered.canary_state(v2)
    assert list(state.admitted) == loids[:2]
    assert state.stage_index == 1
    assert not state.breached


def test_resume_propagations_never_expands_open_canary():
    """A recovered manager resumes an interrupted canary wave with the
    journaled admitted set only — a crash must not turn a 25% canary
    into a full-fleet rollout of an unvetted version."""
    runtime, manager, journal, loids, v2 = build_fleet()
    sim = runtime.sim
    sim.run_process(_open_and_admit(manager, loids, v2))
    crash_host(runtime, manager.host)
    recovered = sim.run_process(
        recover_manager(runtime, journal, host_name="host02", resume=True)
    )
    sim.run()
    evolved = [
        loid for loid in loids if recovered.instance_version(loid) == v2
    ]
    assert sorted(evolved) == sorted(loids[:2])


def test_resume_propagations_completes_breached_abort():
    """A journaled breach whose rollback the crash interrupted is
    finished by recovery — the wave never resumes delivering."""
    runtime, manager, journal, loids, v2 = build_fleet()
    v1 = manager.current_version
    sim = runtime.sim
    sim.run_process(_open_and_admit(manager, loids, v2))
    manager.mark_canary_breached(v2, "slo-breach")
    crash_host(runtime, manager.host)
    recovered = sim.run_process(
        recover_manager(runtime, journal, host_name="host02", resume=True)
    )
    sim.run()
    state = recovered.canary_state(v2)
    assert state.aborted
    assert recovered.propagation(v2).aborted
    for loid in loids:
        assert recovered.instance_version(loid) == v1


def test_canary_runner_survives_manager_failover():
    """Crash the primary mid-rollout with a supervisor standing by: the
    runner re-resolves the promoted standby and completes the ramp."""
    runtime, manager, journal, loids, v2 = build_fleet(seed=9)
    sim = runtime.sim
    supervisor = Supervisor(
        runtime,
        "Svc",
        standby_hosts=("host02", "host03"),
        detector_host_name="host04",
        retry_policy=FAST_RETRY,
    ).start()
    monitor, load = start_traffic(runtime, loids)
    outcome = {}

    def runner():
        yield sim.timeout(5.0)
        outcome["result"] = yield from run_canary_wave(
            runtime,
            "Svc",
            v2,
            RAMP,
            monitor=monitor,
            retry_policy=FAST_RETRY,
            deadline_s=400.0,
        )
        load.stop()
        supervisor.stop()

    def chaos():
        # Let the canary stage land, then kill the primary mid-bake.
        yield sim.timeout(8.0)
        crash_host(runtime, runtime.host("host00"))

    sim.run_process(_run_both(sim, runner, chaos))
    result = outcome["result"]
    assert result.completed and not result.breached, result
    current = supervisor.manager
    assert supervisor.promotions >= 1
    assert current.current_version == v2
    for loid in loids:
        assert current.instance_version(loid) == v2
        obj = current.record(loid).obj
        assert obj.applications_by_version.get(v2, 0) <= 1


def _run_both(sim, runner, chaos):
    a = sim.spawn(runner(), name="canary-runner")
    b = sim.spawn(chaos(), name="chaos")
    from repro.sim.events import AllOf

    yield AllOf(sim, [a, b])


# ----------------------------------------------------------------------
# Convergence respects frozen canary instances
# ----------------------------------------------------------------------


def test_drive_to_convergence_skips_canary_frozen_instances():
    runtime, manager, journal, loids, v2 = build_fleet()
    v1 = manager.current_version
    sim = runtime.sim
    sim.run_process(_open_and_admit(manager, loids, v2))
    tracker = sim.run_process(
        drive_to_convergence(runtime, "Svc", journal=journal, retry_policy=FAST_RETRY)
    )
    assert tracker.all_acked
    # Canary instances stay on v2; the rest converge (stay) on v1.
    for loid in loids[:2]:
        assert manager.instance_version(loid) == v2
    for loid in loids[2:]:
        assert manager.instance_version(loid) == v1
    state = manager.canary_state(v2)
    assert not state.closed


# ----------------------------------------------------------------------
# Gate bookkeeping
# ----------------------------------------------------------------------


def test_begin_canary_is_idempotent():
    runtime, manager, __, loids, v2 = build_fleet()
    state = manager.begin_canary(v2, (0.5, 1.0), 5.0)
    manager.admit_canary_stage(v2, loids[:4])
    again = manager.begin_canary(v2, (0.5, 1.0), 5.0)
    assert again is state
    assert len(again.admitted) == 4
    assert runtime.network.count_value("canary.waves") == 1


def test_complete_canary_refuses_breached_rollout():
    runtime, manager, __, loids, v2 = build_fleet()
    manager.begin_canary(v2, (1.0,), 5.0)
    manager.mark_canary_breached(v2, "slo-breach")
    with pytest.raises(WaveAborted):
        manager.complete_canary(v2)


def test_canary_policy_validation():
    with pytest.raises(ValueError):
        CanaryWavePolicy(stages=())
    with pytest.raises(ValueError):
        CanaryWavePolicy(stages=(0.5, 0.1, 1.0))
    with pytest.raises(ValueError):
        CanaryWavePolicy(stages=(0.1, 0.5))
    with pytest.raises(ValueError):
        CanaryWavePolicy(stages=(0.0, 1.0))
    with pytest.raises(ValueError):
        CanaryWavePolicy(check_interval_s=0.0)
