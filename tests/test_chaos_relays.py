"""Chaos tests for relay-batched waves: crashes mid-batch, no half-applies.

Seeded schedules crash relay hosts while a host-batched propagation
wave is in flight.  A dying relay takes its colocated instances with
it; the acceptance invariants are PR 3's, unchanged by the relay
layer: no live settled instance is ever half-applied, batch re-sends
never double-apply (idempotence keyed by target version), abortive
waves roll committed instances all the way back, and the fleet still
converges once faults heal — with relays restored and back in use.
"""

import pytest

from repro.cluster import build_lan, deploy_relays
from repro.cluster.chaos import (
    ChaosCoordinator,
    ChaosSchedule,
    drive_to_convergence,
)
from repro.core import EvolutionPhase, ManagerJournal, WaveAborted, WavePolicy
from repro.legion import LegionRuntime
from repro.net import RetryPolicy

from tests.conftest import create_dcdo, make_sorter_manager

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)
ONE_SHOT = RetryPolicy(base_s=1.0, max_attempts=1)

ICO_HOST = "host05"
INSTANCE_HOSTS = ("host01", "host02", "host03", "host04")

V1_COMPONENTS = {"sorter", "compare-asc"}
V2_COMPONENTS = {"sorter", "compare-asc", "compare-desc"}


def build_relay_fleet(sim_seed, instances_per_host=2, **manager_kwargs):
    """Journaled sorter fleet with relays on every host.

    Manager and v1 components on host00, the evolution-critical
    ``compare-desc`` ICO on host05, instances spread over
    host01..host04 — so relay-host crashes hit batches, not the
    manager or the component server.
    """
    runtime = LegionRuntime(build_lan(6, seed=sim_seed))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime,
        component_hosts={
            "sorter": "host00",
            "compare-asc": "host00",
            "compare-desc": ICO_HOST,
        },
        journal=journal,
        propagation_retry_policy=FAST_RETRY,
        **manager_kwargs,
    )
    loids = []
    for host_name in INSTANCE_HOSTS:
        for __ in range(instances_per_host):
            loid, __obj = create_dcdo(runtime, manager, host_name=host_name)
            loids.append(loid)
    directory = deploy_relays(runtime)
    manager.use_relays(directory)
    return runtime, manager, journal, loids, directory


def derive_v2(manager):
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    manager.descriptor_of(version).enable(
        "compare", "compare-desc", replace_current=True
    )
    manager.mark_instantiable(version)
    return version


def assert_never_half_applied(manager, loids, v1, v2, context):
    """Every live, settled instance is fully on v1 or fully on v2."""
    for loid in loids:
        record = manager.record(loid)
        if not record.active:
            continue
        obj = record.obj
        if obj.evolution_phase is not EvolutionPhase.IDLE:
            continue
        components = obj.dfm.component_ids
        if obj.version == v2:
            assert components == V2_COMPONENTS, (
                f"{context}: {loid} at v2 with components {components}"
            )
        else:
            assert obj.version == v1, (
                f"{context}: {loid} at unexpected version {obj.version}"
            )
            assert components == V1_COMPONENTS, (
                f"{context}: {loid} at v1 with components {components} "
                f"(half-applied evolution)"
            )


@pytest.mark.parametrize("seed", range(8))
def test_chaos_relay_crash_mid_batch_never_half_applied(seed):
    """Crash relay hosts while batches are mid-flight: instances die
    with their relay, nothing is half-applied, batch re-sends never
    double-apply, and the fleet converges through restored relays."""
    runtime, manager, journal, loids, directory = build_relay_fleet(
        sim_seed=1100 + seed
    )
    v1 = manager.current_version
    coordinator = ChaosCoordinator(
        runtime, journals={"Sorter": journal}, relays=directory
    )
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        max_crashes=0,
        max_partitions=0,
        max_drops=1,
        protect=("host00", ICO_HOST),
        relay_hosts=INSTANCE_HOSTS,
        max_relay_crashes=2,
    )
    schedule.install(runtime, coordinator)
    assert schedule.crashes, "schedule must actually crash relay hosts"
    v2 = derive_v2(manager)
    manager.set_current_version(v2)

    def scenario():
        yield runtime.sim.timeout(0.5)
        # Kick the batched wave off while the relay crashes are armed.
        yield from manager.propagate_version(v2, retry_policy=FAST_RETRY)
        assert_never_half_applied(
            runtime.class_of("Sorter"), loids, v1, v2, f"seed {seed} post-wave"
        )
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        tracker = yield from drive_to_convergence(
            runtime,
            "Sorter",
            journal=journal,
            retry_policy=FAST_RETRY,
            relays=directory,
        )
        return tracker

    tracker = runtime.sim.run_process(scenario())
    runtime.sim.run()

    assert tracker is not None and tracker.all_acked, (
        f"seed {seed}: fleet did not converge: {tracker and tracker.summary()}"
    )
    manager_now = runtime.class_of("Sorter")
    assert_never_half_applied(
        manager_now, loids, v1, v2, f"seed {seed} converged"
    )
    for loid in loids:
        assert manager_now.instance_version(loid) == v2
        obj = manager_now.record(loid).obj
        assert obj.version == v2
        # At-least-once batches, exactly-once application.
        assert obj.applications_by_version.get(v2, 0) <= 1
    # Crashed relays came back and the wave kept flowing through them.
    assert runtime.network.count_value("relay.recoveries") >= 1
    assert runtime.network.count_value("relay.batches") >= 1


@pytest.mark.parametrize("seed", range(6))
def test_chaos_abortive_relay_wave_rolls_back(seed):
    """An abort-on-first-failure wave delivered through relays: the
    rollback undoes relay-committed instances exactly as it undoes
    directly-committed ones, and convergence still lands on v2."""
    runtime, manager, journal, loids, directory = build_relay_fleet(
        sim_seed=1300 + seed
    )
    v1 = manager.current_version
    coordinator = ChaosCoordinator(
        runtime, journals={"Sorter": journal}, relays=directory
    )
    schedule = ChaosSchedule.generate(
        seed,
        list(runtime.hosts),
        duration_s=120.0,
        max_crashes=0,
        max_partitions=0,
        max_drops=0,
        protect=("host00", ICO_HOST),
        relay_hosts=INSTANCE_HOSTS,
        max_relay_crashes=2,
    )
    schedule.install(runtime, coordinator)
    v2 = derive_v2(manager)
    manager.set_current_version(v2)

    def scenario():
        yield runtime.sim.timeout(0.5)
        aborted = False
        try:
            yield from manager.propagate_version(
                v2, retry_policy=ONE_SHOT, wave_policy=WavePolicy.abort_after(0)
            )
        except WaveAborted:
            aborted = True
        assert_never_half_applied(
            manager, loids, v1, v2, f"seed {seed} post-wave"
        )
        heal = schedule.heal_time + 1.0
        if runtime.sim.now < heal:
            yield runtime.sim.timeout(heal - runtime.sim.now)
        tracker = yield from drive_to_convergence(
            runtime,
            "Sorter",
            journal=journal,
            retry_policy=FAST_RETRY,
            relays=directory,
        )
        return aborted, tracker

    aborted, tracker = runtime.sim.run_process(scenario())
    runtime.sim.run()

    if aborted:
        kinds = [entry.kind for entry in journal.replay()]
        assert "wave-aborted" in kinds
        # Every rollback of a relay-committed instance is journaled.
        assert runtime.network.count_value("wave.aborts") >= 1
    assert tracker is not None and tracker.all_acked, (
        f"seed {seed}: fleet did not converge: {tracker and tracker.summary()}"
    )
    manager_now = runtime.class_of("Sorter")
    assert_never_half_applied(
        manager_now, loids, v1, v2, f"seed {seed} converged"
    )
    for loid in loids:
        assert manager_now.record(loid).obj.version == v2
