"""Sentence-level claims from the paper, each pinned by a test.

Every test quotes the sentence it verifies; together they document how
faithfully the model's semantics (not just its performance) follow the
paper.
"""

import pytest

from repro.core import ComponentBuilder, Dependency, DependencyViolation
from repro.core.manager import define_dcdo_type
from repro.core.policies import GeneralEvolutionPolicy
from tests.conftest import create_dcdo, make_sorter_manager


def test_version_ids_unique_only_within_a_type(runtime):
    """§2.1: "Version identifiers are unique only within a particular
    object type, they are not necessarily globally unique across
    types." — two managers both have a version 1."""
    manager_a = make_sorter_manager(runtime, type_name="TypeA")
    manager_b = make_sorter_manager(runtime, type_name="TypeB")
    assert manager_a.current_version == manager_b.current_version
    assert manager_a.current_version is not None


def test_same_version_instances_are_functionally_equivalent(runtime):
    """§2.1: "If two DCDOs of the same type are both of version 1.2.3,
    then their implementations are the same — that is, the same
    components are incorporated into the two objects, and the DFMs of
    the objects are functionally equivalent to one another."""
    manager = make_sorter_manager(runtime)
    __, obj_a = create_dcdo(runtime, manager)
    __, obj_b = create_dcdo(runtime, manager)
    assert obj_a.version == obj_b.version
    assert obj_a.dfm.component_ids == obj_b.dfm.component_ids
    assert obj_a.dfm.to_descriptor().functionally_equivalent(obj_b.dfm.to_descriptor())


def test_manager_version_pair_identifies_interface(runtime):
    """§2.4: distinguishing instantiable from configurable versions
    "allows the <DCDO Manager, Version Id> pair to uniquely identify
    an object's interface and implementation" — every instance created
    at a version exposes the identical interface."""
    manager = make_sorter_manager(runtime)
    client = runtime.make_client()
    interfaces = set()
    for __ in range(3):
        loid, __obj = create_dcdo(runtime, manager)
        interfaces.add(tuple(client.call_sync(loid, "getInterface")))
    assert len(interfaces) == 1


def test_component_private_data_isolated(runtime):
    """§2: "Implementation components may also contain a set of
    internal data structures, but these data structures must be
    accessed from outside the component by calling the component's
    exported dynamic functions." — two components in one DCDO have
    disjoint private state."""

    def writer(ctx):
        ctx.component_state["secret"] = "from-writer"
        return True

    def reader(ctx):
        return ctx.component_state.get("secret")

    comp_a = ComponentBuilder("comp-a").function("write_a", writer).build()
    comp_b = ComponentBuilder("comp-b").function("read_b", reader).build()
    manager = define_dcdo_type(runtime, "Isolation")
    manager.register_component(comp_a)
    manager.register_component(comp_b)
    version = manager.new_version()
    manager.incorporate_into(version, "comp-a")
    manager.incorporate_into(version, "comp-b")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("write_a", "comp-a")
    descriptor.enable("read_b", "comp-b")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    assert client.call_sync(loid, "write_a") is True
    # comp-b's functions cannot see comp-a's internal data.
    assert client.call_sync(loid, "read_b") is None


def test_type_c_dependency_as_access_guard(runtime):
    """§3.2: "a function F1 may require that a security function F2 be
    enabled to restrict access to F1.  In this case F1 may not call
    F2, but still requires that it be present." — a Type C dependency
    with no call relationship still vetoes disabling the guard."""
    guarded = (
        ComponentBuilder("guarded")
        .function("sensitive", lambda ctx: "data")
        .build()
    )
    security = (
        ComponentBuilder("security")
        .function("authorize", lambda ctx: True)
        .build()
    )
    manager = define_dcdo_type(runtime, "Guarded")
    manager.register_component(guarded)
    manager.register_component(security)
    version = manager.new_version()
    manager.incorporate_into(version, "guarded")
    manager.incorporate_into(version, "security")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("sensitive", "guarded")
    descriptor.enable("authorize", "security")
    descriptor.add_dependency(
        Dependency("sensitive", "authorize", required_component="security")
    )
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    with pytest.raises(DependencyViolation):
        client.call_sync(loid, "disableFunction", "authorize", "security")
    # Disabling the guarded function first releases the guard.
    client.call_sync(loid, "disableFunction", "sensitive", "guarded")
    client.call_sync(loid, "disableFunction", "authorize", "security")


def test_adding_functions_does_not_break_existing_clients(runtime):
    """§3.1: "adding functions to a public interface ... do[es] not
    cause problems of this type; clients' calls will not fail"."""
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    client.call_sync(loid, "getInterface")  # client snapshot
    extra = ComponentBuilder("extra").function("brand_new", lambda ctx: 1).build()
    manager.register_component(extra)
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "extra")
    manager.descriptor_of(version).enable("brand_new", "extra")
    manager.mark_instantiable(version)
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    # Old invocations built against the old interface still succeed.
    assert client.call_sync(loid, "sort", [2, 1]) == [1, 2]


def test_changing_implementation_with_same_signature_does_not_fail_calls(runtime):
    """§3.1: "changing the implementation of a function while keeping
    its signature the same do[es] not cause problems of this type" —
    the call succeeds; only behaviour (sort order) changes."""
    manager = make_sorter_manager(runtime, evolution_policy=GeneralEvolutionPolicy())
    loid, __ = create_dcdo(runtime, manager)
    client = runtime.make_client()
    assert client.call_sync(loid, "sort", [2, 1, 3]) == [1, 2, 3]
    version = manager.derive_version(manager.current_version)
    manager.incorporate_into(version, "compare-desc")
    descriptor = manager.descriptor_of(version)
    descriptor.enable("compare", "compare-desc", replace_current=True)
    manager.mark_instantiable(version)
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    # No failure — but reversed output, exactly the §3.2 sort/compare
    # behavioral-dependency motivation.
    assert client.call_sync(loid, "sort", [2, 1, 3]) == [3, 2, 1]


def test_thread_can_proceed_inside_deactivated_function(runtime):
    """§3.2: "there is no reason why a thread cannot proceed inside a
    deactivated function ... it only matters what the status of the
    function is at the time the call is initiated"."""

    def long_fn(ctx):
        yield ctx.work(5.0)
        return "completed"

    comp = ComponentBuilder("longrun").function("long_fn", long_fn).build()
    manager = define_dcdo_type(runtime, "LongRun")
    manager.register_component(comp)
    version = manager.new_version()
    manager.incorporate_into(version, "longrun")
    manager.descriptor_of(version).enable("long_fn", "longrun")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid, obj = create_dcdo(runtime, manager)
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    outcome = {}

    def worker():
        outcome["result"] = yield from client_a.invoke(
            loid, "long_fn", timeout_schedule=(60.0,)
        )

    def disabler():
        yield runtime.sim.timeout(1.0)
        yield from client_b.invoke(loid, "disableFunction", "long_fn", "longrun")

    runtime.sim.spawn(worker())
    runtime.sim.spawn(disabler())
    runtime.sim.run()
    # The in-flight thread completed despite the mid-flight disable...
    assert outcome["result"] == "completed"
    # ...but new calls are disallowed.
    from repro.legion.errors import MethodNotFound

    with pytest.raises(MethodNotFound):
        client_a.call_sync(loid, "long_fn")


def test_mandatory_inherited_by_derived_versions(runtime):
    """§3.2: "an implementation of a mandatory function must be present
    in any instantiable version of the DFM descriptor that is derived
    from a version in which the function is marked mandatory"."""
    from repro.core import MandatoryViolation

    manager = make_sorter_manager(runtime)
    v2 = manager.derive_version(manager.current_version)
    manager.descriptor_of(v2).mark_mandatory("sort")
    manager.mark_instantiable(v2)
    # A child of v2 without an enabled sort cannot become instantiable.
    v3 = manager.derive_version(v2)
    descriptor = manager.descriptor_of(v3)
    assert descriptor.marking("sort").value == "mandatory"  # inherited
    with pytest.raises(MandatoryViolation):
        descriptor.disable("sort", "sorter")


def test_permanent_freezes_implementation_in_derived_versions(runtime):
    """§3.2: "Once a DCDO evolves to a version that contains a
    permanent function F implemented in component C, component C's
    implementation of function F will be present in all derived
    versions of the type"."""
    from repro.core import PermanenceViolation

    manager = make_sorter_manager(runtime)
    v2 = manager.derive_version(manager.current_version)
    manager.descriptor_of(v2).mark_permanent("compare")
    manager.mark_instantiable(v2)
    v3 = manager.derive_version(v2)
    descriptor = manager.descriptor_of(v3)
    manager.incorporate_into(v3, "compare-desc")
    descriptor = manager.descriptor_of(v3)
    with pytest.raises(PermanenceViolation):
        descriptor.enable("compare", "compare-desc", replace_current=True)
    with pytest.raises(PermanenceViolation):
        descriptor.remove_component("compare-asc")
