"""Unit tests for simulation processes: joining, interrupts, errors."""

import pytest

from repro.sim import Interrupt, Simulator, StopProcess


def test_process_return_value_via_join():
    sim = Simulator()

    def child():
        yield sim.timeout(2)
        return "result"

    def parent():
        value = yield sim.spawn(child())
        return (sim.now, value)

    assert sim.run_process(parent()) == (2.0, "result")


def test_stop_process_is_equivalent_to_return():
    sim = Simulator()

    def helper():
        raise StopProcess("early")
        yield  # pragma: no cover - unreachable, marks this as a generator

    def child():
        yield sim.timeout(1)
        helper_gen = helper()
        yield sim.spawn(helper_gen)

    def parent():
        proc = sim.spawn(child())
        yield proc
        return "parent done"

    assert sim.run_process(parent()) == "parent done"


def test_exception_in_child_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("child blew up")

    def parent():
        yield sim.spawn(child())

    with pytest.raises(ValueError, match="child blew up"):
        sim.run_process(parent())


def test_cooperative_yield_none_resumes_same_time():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("before", sim.now))
        yield None
        trace.append(("after", sim.now))

    sim.spawn(proc())
    sim.run()
    assert trace == [("before", 0.0), ("after", 0.0)]


def test_yield_non_event_raises_type_error():
    sim = Simulator()

    def proc():
        yield 42

    with pytest.raises(TypeError, match="expected an Event"):
        sim.run_process(proc())


def test_yield_event_from_other_simulator_rejected():
    sim_a = Simulator()
    sim_b = Simulator()
    foreign = sim_b.event()

    def proc():
        yield foreign

    with pytest.raises(RuntimeError, match="another simulator"):
        sim_a.run_process(proc())


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            return ("interrupted", sim.now, interrupt.cause)
        return "slept through"

    def interrupter(target):
        yield sim.timeout(3)
        target.interrupt("wake up")

    target = sim.spawn(sleeper())
    sim.spawn(interrupter(target))
    sim.run()
    assert target.value == ("interrupted", 3.0, "wake up")


def test_interrupted_process_can_keep_running():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(5)
        return sim.now

    def interrupter(target):
        yield sim.timeout(1)
        target.interrupt()

    target = sim.spawn(sleeper())
    sim.spawn(interrupter(target))
    sim.run()
    assert target.value == 6.0


def test_original_event_after_interrupt_is_ignored():
    sim = Simulator()
    event = sim.event()
    resumes = []

    def sleeper():
        try:
            yield event
        except Interrupt:
            resumes.append("interrupt")
        yield sim.timeout(10)
        resumes.append("timeout")

    def driver(target):
        yield sim.timeout(1)
        target.interrupt()
        yield sim.timeout(1)
        event.succeed("late")  # must NOT resume the sleeper again

    target = sim.spawn(sleeper())
    sim.spawn(driver(target))
    sim.run()
    assert resumes == ["interrupt", "timeout"]


def test_cannot_interrupt_finished_process():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.spawn(quick())
    sim.run()
    with pytest.raises(RuntimeError, match="finished"):
        proc.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()
    holder = {}

    def selfish():
        holder["me"].interrupt()
        yield sim.timeout(1)

    holder["me"] = sim.spawn(selfish())
    with pytest.raises(RuntimeError, match="cannot interrupt itself"):
        sim.run(until=holder["me"])


def test_is_alive_lifecycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)

    process = sim.spawn(proc())
    assert process.is_alive
    sim.run()
    assert not process.is_alive


def test_multiple_joiners_all_resume():
    sim = Simulator()

    def child():
        yield sim.timeout(2)
        return "shared"

    child_proc = None
    results = []

    def joiner(tag):
        value = yield child_proc
        results.append((tag, value, sim.now))

    child_proc = sim.spawn(child())
    sim.spawn(joiner("a"))
    sim.spawn(joiner("b"))
    sim.run()
    assert sorted(results) == [("a", "shared", 2.0), ("b", "shared", 2.0)]


def test_nested_spawn_tree_completes():
    sim = Simulator()

    def leaf(n):
        yield sim.timeout(n)
        return n

    def branch():
        total = 0
        for n in (1, 2, 3):
            total += yield sim.spawn(leaf(n))
        return total

    assert sim.run_process(branch()) == 6
    assert sim.now == 6.0
