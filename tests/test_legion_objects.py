"""Integration tests: object creation, invocation, migration, bindings."""

import pytest

from repro.legion.errors import MethodNotFound, UnknownObject
from tests.conftest import make_counter_class


def create_counter(runtime, klass, host_name=None):
    return runtime.sim.run_process(klass.create_instance(host_name=host_name))


# ----------------------------------------------------------------------
# Creation
# ----------------------------------------------------------------------


def test_create_instance_returns_loid(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    assert loid.type_name == "Counter"
    assert klass.record(loid).active


def test_creation_charges_spawn_and_registration(runtime):
    klass = make_counter_class(runtime, function_count=500)
    start = runtime.sim.now
    create_counter(runtime, klass)
    elapsed = runtime.sim.now - start
    # Paper E3: ~2.2 s for a 500-function monolithic object.
    assert 1.8 <= elapsed <= 2.7


def test_creation_downloads_binary_on_cache_miss(runtime):
    klass = make_counter_class(runtime)
    target = runtime.host("host02")
    target.cache.clear()
    start = runtime.sim.now
    create_counter(runtime, klass, host_name="host02")
    elapsed = runtime.sim.now - start
    # 550 KB download adds ~4 s on top of ~1.x s creation.
    assert elapsed > 4.0


def test_placement_spreads_instances(runtime):
    klass = make_counter_class(runtime)
    hosts = {klass.record(create_counter(runtime, klass)).host.name for _ in range(4)}
    assert len(hosts) == 4


def test_unknown_instance_raises(runtime):
    klass = make_counter_class(runtime)
    from repro.legion.loid import mint_loid

    with pytest.raises(UnknownObject):
        klass.record(mint_loid(runtime.domain, "Counter"))


# ----------------------------------------------------------------------
# Invocation
# ----------------------------------------------------------------------


def test_remote_invocation_roundtrip(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client = runtime.make_client("host03")
    assert client.call_sync(loid, "inc", 5) == 5
    assert client.call_sync(loid, "get") == 5


def test_remote_invocation_takes_milliseconds(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client = runtime.make_client("host03")
    client.call_sync(loid, "inc")  # warm the binding cache
    start = runtime.sim.now
    client.call_sync(loid, "get")
    elapsed = runtime.sim.now - start
    # A Legion null RPC is a few milliseconds (§4: the ~12 us DFM
    # overhead must be "a small fraction" of this).
    assert 0.002 < elapsed < 0.02


def test_invoking_missing_method_raises_method_not_found(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client = runtime.make_client()
    with pytest.raises(MethodNotFound):
        client.call_sync(loid, "no_such_function")


def test_method_with_simulated_work(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client = runtime.make_client()
    start = runtime.sim.now
    assert client.call_sync(loid, "slow", 0.5) == "done"
    assert runtime.sim.now - start >= 0.5


def test_intra_object_call_dispatches_locally(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client = runtime.make_client()
    assert client.call_sync(loid, "add_twice", 3) == (3, 6)
    assert client.call_sync(loid, "get") == 6


def test_concurrent_requests_interleave(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client_a = runtime.make_client("host01")
    client_b = runtime.make_client("host02")
    done = []
    start = runtime.sim.now

    def caller(client, seconds, tag):
        yield from client.invoke(loid, "slow", seconds)
        done.append((tag, runtime.sim.now - start))

    runtime.sim.spawn(caller(client_a, 2.0, "slow"))
    runtime.sim.spawn(caller(client_b, 0.1, "fast"))
    runtime.sim.run()
    # The fast request finished while the slow one was still running:
    # the object serves each request on its own simulated thread.
    assert done[0][0] == "fast"
    assert done[0][1] < 1.0


def test_invoking_class_object_remotely(runtime):
    klass = make_counter_class(runtime)
    client = runtime.make_client()
    loid = client.call_sync(
        klass.loid, "createInstance", timeout_schedule=(30.0,)
    )
    assert klass.record(loid).active
    assert client.call_sync(loid, "inc") == 1


def test_unknown_loid_resolution_fails(runtime):
    make_counter_class(runtime)
    client = runtime.make_client()
    from repro.legion.loid import mint_loid

    with pytest.raises(UnknownObject):
        client.call_sync(mint_loid(runtime.domain, "Counter"), "get")


# ----------------------------------------------------------------------
# Deactivation, reactivation, migration
# ----------------------------------------------------------------------


def test_deactivate_then_activate_preserves_state(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    client = runtime.make_client()
    client.call_sync(loid, "inc", 41)
    runtime.sim.run_process(klass.deactivate_instance(loid))
    assert not klass.record(loid).active
    runtime.sim.run_process(klass.activate_instance(loid))
    client.binding_cache.invalidate(loid)
    assert client.call_sync(loid, "inc") == 42


def test_migration_moves_host_and_preserves_state(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass, host_name="host00")
    client = runtime.make_client("host03")
    client.call_sync(loid, "inc", 7)
    runtime.sim.run_process(klass.migrate_instance(loid, "host01"))
    record = klass.record(loid)
    assert record.host.name == "host01"
    client.binding_cache.invalidate(loid)
    assert client.call_sync(loid, "get") == 7


def test_stale_binding_discovery_takes_25_to_35_seconds(runtime):
    """The paper's E4 claim, end to end through the RPC layer."""
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass, host_name="host00")
    client = runtime.make_client("host03")
    client.call_sync(loid, "inc")  # cache the binding
    runtime.sim.run_process(klass.migrate_instance(loid, "host01"))
    start = runtime.sim.now
    # The cached binding points at the dead incarnation; the call must
    # walk the timeout schedule before rebinding and succeeding.
    assert client.call_sync(loid, "get") == 1
    elapsed = runtime.sim.now - start
    assert 25.0 <= elapsed <= 35.0
    assert client.binding_cache.stale_stats.count == 1


def test_fresh_client_after_migration_resolves_directly(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass, host_name="host00")
    runtime.sim.run_process(klass.migrate_instance(loid, "host01"))
    client = runtime.make_client("host03")
    start = runtime.sim.now
    assert client.call_sync(loid, "get") == 0
    assert runtime.sim.now - start < 1.0  # no stale binding to discover


def test_class_object_seeds_its_own_cache_after_migration(runtime):
    """The class object minted the post-move binding itself: its own
    management RPCs must not pay the stale-binding walk a plain client
    pays (the controller's migrate-then-evolve path depends on this)."""
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass, host_name="host00")
    # Warm the class object's own cache with the pre-move binding.
    runtime.sim.run_process(klass.invoker.invoke(loid, "inc", (3,)))
    binding = runtime.sim.run_process(klass.migrate_instance(loid, "host01"))
    assert klass.invoker.binding_cache.get(loid) is binding
    start = runtime.sim.now
    assert runtime.sim.run_process(klass.invoker.invoke(loid, "get", ())) == 3
    assert runtime.sim.now - start < 1.0  # no stale binding to discover
    assert klass.invoker.binding_cache.stale_stats.count == 0


def test_delete_instance_unregisters(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    runtime.sim.run_process(klass.delete_instance(loid))
    with pytest.raises(UnknownObject):
        klass.record(loid)


def test_binding_incarnation_increases_across_activations(runtime):
    klass = make_counter_class(runtime)
    loid = create_counter(runtime, klass)
    first = runtime.binding_agent.resolve_local(loid)
    runtime.sim.run_process(klass.deactivate_instance(loid))
    runtime.sim.run_process(klass.activate_instance(loid))
    second = runtime.binding_agent.resolve_local(loid)
    assert second.incarnation == first.incarnation + 1
    assert second.address != first.address


# ----------------------------------------------------------------------
# Implementation downloads (E5 shape)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "size_bytes,low,high",
    [
        (550_000, 3.0, 5.0),  # "a 550 K implementation takes about 4 seconds"
        (5_100_000, 15.0, 25.0),  # "15 to 25 seconds" for 5.1 MB
    ],
)
def test_download_times_match_paper(runtime, size_bytes, low, high):
    from repro.legion import Implementation

    implementation = runtime.implementation_store.publish(
        Implementation(impl_id=f"blob-{size_bytes}", size_bytes=size_bytes)
    )
    client = runtime.make_client("host01")
    host = runtime.host("host01")
    start = runtime.sim.now
    runtime.sim.run_process(
        runtime.implementation_store.ensure_cached(
            host, implementation.impl_id, client.endpoint
        )
    )
    elapsed = runtime.sim.now - start
    assert low <= elapsed <= high
    assert implementation.impl_id in host.cache


def test_cached_download_is_free(runtime):
    from repro.legion import Implementation

    implementation = runtime.implementation_store.publish(
        Implementation(impl_id="blob", size_bytes=1_000_000)
    )
    client = runtime.make_client("host01")
    host = runtime.host("host01")
    host.cache.insert("blob", 1_000_000)
    start = runtime.sim.now
    seconds = runtime.sim.run_process(
        runtime.implementation_store.ensure_cached(host, "blob", client.endpoint)
    )
    assert seconds == 0.0
    assert runtime.sim.now == start
