"""Unit tests for the simulation kernel: clock, events, run modes."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.errors import (
    EventAlreadyTriggered,
    SimulationError,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=42.0).now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.5)
        return sim.now

    assert sim.run_process(proc()) == 3.5


def test_zero_delay_timeout_is_allowed():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(10)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_run_until_time_does_not_process_boundary_events():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(5)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5.0)
    assert fired == []


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_events_at_same_time_run_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()

    def producer():
        yield sim.timeout(2)
        event.succeed("payload")

    def consumer():
        value = yield event
        return (sim.now, value)

    sim.spawn(producer())
    assert sim.run_process(consumer()) == (2.0, "payload")


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    event = sim.event()

    def producer():
        yield sim.timeout(1)
        event.fail(RuntimeError("boom"))

    def consumer():
        yield event

    sim.spawn(producer())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run_process(consumer())


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        event.fail(RuntimeError())


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_timeout_cannot_be_triggered_manually():
    sim = Simulator()
    timeout = sim.timeout(1)
    with pytest.raises(EventAlreadyTriggered):
        timeout.succeed()


def test_waiting_on_already_processed_event_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")
    sim.run()  # process the event fully

    def late_waiter():
        value = yield event
        return (sim.now, value)

    assert sim.run_process(late_waiter()) == (0.0, "early")


def test_all_of_collects_all_values():
    sim = Simulator()
    timeouts = [sim.timeout(t, value=t) for t in (3, 1, 2)]

    def proc():
        values = yield AllOf(sim, timeouts)
        return (sim.now, sorted(values.values()))

    assert sim.run_process(proc()) == (3.0, [1, 2, 3])


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def proc():
        yield AllOf(sim, [])
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_all_of_fails_on_first_child_failure():
    sim = Simulator()
    bad = sim.event()

    def failer():
        yield sim.timeout(1)
        bad.fail(ValueError("child failed"))

    def proc():
        yield AllOf(sim, [sim.timeout(5), bad])

    sim.spawn(failer())
    with pytest.raises(ValueError, match="child failed"):
        sim.run_process(proc())


def test_any_of_returns_first_value():
    sim = Simulator()
    fast = sim.timeout(1, value="fast")
    slow = sim.timeout(9, value="slow")

    def proc():
        result = yield AnyOf(sim, [fast, slow])
        return (sim.now, result)

    when, result = sim.run_process(proc())
    assert when == 1.0
    assert result == {fast: "fast"}


def test_any_of_fails_only_when_all_fail():
    sim = Simulator()
    first = sim.event()
    second = sim.event()

    def failer():
        yield sim.timeout(1)
        first.fail(ValueError("first"))
        yield sim.timeout(1)
        second.fail(ValueError("second"))

    def proc():
        yield AnyOf(sim, [first, second])

    sim.spawn(failer())
    with pytest.raises(ValueError, match="second"):
        sim.run_process(proc())


def test_run_until_event_returns_value():
    sim = Simulator()
    event = sim.event()

    def producer():
        yield sim.timeout(4)
        event.succeed("done")

    sim.spawn(producer())
    assert sim.run(until=event) == "done"
    assert sim.now == 4.0


def test_run_until_event_starved_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(until=event)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_processed_events_counter_increases():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)

    sim.spawn(proc())
    sim.run()
    assert sim.processed_events > 0


# ----------------------------------------------------------------------
# Scheduler: daemon accounting, same-instant ordering, cancellation
# ----------------------------------------------------------------------


def test_nondaemon_accounting_survives_run_until_time():
    """run(until=time) may leave unprocessed non-daemon entries behind;
    the pending-count bookkeeping must stay exact so a later unbounded
    run() still knows when to stop."""
    sim = Simulator()
    fired = []

    def proc(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in (1.0, 5.0, 9.0):
        sim.spawn(proc(delay))
    sim.run(until=3.0)
    assert fired == [1.0]
    # Two sleeping processes remain, each one non-daemon timeout entry.
    assert sim._scheduler.nondaemon_pending == 2
    assert sim.pending == 2
    sim.run()
    assert fired == [1.0, 5.0, 9.0]
    assert sim._scheduler.nondaemon_pending == 0
    assert sim.pending == 0


def test_daemon_entries_do_not_keep_run_alive_after_until():
    sim = Simulator()
    fired = []

    def poller():
        while True:
            yield sim.timeout(1.0, daemon=True)
            fired.append(sim.now)

    sim.spawn(poller())
    # The spawn kick-off itself is non-daemon; let it run, then make
    # sure the pure-daemon remainder never keeps an unbounded run alive.
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]
    sim.run()
    assert fired == [1.0, 2.0]


def test_same_instant_order_matches_between_schedulers():
    """The calendar queue must reproduce the heap's (time, seq) order
    exactly — chaos seeds depend on same-instant tie-breaks."""
    from repro.sim import CalendarScheduler, HeapScheduler

    def workload(sim, log):
        def leaf(tag):
            yield sim.timeout(0)
            log.append((sim.now, tag))

        def burst(tag, delay):
            yield sim.timeout(delay)
            log.append((sim.now, tag))
            for child in range(3):
                sim.spawn(leaf(f"{tag}.{child}"))

        # Several bursts landing on the same instants, interleaved with
        # zero-delay cascades — the tie-break-heavy shape.
        for index, delay in enumerate((2.0, 1.0, 2.0, 0.0, 1.0, 0.0)):
            sim.spawn(burst(f"b{index}", delay))

    logs = []
    for scheduler in (CalendarScheduler(), HeapScheduler()):
        sim = Simulator(scheduler=scheduler)
        log = []
        workload(sim, log)
        sim.run()
        logs.append(log)
    assert logs[0] == logs[1]
    assert len(logs[0]) == 24  # 6 bursts + 18 leaves


def test_cancelled_timeout_never_fires_and_releases_run():
    sim = Simulator()
    fired = []
    timeout = sim.timeout(5.0)
    timeout.add_callback(lambda event: fired.append(sim.now))
    assert sim.pending == 1
    assert timeout.cancel() is True
    assert sim.pending == 0
    sim.run()  # returns immediately: nothing non-daemon remains
    assert sim.now == 0.0
    assert fired == []


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    sim.run()
    assert sim.now == 1.0
    assert timeout.cancel() is False
    assert timeout.cancel() is False


def test_cancelled_entries_are_skipped_not_processed():
    sim = Simulator()
    sim.timeout(1.0).cancel()
    keeper = sim.timeout(1.0, value="kept")

    def waiter():
        value = yield keeper
        return (sim.now, value)

    assert sim.run_process(waiter()) == (1.0, "kept")
    # The cancelled entry was skipped silently: processed counts the
    # keeper's trigger and the waiter's machinery, not the dead entry.
    processed_with_cancel = sim.processed_events

    fresh = Simulator()
    fresh_keeper = fresh.timeout(1.0, value="kept")

    def fresh_waiter():
        value = yield fresh_keeper
        return (fresh.now, value)

    assert fresh.run_process(fresh_waiter()) == (1.0, "kept")
    assert processed_with_cancel == fresh.processed_events


def test_run_until_time_ignores_cancelled_head():
    sim = Simulator()
    sim.timeout(1.0).cancel()
    fired = []

    def proc():
        yield sim.timeout(4.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert fired == []
    sim.run()
    assert fired == [4.0]


def test_heap_scheduler_simulator_end_to_end():
    from repro.sim import HeapScheduler

    sim = Simulator(scheduler=HeapScheduler())
    order = []

    def proc(tag, delay):
        yield sim.timeout(delay)
        order.append((sim.now, tag))

    sim.spawn(proc("late", 2.0))
    sim.spawn(proc("early", 1.0))
    sim.spawn(proc("tied", 2.0))
    sim.run()
    assert order == [(1.0, "early"), (2.0, "late"), (2.0, "tied")]
