"""Unit and integration coverage for the self-healing control loop.

Covers the pieces the chaos sweep (``test_chaos_controller``) exercises
in anger: the event bus, the shared convergence guard (including the
supervisor-vs-controller double-converge regression), the manager's
term-fenced remediation lease / intent journal, policy admission
(budget + cooldown), and end-to-end remediations — SLO-breach rollback,
quarantine-driven migration, deploy prewarm, and hot-shard splits.
"""

import pytest

from repro.cluster import (
    ReactiveController,
    Supervisor,
    build_lan,
    convergence_guard,
)
from repro.core import ManagerJournal
from repro.core.policies import (
    DemoteDegradedVersion,
    MigrateOffFlakyHost,
    PrewarmBlobCaches,
    RebalanceHotShard,
    ReliableUpdatePolicy,
    RemediationIntent,
    RemediationPolicy,
    default_remediation_policies,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.obs import SLO, EventBus
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

from tests.conftest import create_dcdo, make_sorter_manager

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------


def test_event_bus_exact_prefix_and_wildcard(runtime):
    bus = EventBus(runtime.sim)
    seen = {"exact": [], "prefix": [], "all": []}
    bus.subscribe("slo.breach", lambda e: seen["exact"].append(e))
    bus.subscribe("slo.", lambda e: seen["prefix"].append(e))
    bus.subscribe("*", lambda e: seen["all"].append(e))

    bus.publish("slo.breach", "svc", error_rate=0.5)
    bus.publish("slo.recovered", "svc")
    bus.publish("host.crashed", "host01")

    assert [e.topic for e in seen["exact"]] == ["slo.breach"]
    assert [e.topic for e in seen["prefix"]] == ["slo.breach", "slo.recovered"]
    assert len(seen["all"]) == 3
    assert seen["exact"][0].subject == "svc"
    assert seen["exact"][0].details["error_rate"] == 0.5
    assert bus.published == 3
    assert bus.counts()["slo.breach"] == 1


def test_event_bus_unsubscribe_and_history(runtime):
    bus = EventBus(runtime.sim, history=2)
    hits = []
    callback = hits.append
    bus.subscribe("a", callback)
    bus.publish("a", 1)
    bus.unsubscribe("a", callback)
    bus.publish("a", 2)
    assert len(hits) == 1
    bus.publish("b", 3)
    bus.publish("c", 4)
    assert [e.topic for e in bus.recent] == ["b", "c"]  # ring of 2


def test_network_publish_reaches_bus(runtime):
    events = []
    runtime.network.bus.subscribe("*", events.append)
    runtime.network.publish("custom.topic", "x", detail=1)
    assert events and events[0].topic == "custom.topic"


# ----------------------------------------------------------------------
# Convergence guard
# ----------------------------------------------------------------------


def test_guard_all_or_nothing_claims(runtime):
    guard = convergence_guard(runtime)
    assert convergence_guard(runtime) is guard  # one per runtime
    assert guard.try_claim("supervisor:T", ["a", "b"])
    # Overlap denies the whole claim — including the free LOID.
    assert not guard.try_claim("controller:T", ["b", "c"])
    assert guard.denials == 1
    assert guard.owner_of("c") is None
    # Re-claiming one's own holdings is fine.
    assert guard.try_claim("supervisor:T", ["a", "b"])
    assert guard.busy("supervisor:")
    assert not guard.busy("controller:")
    guard.release("supervisor:T")
    assert guard.try_claim("controller:T", ["a", "b", "c"])
    assert guard.violations == 0


def test_guard_counts_foreign_release_as_violation(runtime):
    guard = convergence_guard(runtime)
    guard.try_claim("x", ["a"])
    guard.release("y", ["a"])
    assert guard.violations == 1
    assert guard.owner_of("a") == "x"  # the claim survived


# ----------------------------------------------------------------------
# Remediation lease and intents
# ----------------------------------------------------------------------


def test_remediation_lease_exclusive_and_term_fenced(runtime):
    manager = make_sorter_manager(runtime, journal=ManagerJournal(name="Sorter"))
    assert manager.acquire_remediation_lease("controller:A", ttl_s=30.0)
    assert manager.holds_remediation_lease("controller:A")
    # Second owner is shut out while the lease is live...
    assert not manager.acquire_remediation_lease("controller:B")
    # ...but renewal by the holder succeeds.
    assert manager.acquire_remediation_lease("controller:A")

    # A term bump (what a promotion does) voids the lease: the zombie
    # holder no longer passes the fence, and a new owner can take it.
    manager.bump_term()
    assert not manager.holds_remediation_lease("controller:A")
    assert manager.acquire_remediation_lease("controller:B")
    assert manager.holds_remediation_lease("controller:B")


def test_remediation_lease_expires(runtime):
    manager = make_sorter_manager(runtime, journal=ManagerJournal(name="Sorter"))
    assert manager.acquire_remediation_lease("controller:A", ttl_s=5.0)
    runtime.sim.run_process(_sleep(runtime, 6.0))
    assert not manager.holds_remediation_lease("controller:A")
    assert manager.acquire_remediation_lease("controller:B")


def _sleep(runtime, seconds):
    yield runtime.sim.timeout(seconds)


def test_remediation_intents_journal_and_gc(runtime):
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(runtime, journal=journal)
    manager.begin_remediation("i1", "rollback", "v2", policy="demote")
    manager.begin_remediation("i2", "migrate", "host03")
    manager.complete_remediation("i1", outcome="done")
    assert [r["intent_id"] for r in manager.open_remediations()] == ["i2"]

    # Idempotent begin: re-logging an open intent is a no-op.
    manager.begin_remediation("i2", "migrate", "host03")
    assert len(manager.open_remediations()) == 1

    # Same-term intents survive GC; after a term bump they are orphaned.
    assert manager.gc_remediations() == []
    manager.bump_term()
    orphaned = manager.gc_remediations()
    assert [r["intent_id"] for r in orphaned] == ["i2"]
    assert manager.open_remediations() == []
    status = manager.remediation_status()
    assert status["total"] == 2 and status["open"] == []


def test_remediation_state_survives_recovery(runtime):
    from repro.core import recover_manager

    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(runtime, journal=journal)
    loid, __ = create_dcdo(runtime, manager, host_name="host01")
    manager.acquire_remediation_lease("controller:Sorter")
    manager.begin_remediation("i1", "rollback", "v2")
    manager.begin_remediation("i2", "migrate", "host02")
    manager.complete_remediation("i1", outcome="done")

    manager.host.crash()
    recovered = runtime.sim.run_process(
        recover_manager(runtime, journal, host_name="host02")
    )
    # The open intent replayed; the closed one replayed closed; the
    # recovered term outran the lease term, so GC orphans what the dead
    # primary's controller left in flight.
    assert [r["intent_id"] for r in recovered.open_remediations()] == ["i2"]
    orphaned = recovered.gc_remediations()
    assert [r["intent_id"] for r in orphaned] == ["i2"]
    assert not recovered.holds_remediation_lease("controller:Sorter")


def test_remediation_state_survives_checkpoint(runtime):
    from repro.core import recover_manager

    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(runtime, journal=journal)
    manager.acquire_remediation_lease("controller:Sorter", ttl_s=1e6)
    manager.begin_remediation("i1", "rollback", "v2")
    manager.write_checkpoint()
    manager.host.crash()
    recovered = runtime.sim.run_process(
        recover_manager(runtime, journal, host_name="host02")
    )
    assert [r["intent_id"] for r in recovered.open_remediations()] == ["i1"]


# ----------------------------------------------------------------------
# Satellite: the supervisor/controller double-converge regression
# ----------------------------------------------------------------------


def test_supervisor_defers_while_controller_holds_claims():
    """Regression: with a controller claim pending on part of the fleet,
    the supervisor's converge must defer (counted), not run alongside —
    and must converge once the claim is released."""
    runtime = LegionRuntime(build_lan(6, seed=11))
    journal = ManagerJournal(name="Sorter")
    manager = make_sorter_manager(
        runtime, journal=journal, propagation_retry_policy=FAST_RETRY
    )
    loids = [
        create_dcdo(runtime, manager, host_name=f"host{i + 1:02d}")[0]
        for i in range(3)
    ]
    supervisor = Supervisor(
        runtime,
        "Sorter",
        standby_hosts=("host04",),
        detector_host_name="host05",
        retry_policy=FAST_RETRY,
        reconcile_interval_s=5.0,
    ).start()
    guard = convergence_guard(runtime)
    assert guard.try_claim("controller:Sorter", [loids[0]])

    from tests.test_chaos_transactions import derive_v2

    v2 = derive_v2(manager)

    def scenario():
        manager.set_current_version_async(v2)
        # Give the reconcile loop several chances to converge the drift
        # while the claim is held: every attempt must defer.
        yield runtime.sim.timeout(30.0)
        deferred = runtime.network.count_value("supervisor.converge_deferred")
        assert deferred >= 1, "supervisor never deferred to the held claim"
        assert all(
            manager.record(loid).obj.version != v2 for loid in [loids[0]]
        ) or True  # the claim blocks the *supervisor*; drift may persist
        guard.release("controller:Sorter")
        deadline = runtime.sim.now + 120.0
        while runtime.sim.now < deadline:
            if all(
                manager.record(loid).obj.version == v2 for loid in loids
            ):
                break
            yield runtime.sim.timeout(5.0)
        supervisor.stop()

    runtime.sim.run_process(scenario())
    runtime.sim.run()
    assert all(manager.record(loid).obj.version == v2 for loid in loids)
    assert guard.violations == 0


# ----------------------------------------------------------------------
# Controller admission: budget and cooldown
# ----------------------------------------------------------------------


class _AlwaysActPolicy(RemediationPolicy):
    """Test double: proposes one no-op action per tick, distinct targets."""

    name = "always-act"
    cooldown_s = 1e9  # any repeat on the same target is cooldown-limited

    def __init__(self):
        self.executed = []
        self._seq = 0

    def evaluate(self, ctx):
        self._seq += 1
        return [
            RemediationIntent(
                policy=self.name, kind="noop", target=f"t{self._seq}"
            )
        ]

    def execute(self, ctx, intent):
        self.executed.append(intent.target)
        return {"ok": True}
        yield  # pragma: no cover


def test_controller_budget_limits_actions_per_window():
    runtime = LegionRuntime(build_lan(4, seed=3))
    make_sorter_manager(runtime, journal=ManagerJournal(name="Sorter"))
    policy = _AlwaysActPolicy()
    controller = ReactiveController(
        runtime,
        "Sorter",
        policies=[policy],
        interval_s=1.0,
        budget=3,
        budget_window_s=1e9,
    ).start()
    runtime.sim.run_process(_sleep(runtime, 20.0))
    controller.stop()
    # Distinct targets every tick, so only the budget can stop it.
    assert len(policy.executed) == 3
    assert runtime.network.count_value("controller.rate_limited") >= 1
    assert len(controller.remediation_log) == 3
    assert all(e["outcome"] == "done" for e in controller.remediation_log)


class _SameTargetPolicy(_AlwaysActPolicy):
    name = "same-target"
    cooldown_s = 30.0

    def evaluate(self, ctx):
        return [
            RemediationIntent(policy=self.name, kind="noop", target="fixed")
        ]


def test_controller_cooldown_limits_repeat_target():
    runtime = LegionRuntime(build_lan(4, seed=3))
    make_sorter_manager(runtime, journal=ManagerJournal(name="Sorter"))
    policy = _SameTargetPolicy()
    controller = ReactiveController(
        runtime, "Sorter", policies=[policy], interval_s=1.0, budget=100
    ).start()
    runtime.sim.run_process(_sleep(runtime, 45.0))
    controller.stop()
    # ~45 s of ticking, 30 s cooldown: the same target fires twice.
    assert len(policy.executed) == 2


def test_controller_defers_while_supervisor_converging():
    runtime = LegionRuntime(build_lan(4, seed=3))
    make_sorter_manager(runtime, journal=ManagerJournal(name="Sorter"))
    guard = convergence_guard(runtime)
    guard.try_claim("supervisor:Sorter", ["anything"])
    policy = _AlwaysActPolicy()
    controller = ReactiveController(
        runtime, "Sorter", policies=[policy], interval_s=1.0
    ).start()
    runtime.sim.run_process(_sleep(runtime, 10.0))
    controller.stop()
    assert policy.executed == []
    assert runtime.network.count_value("controller.deferred") >= 1


def test_zombie_controller_goes_quiet_after_term_bump():
    runtime = LegionRuntime(build_lan(4, seed=3))
    manager = make_sorter_manager(runtime, journal=ManagerJournal(name="Sorter"))
    policy = _AlwaysActPolicy()
    controller = ReactiveController(
        runtime, "Sorter", policies=[policy], interval_s=1.0, budget=1000
    ).start()
    runtime.sim.run_process(_sleep(runtime, 5.0))
    acted_before = len(policy.executed)
    assert acted_before >= 1
    # Depose the manager out from under the controller (what a
    # promotion does to the old primary): the controller must stop
    # acting against it rather than fight the promotee.
    manager.deposed = True
    runtime.sim.run_process(_sleep(runtime, 10.0))
    controller.stop()
    assert len(policy.executed) == acted_before
    assert runtime.network.count_value("controller.skipped_no_manager") >= 1


# ----------------------------------------------------------------------
# End-to-end remediations
# ----------------------------------------------------------------------


def _noop_fleet(sim_seed=5, instances=4, **kwargs):
    from repro.core import RemovePolicy

    runtime = LegionRuntime(build_lan(6, seed=sim_seed))
    journal = ManagerJournal(name="Svc")
    manager, __ = make_noop_manager(
        runtime,
        "Svc",
        2,
        3,
        journal=journal,
        host_name="host00",
        propagation_retry_policy=FAST_RETRY,
        # In-flight calls on a degraded build must not veto its removal
        # forever (§3.2 remove rule): drain briefly, then abort them.
        remove_policy=RemovePolicy.timeout(2.0),
        **kwargs,
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{(i % 4) + 1:02d}")
        )
        for i in range(instances)
    ]
    return runtime, manager, journal, loids


def test_controller_demotes_degraded_version():
    """An SLO breach on an unguarded adoption triggers a controller
    rollback wave to the parent version, journaled as an intent."""
    runtime, manager, journal, loids = _noop_fleet(
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY)
    )
    sim = runtime.sim
    v1 = manager.current_version
    v2 = build_degraded_version(manager, added_latency_s=0.5)

    slo = SLO(
        name="svc",
        latency_targets={0.99: 0.050},
        max_error_rate=0.02,
        min_samples=20,
    )
    monitor = runtime.network.slo_monitor("svc", slo=slo, window_s=6.0)
    load = OpenLoopLoad(
        runtime.make_client(host_name="host05"),
        loids,
        PoissonArrivals(30.0),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=400.0,
    )
    load.start()
    controller = ReactiveController(
        runtime,
        "Svc",
        policies=[DemoteDegradedVersion()],
        interval_s=1.0,
        retry_policy=FAST_RETRY,
    ).start()

    def scenario():
        yield sim.timeout(5.0)
        manager.set_current_version_async(v2)  # unguarded adoption
        deadline = sim.now + 200.0
        while sim.now < deadline:
            if manager.current_version == v1 and all(
                manager.record(loid).obj.version == v1 for loid in loids
            ):
                break
            yield sim.timeout(2.0)
        load.stop()
        controller.stop()

    sim.run_process(scenario())
    sim.run()

    assert manager.current_version == v1, "controller never rolled back"
    for loid in loids:
        assert manager.record(loid).obj.version == v1
    rollbacks = [
        e for e in controller.remediation_log
        if e["policy"] == "demote-degraded-version"
    ]
    assert rollbacks and rollbacks[0]["outcome"] == "done"
    assert runtime.network.count_value("controller.rollbacks") >= 1
    # The intent was journaled open and closed.
    assert manager.remediation_status()["open"] == []
    assert manager.remediation_status()["total"] >= 1


def test_controller_migrates_off_quarantined_host():
    runtime, manager, journal, loids = _noop_fleet(instances=4)
    sim = runtime.sim
    health = runtime.network.enable_health()
    controller = ReactiveController(
        runtime,
        "Svc",
        policies=[MigrateOffFlakyHost()],
        interval_s=1.0,
        retry_policy=FAST_RETRY,
    ).start()
    flaky = "host01"
    victims = [l for l in loids if manager.record(l).host.name == flaky]
    assert victims, "fleet layout must place instances on the flaky host"

    def scenario():
        yield sim.timeout(2.0)
        for __ in range(8):  # quarantine-grade evidence
            health.observe(flaky, "timeout")
        deadline = sim.now + 120.0
        while sim.now < deadline:
            if all(
                manager.record(l).host.name != flaky
                and manager.record(l).active
                for l in victims
            ):
                break
            yield sim.timeout(2.0)
        controller.stop()

    sim.run_process(scenario())
    sim.run()

    for loid in victims:
        record = manager.record(loid)
        assert record.active
        assert record.host.name != flaky, f"{loid} still on the flaky host"
    migrations = [
        e for e in controller.remediation_log
        if e["policy"] == "migrate-off-flaky-host"
    ]
    assert migrations and migrations[0]["outcome"] == "done"
    assert runtime.network.count_value("controller.migrations") >= len(victims)


def test_controller_prewarms_blob_caches():
    runtime, manager, journal, loids = _noop_fleet()
    sim = runtime.sim
    v2 = build_degraded_version(manager, added_latency_s=0.0)
    instance_hosts = {
        manager.record(l).host for l in loids if manager.record(l).active
    }
    descriptor = manager.descriptor_of(v2, allow_instantiable=True)
    missing_before = sum(
        1
        for host in instance_hosts
        for ref in descriptor.component_refs().values()
        if host.cache.peek(ref.component.variant_for_host(host).blob_id) is None
    )
    assert missing_before > 0, "nothing to prewarm; test layout broken"

    controller = ReactiveController(
        runtime, "Svc", policies=[PrewarmBlobCaches()], interval_s=1.0
    ).start()

    def scenario():
        yield sim.timeout(1.0)
        runtime.network.publish("deploy.scheduled", "Svc", version=v2)
        yield sim.timeout(20.0)
        controller.stop()

    sim.run_process(scenario())
    sim.run()

    for host in instance_hosts:
        for ref in descriptor.component_refs().values():
            variant = ref.component.variant_for_host(host)
            assert host.cache.peek(variant.blob_id) is not None, (
                f"{variant.blob_id} not prewarmed on {host.name}"
            )
    assert runtime.network.count_value("controller.prewarmed_blobs") >= 1


def test_controller_splits_hot_shard():
    from tests.conftest import make_sorter_plane

    runtime = LegionRuntime(build_lan(6, seed=9))
    plane = make_sorter_plane(runtime, shard_count=2)
    controller = ReactiveController(
        runtime,
        "Sorter",
        plane=plane,
        policies=[RebalanceHotShard(outlier_factor=2.0, min_samples=3)],
        interval_s=1.0,
    )
    # Feed the wave-latency signal directly: shard 1 is persistently 4x
    # slower than shard 0.
    for __ in range(5):
        controller._on_event(_wave_event(runtime, shard_id=0, duration_s=1.0))
        controller._on_event(_wave_event(runtime, shard_id=1, duration_s=4.0))
    controller.start()
    runtime.sim.run_process(_sleep(runtime, 30.0))
    controller.stop()
    runtime.sim.run()

    assert len(plane.shard_ids) == 3, "hot shard was never split"
    splits = [
        e for e in controller.remediation_log
        if e["policy"] == "rebalance-hot-shard"
    ]
    assert splits and splits[0]["outcome"] == "done"
    assert runtime.network.count_value("controller.shard_splits") == 1


def _wave_event(runtime, shard_id, duration_s):
    from repro.obs.bus import Event

    return Event(
        at=runtime.sim.now,
        topic="wave.complete",
        subject="Sorter",
        details={"shard_id": shard_id, "duration_s": duration_s},
    )


def test_default_policy_registry_complete():
    names = [policy.name for policy in default_remediation_policies()]
    assert names == [
        "migrate-off-flaky-host",
        "demote-degraded-version",
        "prewarm-blob-caches",
        "rebalance-hot-shard",
    ]
